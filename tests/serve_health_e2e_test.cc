// End-to-end test of the health layer in the real tegra_serve binary:
// fork/exec the daemon with a fast recorder, drive POST /v1/extract over
// sockets, and assert the tentpole contract of tegra::health:
//
//  * /timeseriesz records the traffic the clients actually sent (the
//    service.requests_total series is non-empty and sums to the request
//    count), in both JSON tiers,
//  * an induced overload — every request carrying an already-expired
//    deadline, against an availability SLO with second-scale windows — trips
//    the burn-rate alert: /alertz reports it firing and /readyz stays 200
//    but annotates the degradation (degraded-but-ready, never a drain),
//  * an injected worker stall (control-plane inject_stall) is detected by
//    the watchdog exactly once, with a folded stack through tegra frames,
//    /healthz dips to 503 stalled=true during the episode and recovers to
//    200 stalled=false after it — with zero failed in-flight requests,
//  * /varz carries process.uptime_seconds and the recorder staleness gauge.
//
// The binary path is injected at compile time via TEGRA_SERVE_BINARY.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "net/http_client.h"
#include "serve_process_util.h"
#include "service/http_admin.h"
#include "service/serve_json.h"

namespace tegra {
namespace serve {
namespace {

struct ReadyPorts {
  int admin = -1;
  int data = -1;
};

ReadyPorts ReadReadyEvents(ServeProcess* daemon) {
  ReadyPorts ports;
  for (int i = 0; i < 2; ++i) {
    const std::string line = daemon->NextLine();
    const auto parsed = ParseJson(line);
    EXPECT_TRUE(parsed.ok()) << line;
    if (!parsed.ok()) return ports;
    const std::string event = (*parsed)["event"].AsString();
    const int port = static_cast<int>((*parsed)["port"].AsNumber(0));
    if (event == "admin_ready") {
      ports.admin = port;
    } else if (event == "data_ready") {
      ports.data = port;
    } else {
      ADD_FAILURE() << "unexpected event line: " << line;
    }
  }
  return ports;
}

void Quit(ServeProcess* daemon) {
  ASSERT_TRUE(daemon->WriteLine("{\"cmd\":\"quit\"}"));
  daemon->CloseStdin();
  EXPECT_EQ(daemon->Wait(), 0);
}

// Polls `fetch` every 50 ms until it returns true or `timeout_ms` elapses.
template <typename Fn>
bool PollUntil(Fn fetch, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (fetch()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

TEST(ServeHealthE2eTest, TimeseriesRecordServedTraffic) {
  ServeProcess daemon;
  ASSERT_TRUE(daemon.Start({"--build-corpus", "web:200:1", "--port", "0",
                            "--admin-port", "0", "--workers", "2",
                            "--health-interval-ms", "100"}));
  const ReadyPorts ports = ReadReadyEvents(&daemon);
  ASSERT_GT(ports.data, 0);
  ASSERT_GT(ports.admin, 0);

  // Wait for the recorder's first tick: counter series are delta-encoded,
  // so traffic sent before the baseline sample would be absorbed by it.
  ASSERT_TRUE(PollUntil(
      [&] {
        const auto response = HttpGet(ports.admin, "/timeseriesz?format=json");
        if (!response.ok() || response->status != 200) return false;
        const auto parsed = ParseJson(response->body);
        return parsed.ok() && (*parsed)["ticks"].AsNumber(0) >= 1;
      },
      10000));

  net::HttpClient client("127.0.0.1", ports.data, /*timeout_ms=*/30000);
  constexpr int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) {
    const auto response =
        client.Post("/v1/extract", ExtractionRequestLine(i, 8, i % 8));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status, 200);
  }

  // The recorder runs at 100 ms; within a couple of ticks the counter series
  // must hold every request we sent (deltas sum to the total).
  double sum = 0;
  const bool recorded = PollUntil(
      [&] {
        const auto response = HttpGet(
            ports.admin,
            "/timeseriesz?metric=service.requests_total&format=json");
        if (!response.ok() || response->status != 200) return false;
        const auto parsed = ParseJson(response->body);
        if (!parsed.ok()) return false;
        EXPECT_EQ((*parsed)["kind"].AsString(), "counter");
        EXPECT_DOUBLE_EQ((*parsed)["interval_seconds"].AsNumber(0), 0.1);
        sum = 0;
        for (const JsonValue& v : (*parsed)["values"].AsArray()) {
          sum += v.AsNumber(0);
        }
        return sum >= kRequests;
      },
      10000);
  EXPECT_TRUE(recorded) << "series sum " << sum;

  // The index lists a healthy population of derived series.
  const auto index = HttpGet(ports.admin, "/timeseriesz?format=json");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->status, 200);
  const auto index_json = ParseJson(index->body);
  ASSERT_TRUE(index_json.ok());
  EXPECT_GT((*index_json)["series"].AsArray().size(), 10u);
  EXPECT_GT((*index_json)["ticks"].AsNumber(0), 0.0);

  // The coarse tier answers too (empty so early in the run, but queryable).
  const auto coarse = HttpGet(
      ports.admin,
      "/timeseriesz?metric=service.requests_total&tier=coarse&format=json");
  ASSERT_TRUE(coarse.ok());
  EXPECT_EQ(coarse->status, 200);

  // Unknown metrics are a clean 404, not an empty series.
  const auto missing = HttpGet(ports.admin, "/timeseriesz?metric=no.such");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  // Satellite: uptime + recorder staleness ride along on /varz.
  const auto varz = HttpGet(ports.admin, "/varz");
  ASSERT_TRUE(varz.ok());
  const auto varz_json = ParseJson(varz->body);
  ASSERT_TRUE(varz_json.ok());
  EXPECT_GT((*varz_json)["gauges"]["process.uptime_seconds"].AsNumber(-1),
            0.0);
  const double staleness =
      (*varz_json)["gauges"]["health.recorder_staleness_seconds"].AsNumber(-2);
  EXPECT_GE(staleness, 0.0);
  EXPECT_LT(staleness, 10.0);

  Quit(&daemon);
}

TEST(ServeHealthE2eTest, OverloadFiresAvailabilityAlertAndDegradesReadyz) {
  // Second-scale SLO windows so the burn-rate alert fires within seconds of
  // sustained failure instead of the production 5m/1h pair.
  const std::string slo_path = testing::TempDir() + "serve_health_slo_" +
                               std::to_string(::getpid()) + ".json";
  {
    std::FILE* f = std::fopen(slo_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const std::string config = R"({"slos":[{
      "name": "extract_availability",
      "kind": "error_ratio",
      "description": "e2e: second-scale availability",
      "bad_series": ["service.rejected_total", "service.failed_total",
                     "service.deadline_exceeded_total"],
      "total_series": "service.requests_total",
      "objective": 0.9,
      "windows": [{"short_seconds": 1, "long_seconds": 3,
                   "burn_threshold": 2.0}],
      "keep_seconds": 600
    }]})";
    std::fwrite(config.data(), 1, config.size(), f);
    std::fclose(f);
  }

  ServeProcess daemon;
  ASSERT_TRUE(daemon.Start({"--build-corpus", "web:200:1", "--port", "0",
                            "--admin-port", "0", "--workers", "2",
                            "--health-interval-ms", "100", "--slo-config",
                            slo_path}));
  const ReadyPorts ports = ReadReadyEvents(&daemon);
  ASSERT_GT(ports.data, 0);
  ASSERT_GT(ports.admin, 0);

  // Induced overload: every request arrives with an already-expired
  // deadline, so the service counts a deadline_exceeded for each — a 100%
  // bad ratio, burn 10x against the 2x threshold.
  net::HttpClient client("127.0.0.1", ports.data, /*timeout_ms=*/30000);
  auto expired_request = [](int id) {
    JsonValue request = JsonValue::Object();
    request.Set("id", JsonValue::Number(id));
    JsonValue lines = JsonValue::Array();
    lines.Append(JsonValue::Str("Boston Massachusetts 645,966"));
    lines.Append(JsonValue::Str("Worcester Massachusetts 182,544"));
    request.Set("lines", std::move(lines));
    request.Set("bypass_cache", JsonValue::Bool(true));
    request.Set("deadline_ms", JsonValue::Number(0.001));
    return request.Dump();
  };

  std::string alertz_body;
  const bool fired = PollUntil(
      [&] {
        for (int i = 0; i < 10; ++i) {
          (void)client.Post("/v1/extract", expired_request(i));
        }
        const auto response = HttpGet(ports.admin, "/alertz?format=json");
        if (!response.ok() || response->status != 200) return false;
        alertz_body = response->body;
        const auto parsed = ParseJson(response->body);
        if (!parsed.ok()) return false;
        for (const JsonValue& alert : (*parsed)["alerts"].AsArray()) {
          if (alert["name"].AsString() == "extract_availability" &&
              alert["state"].AsString() == "firing") {
            EXPECT_GT(alert["value"].AsNumber(0), 2.0) << response->body;
            return true;
          }
        }
        return false;
      },
      20000);
  EXPECT_TRUE(fired) << "alert never fired; last /alertz: " << alertz_body;

  // Degraded-but-ready: /readyz stays 200 (draining would remove the very
  // capacity needed to recover) but names the firing alert.
  const auto readyz = HttpGet(ports.admin, "/readyz");
  ASSERT_TRUE(readyz.ok());
  EXPECT_EQ(readyz->status, 200);
  EXPECT_NE(readyz->body.find("degraded"), std::string::npos) << readyz->body;
  EXPECT_NE(readyz->body.find("extract_availability"), std::string::npos)
      << readyz->body;

  // The firing count is a scrapeable gauge.
  const auto varz = HttpGet(ports.admin, "/varz");
  ASSERT_TRUE(varz.ok());
  const auto varz_json = ParseJson(varz->body);
  ASSERT_TRUE(varz_json.ok());
  EXPECT_GE((*varz_json)["gauges"]["health.alerts_firing"].AsNumber(0), 1.0);

  std::remove(slo_path.c_str());
  Quit(&daemon);
}

TEST(ServeHealthE2eTest, InjectedStallTripsWatchdogOnceWithTegraStack) {
  ServeProcess daemon;
  ASSERT_TRUE(daemon.Start({"--build-corpus", "web:200:1", "--port", "0",
                            "--admin-port", "0", "--workers", "2",
                            "--health-interval-ms", "100",
                            "--stall-threshold-ms", "300"}));
  const ReadyPorts ports = ReadReadyEvents(&daemon);
  ASSERT_GT(ports.data, 0);
  ASSERT_GT(ports.admin, 0);

  // Healthy liveness before the fault.
  const auto healthz_before = HttpGet(ports.admin, "/healthz");
  ASSERT_TRUE(healthz_before.ok());
  EXPECT_EQ(healthz_before->status, 200);
  EXPECT_NE(healthz_before->body.find("stalled=false"), std::string::npos);

  // Inject: one worker sleeps 1.5 s inside a task, 5x the stall threshold.
  ASSERT_TRUE(
      daemon.WriteLine("{\"id\":1,\"cmd\":\"inject_stall\",\"ms\":1500}"));
  const std::string reply = daemon.NextLine();
  const auto reply_json = ParseJson(reply);
  ASSERT_TRUE(reply_json.ok()) << reply;
  EXPECT_TRUE((*reply_json)["ok"].AsBool(false)) << reply;

  // While the worker is wedged, liveness must report it: 503 stalled=true.
  const bool went_stalled = PollUntil(
      [&] {
        const auto response = HttpGet(ports.admin, "/healthz");
        return response.ok() && response->status == 503 &&
               response->body.find("stalled=true") != std::string::npos;
      },
      10000);
  EXPECT_TRUE(went_stalled);

  // The episode ends; liveness recovers.
  const bool recovered = PollUntil(
      [&] {
        const auto response = HttpGet(ports.admin, "/healthz");
        return response.ok() && response->status == 200 &&
               response->body.find("stalled=false") != std::string::npos;
      },
      10000);
  EXPECT_TRUE(recovered);

  // Exactly one stall episode, carrying a folded stack through tegra frames.
  const auto alertz = HttpGet(ports.admin, "/alertz?format=json");
  ASSERT_TRUE(alertz.ok());
  const auto alertz_json = ParseJson(alertz->body);
  ASSERT_TRUE(alertz_json.ok()) << alertz->body;
  const JsonValue& watchdog = (*alertz_json)["watchdog"];
  EXPECT_DOUBLE_EQ(watchdog["stalls_total"].AsNumber(-1), 1.0)
      << alertz->body;
  const JsonValue& stall = watchdog["last_stall"];
  EXPECT_EQ(stall["thread"].AsString().substr(0, 10), "svc-worker");
  EXPECT_GE(stall["stuck_seconds"].AsNumber(0), 0.3);
  const std::string stack = stall["stack"].AsString();
  EXPECT_NE(stack.find("tegra"), std::string::npos) << stack;
  EXPECT_NE(stack.find(';'), std::string::npos) << stack;

  // The probe request itself completed: a stall detection never fails
  // in-flight work.
  const auto varz = HttpGet(ports.admin, "/varz");
  ASSERT_TRUE(varz.ok());
  const auto varz_json = ParseJson(varz->body);
  ASSERT_TRUE(varz_json.ok());
  EXPECT_DOUBLE_EQ(
      (*varz_json)["counters"]["service.failed_total"].AsNumber(-1), 0.0);
  EXPECT_DOUBLE_EQ((*varz_json)["counters"]["health.stalls_total"].AsNumber(-1),
                   1.0);

  // Ordinary traffic still flows after the episode.
  net::HttpClient client("127.0.0.1", ports.data, /*timeout_ms=*/30000);
  const auto response =
      client.Post("/v1/extract", ExtractionRequestLine(7, 8, 3));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 200);

  Quit(&daemon);
}

TEST(ServeHealthE2eTest, HealthDisabledServesPagesEmpty) {
  // --health-interval-ms 0: no recorder thread, the pages still answer (the
  // bench baseline must be a runnable configuration, not a crash).
  ServeProcess daemon;
  ASSERT_TRUE(daemon.Start({"--build-corpus", "web:200:1", "--port", "0",
                            "--admin-port", "0", "--workers", "2",
                            "--health-interval-ms", "0"}));
  const ReadyPorts ports = ReadReadyEvents(&daemon);
  ASSERT_GT(ports.admin, 0);

  const auto index = HttpGet(ports.admin, "/timeseriesz?format=json");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->status, 200);
  const auto parsed = ParseJson(index->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)["ticks"].AsNumber(-1), 0.0);

  const auto alertz = HttpGet(ports.admin, "/alertz?format=json");
  ASSERT_TRUE(alertz.ok());
  EXPECT_EQ(alertz->status, 200);

  const auto healthz = HttpGet(ports.admin, "/healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz->status, 200);

  Quit(&daemon);
}

}  // namespace
}  // namespace serve
}  // namespace tegra
