// Tests for the SP objective: the anchor-distance decomposition
// (Equation 7), normalization helpers, table materialization, and the
// 2-approximation guarantee of Theorem 2 verified against brute-force
// optimal SP on small instances.

#include <gtest/gtest.h>

#include <limits>

#include "common/random.h"
#include "corpus/column_index.h"
#include "core/anchor_search.h"
#include "core/objective.h"
#include "core/slgr.h"

namespace tegra {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ListContext SmallContext(const ColumnIndex* index) {
  return ListContext({{"new", "york", "42"}, {"toronto", "7"}, {"boston"}},
                     index);
}

void PrepareAll(ListContext* ctx, int m) {
  for (size_t j = 0; j < ctx->num_lines(); ++j) {
    ctx->EnsureWidth(j, ctx->line_length(j));
  }
  (void)m;
}

TEST(RecordDistanceTest, SumsColumnDistances) {
  CellDistance distance(nullptr);
  DistanceCache cache(&distance);
  ListContext ctx = SmallContext(nullptr);
  PrepareAll(&ctx, 2);
  auto a = ctx.CellsFor(0, {0, 2, 3});
  auto b = ctx.CellsFor(1, {0, 1, 2});
  const double expected = cache(*a[0], *b[0]) + cache(*a[1], *b[1]);
  EXPECT_NEAR(RecordDistance(a, b, &cache), expected, 1e-12);
}

TEST(SumOfPairsTest, EquationSevenDecomposition) {
  // SP(T) = 1/2 * sum_i AD(t_i, T): validated on a concrete segmentation.
  CellDistance distance(nullptr);
  DistanceCache cache(&distance);
  ListContext ctx = SmallContext(nullptr);
  PrepareAll(&ctx, 2);
  const std::vector<Bounds> table = {{0, 2, 3}, {0, 1, 2}, {0, 1, 1}};
  const double sp = SumOfPairsDistance(ctx, table, &cache);

  std::vector<std::vector<const CellInfo*>> records;
  for (size_t i = 0; i < 3; ++i) records.push_back(ctx.CellsFor(i, table[i]));
  double ad_sum = 0;
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      if (i == j) continue;
      ad_sum += RecordDistance(records[i], records[j], &cache);
    }
  }
  EXPECT_NEAR(sp, ad_sum / 2.0, 1e-9);
}

TEST(SumOfPairsTest, SupervisedWeightsApplied) {
  CellDistance distance(nullptr);
  DistanceCache cache(&distance);
  ListContext plain = SmallContext(nullptr);
  ListContext weighted = SmallContext(nullptr);
  PrepareAll(&plain, 2);
  PrepareAll(&weighted, 2);
  const std::vector<Bounds> table = {{0, 2, 3}, {0, 1, 2}, {0, 1, 1}};
  weighted.SetFixedBounds(1, table[1]);
  EXPECT_GT(SumOfPairsDistance(weighted, table, &cache),
            SumOfPairsDistance(plain, table, &cache));
}

TEST(ObjectiveNormalizationTest, PerColumnAndPerPair) {
  EXPECT_DOUBLE_EQ(PerColumnObjective(12.0, 4), 3.0);
  // 4 rows -> 6 pairs; 12 / (6 * 2 columns) = 1.
  EXPECT_DOUBLE_EQ(PerPairObjective(12.0, 4, 2), 1.0);
  EXPECT_DOUBLE_EQ(PerPairObjective(12.0, 1, 2), 0.0);  // No pairs.
}

TEST(MaterializeTableTest, BuildsCellsFromBounds) {
  ListContext ctx = SmallContext(nullptr);
  PrepareAll(&ctx, 2);
  Table t = MaterializeTable(ctx, {{0, 2, 3}, {0, 1, 2}, {0, 1, 1}});
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.NumCols(), 2u);
  EXPECT_EQ(t.Cell(0, 0), "new york");
  EXPECT_EQ(t.Cell(0, 1), "42");
  EXPECT_EQ(t.Cell(2, 1), "");
}

// ---- Theorem 2: the 2-approximation property -----------------------------------

/// Brute-force global optimum of SP over all table segmentations.
double BruteForceOptimalSp(ListContext* ctx, int m, DistanceCache* cache) {
  std::vector<std::vector<Bounds>> per_line;
  for (size_t j = 0; j < ctx->num_lines(); ++j) {
    per_line.push_back(EnumerateBounds(ctx->line_length(j), m, 0));
  }
  double best = kInf;
  std::vector<Bounds> current(ctx->num_lines());
  // Odometer over the cross product (kept tiny by the test inputs).
  std::vector<size_t> idx(ctx->num_lines(), 0);
  while (true) {
    for (size_t j = 0; j < ctx->num_lines(); ++j) {
      current[j] = per_line[j][idx[j]];
    }
    best = std::min(best, SumOfPairsDistance(*ctx, current, cache));
    size_t j = 0;
    while (j < idx.size() && ++idx[j] == per_line[j].size()) {
      idx[j] = 0;
      ++j;
    }
    if (j == idx.size()) break;
  }
  return best;
}

class TwoApproximationTest : public ::testing::TestWithParam<int> {};

TEST_P(TwoApproximationTest, AnchorInducedTableWithinTwiceOptimal) {
  Rng rng(GetParam() * 104729 + 7);
  CellDistance distance(nullptr);
  static const char* kAlphabet[] = {"a", "bb", "7", "x", "1999"};
  for (int iter = 0; iter < 4; ++iter) {
    std::vector<std::vector<std::string>> lines;
    for (int j = 0; j < 3; ++j) {
      const uint32_t n = static_cast<uint32_t>(rng.UniformInt(1, 4));
      std::vector<std::string> toks;
      for (uint32_t t = 0; t < n; ++t) {
        toks.push_back(kAlphabet[rng.Uniform(std::size(kAlphabet))]);
      }
      lines.push_back(std::move(toks));
    }
    ListContext ctx(std::move(lines), nullptr);
    const int m = 2;
    for (size_t j = 0; j < ctx.num_lines(); ++j) {
      ctx.EnsureWidth(j, ctx.line_length(j));
    }
    DistanceCache cache(&distance);

    // TEGRA's choice: best anchor over all lines (Algorithm 1 outer loop).
    double best_ad = kInf;
    std::vector<Bounds> chosen;
    for (size_t anchor = 0; anchor < ctx.num_lines(); ++anchor) {
      const auto result =
          MinimizeAnchorDistanceExhaustive(ctx, anchor, m, &cache, 0);
      if (result.anchor_distance < best_ad) {
        best_ad = result.anchor_distance;
        chosen = InduceTable(ctx, anchor, result.anchor_bounds, &cache, 0);
      }
    }
    const double tegra_sp = SumOfPairsDistance(ctx, chosen, &cache);
    const double optimal_sp = BruteForceOptimalSp(&ctx, m, &cache);
    ASSERT_LE(tegra_sp, 2.0 * optimal_sp + 1e-9)
        << "2-approximation violated (Theorem 2)";
    ASSERT_GE(tegra_sp, optimal_sp - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoApproximationTest, ::testing::Range(1, 6));

}  // namespace
}  // namespace tegra
