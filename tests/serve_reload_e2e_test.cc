// End-to-end test of corpus hot reload in the real tegra_serve binary:
// builds a TGRAIDX2 snapshot, starts the daemon on it, keeps extraction
// traffic in flight while {"cmd":"corpus_reload"} swaps generations, and
// asserts that (a) zero in-flight requests fail across the swaps, (b) the
// generation number climbs, (c) /varz reflects the bumped corpus.generation,
// (d) a corrupted snapshot is rejected while the old generation keeps
// serving, and (e) SIGHUP triggers the same reload out-of-band.
//
// The binary path is injected at compile time via TEGRA_SERVE_BINARY.

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/file_util.h"
#include "corpus/column_index.h"
#include "serve_process_util.h"
#include "service/http_admin.h"
#include "service/serve_json.h"
#include "store/snapshot_writer.h"
#include "synth/corpus_gen.h"

namespace tegra {
namespace serve {
namespace {

std::string SnapshotPath() {
  return testing::TempDir() + "serve_reload_e2e_" +
         std::to_string(::getpid()) + ".idx2";
}

void WriteSnapshotOrDie(const std::string& path, uint64_t seed) {
  const ColumnIndex index =
      synth::BuildBackgroundIndex(synth::CorpusProfile::kWeb, 300, seed);
  const Status written = store::WriteSnapshot(index, path);
  ASSERT_TRUE(written.ok()) << written.ToString();
}

/// Gauge value out of a /varz scrape.
double VarzGauge(int port, const std::string& name) {
  const auto varz = HttpGet(port, "/varz");
  if (!varz.ok() || varz->status != 200) return -1;
  const auto parsed = ParseJson(varz->body);
  if (!parsed.ok()) return -1;
  return (*parsed)["gauges"][name].AsNumber(-1);
}

TEST(ServeReloadE2eTest, HotReloadUnderLoadWithZeroFailedRequests) {
  const std::string path = SnapshotPath();
  WriteSnapshotOrDie(path, /*seed=*/7);

  ServeProcess daemon;
  ASSERT_TRUE(daemon.Start(
      {"--corpus", path, "--admin-port", "0", "--workers", "2"}));

  const std::string ready_line = daemon.NextLine();
  const auto ready = ParseJson(ready_line);
  ASSERT_TRUE(ready.ok()) << ready_line;
  ASSERT_EQ((*ready)["event"].AsString(), "admin_ready") << ready_line;
  const int port = static_cast<int>((*ready)["port"].AsNumber(0));
  ASSERT_GT(port, 0) << ready_line;

  // Interleave extraction traffic with reloads: each round queues a burst of
  // bypass-cache requests and immediately chases it with corpus_reload, so
  // the swap lands while those requests are queued or mid-extraction. Round
  // 1 republishes different content (seed 8) to make the swap substantive.
  int next_id = 1;
  int requests_sent = 0;
  double last_generation = 0;
  for (int round = 0; round < 3; ++round) {
    if (round == 1) WriteSnapshotOrDie(path, /*seed=*/8);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(
          daemon.WriteLine(ExtractionRequestLine(next_id++, 32, i % 8)));
      ++requests_sent;
    }
    ASSERT_TRUE(daemon.WriteLine("{\"id\":9000,\"cmd\":\"corpus_reload\"}"));

    // The daemon answers the queued extractions first (the reload response
    // is emitted after the in-flight flush), then the reload ack.
    for (int i = 0; i < 8; ++i) {
      const std::string line = daemon.NextLine();
      const auto response = ParseJson(line);
      ASSERT_TRUE(response.ok()) << line;
      EXPECT_TRUE((*response)["ok"].AsBool(false))
          << "in-flight request failed across reload: " << line;
    }
    const std::string ack_line = daemon.NextLine();
    const auto ack = ParseJson(ack_line);
    ASSERT_TRUE(ack.ok()) << ack_line;
    ASSERT_TRUE((*ack)["ok"].AsBool(false)) << ack_line;
    EXPECT_EQ((*ack)["format"].AsString(), "mmap-v2") << ack_line;
    const double generation = (*ack)["generation"].AsNumber(0);
    EXPECT_GT(generation, last_generation) << ack_line;
    last_generation = generation;
  }
  // Initial load is generation 1; three reloads make 4.
  EXPECT_EQ(last_generation, 4) << "unexpected generation after 3 reloads";
  EXPECT_EQ(requests_sent, 24);

  // The bumped generation is visible to the admin plane.
  EXPECT_EQ(VarzGauge(port, "corpus.generation"), last_generation);

  // A torn/corrupt snapshot must be rejected: the reload fails, the
  // generation does not move, and the old corpus keeps serving. The garbage
  // is published via rename (a new inode) — truncating the live file in
  // place would invalidate the daemon's current mapping, which is exactly
  // what the atomic-publication contract exists to prevent.
  ASSERT_TRUE(
      AtomicWriteFile(path, "TGRAIDX2 but then garbage follows").ok());
  ASSERT_TRUE(daemon.WriteLine("{\"id\":9100,\"cmd\":\"corpus_reload\"}"));
  const std::string bad_line = daemon.NextLine();
  const auto bad = ParseJson(bad_line);
  ASSERT_TRUE(bad.ok()) << bad_line;
  EXPECT_FALSE((*bad)["ok"].AsBool(true)) << bad_line;
  EXPECT_EQ((*bad)["generation"].AsNumber(0), last_generation) << bad_line;
  ASSERT_TRUE(daemon.WriteLine(ExtractionRequestLine(next_id++, 16, 0)));
  ASSERT_TRUE(daemon.WriteLine("{\"cmd\":\"metrics\"}"));
  const std::string after_line = daemon.NextLine();
  const auto after = ParseJson(after_line);
  ASSERT_TRUE(after.ok()) << after_line;
  EXPECT_TRUE((*after)["ok"].AsBool(false))
      << "old generation stopped serving after failed reload: " << after_line;
  const std::string metrics_line = daemon.NextLine();
  const auto metrics = ParseJson(metrics_line);
  ASSERT_TRUE(metrics.ok()) << metrics_line;
  EXPECT_GE((*metrics)["counters"]["store.reload_errors_total"].AsNumber(0), 1)
      << metrics_line;

  // SIGHUP drives the same reload path out-of-band: republish a good
  // snapshot, signal, and watch the generation climb on /varz.
  WriteSnapshotOrDie(path, /*seed=*/9);
  ASSERT_EQ(::kill(daemon.pid(), SIGHUP), 0);
  bool bumped = false;
  for (int poll = 0; poll < 100 && !bumped; ++poll) {
    if (VarzGauge(port, "corpus.generation") > last_generation) {
      bumped = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  EXPECT_TRUE(bumped) << "SIGHUP did not bump corpus.generation";

  ASSERT_TRUE(daemon.WriteLine("{\"cmd\":\"quit\"}"));
  daemon.CloseStdin();
  EXPECT_EQ(daemon.Wait(), 0);
  std::remove(path.c_str());
}

TEST(ServeReloadE2eTest, ReloadUnavailableWithoutCorpusPath) {
  // A daemon running on a synthetic in-process corpus has no path to reopen;
  // corpus_reload must fail cleanly, not crash.
  ServeProcess daemon;
  ASSERT_TRUE(daemon.Start({"--build-corpus", "web:200:3"}));
  ASSERT_TRUE(daemon.WriteLine("{\"id\":1,\"cmd\":\"corpus_reload\"}"));
  ASSERT_TRUE(daemon.WriteLine("{\"cmd\":\"quit\"}"));
  daemon.CloseStdin();
  const std::string line = daemon.NextLine();
  const auto parsed = ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_FALSE((*parsed)["ok"].AsBool(true)) << line;
  EXPECT_EQ((*parsed)["code"].AsString(), "InvalidArgument") << line;
  EXPECT_EQ(daemon.Wait(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace tegra
