// Tests for the cell catalog and the distance function, including the metric
// properties (non-negativity, symmetry, triangle inequality) that the
// 2-approximation guarantee of Theorem 2 requires — verified as property
// tests over randomized cell triples.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "distance/cell.h"
#include "distance/distance.h"
#include "synth/corpus_gen.h"
#include "corpus/column_index.h"

namespace tegra {
namespace {

// ---- CellCatalog ---------------------------------------------------------

TEST(CellCatalogTest, NullCellIsIdZero) {
  CellCatalog catalog(nullptr);
  EXPECT_TRUE(catalog.NullCell().is_null());
  EXPECT_EQ(catalog.NullCell().token_count, 0u);
  EXPECT_EQ(catalog.NullCell().type, ValueType::kEmpty);
}

TEST(CellCatalogTest, RegisterInternsOnce) {
  CellCatalog catalog(nullptr);
  const CellInfo& a = catalog.Register("New York", 2);
  const CellInfo& b = catalog.Register("New York", 2);
  EXPECT_EQ(a.local_id, b.local_id);
  EXPECT_EQ(catalog.size(), 2u);  // Null + one value.
}

TEST(CellCatalogTest, FeaturesPrecomputed) {
  CellCatalog catalog(nullptr);
  const CellInfo& cell = catalog.Register("645,966", 1);
  EXPECT_EQ(cell.type, ValueType::kInteger);
  EXPECT_EQ(cell.token_count, 1u);
  EXPECT_EQ(cell.profile.digits, 6);
}

TEST(CellCatalogTest, CorpusIdResolvedWhenIndexGiven) {
  ColumnIndex index;
  index.AddColumn({"Toronto", "Boston"});
  index.Finalize();
  CellCatalog catalog(&index);
  EXPECT_NE(catalog.Register("Toronto", 1).corpus_id, kInvalidValueId);
  EXPECT_EQ(catalog.Register("Nowhere", 1).corpus_id, kInvalidValueId);
}

TEST(CellCatalogTest, StableReferencesAcrossGrowth) {
  CellCatalog catalog(nullptr);
  const CellInfo& first = catalog.Register("first", 1);
  for (int i = 0; i < 1000; ++i) {
    catalog.Register("cell" + std::to_string(i), 1);
  }
  EXPECT_EQ(first.text, "first");  // deque keeps addresses stable.
}

// ---- distance fixture --------------------------------------------------------

class DistanceTest : public ::testing::Test {
 protected:
  DistanceTest()
      : index_(synth::BuildBackgroundIndex(synth::CorpusProfile::kWeb,
                                           /*num_tables=*/800, /*seed=*/21)),
        stats_(&index_),
        distance_(&stats_),
        catalog_(&index_) {}

  const CellInfo& Cell(const std::string& text) {
    size_t tokens = 1 + std::count(text.begin(), text.end(), ' ');
    return catalog_.Register(text, text.empty() ? 0 : tokens);
  }

  ColumnIndex index_;
  CorpusStats stats_;
  CellDistance distance_;
  CellCatalog catalog_;
};

TEST_F(DistanceTest, NullHandlingPerAppendixI) {
  const CellInfo& null_cell = catalog_.NullCell();
  const CellInfo& toronto = Cell("Toronto");
  // d_sem(null, s) = 1.
  EXPECT_DOUBLE_EQ(distance_.SemanticDistance(null_cell, toronto), 1.0);
  // d_syn(null, s) = d_syn("", s): length part 1, type part 1.
  const double syn = distance_.SyntacticDistance(null_cell, toronto);
  EXPECT_GT(syn, 0.5);
  EXPECT_LE(syn, 1.0);
  // Combined d(null, s) around 0.9 (the paper's Figure 5 uses 0.9).
  EXPECT_NEAR(distance_.Distance(null_cell, toronto), 0.9, 0.1);
}

TEST_F(DistanceTest, NullNullIsMaximal) {
  const CellInfo& null_cell = catalog_.NullCell();
  EXPECT_DOUBLE_EQ(distance_.Distance(null_cell, null_cell), 1.0);
}

TEST_F(DistanceTest, IdenticalKnownValuesAreFloor) {
  const CellInfo& a = Cell("London");
  EXPECT_DOUBLE_EQ(distance_.SemanticDistance(a, a), 0.5);
  EXPECT_DOUBLE_EQ(distance_.SyntacticDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(distance_.Distance(a, a), 0.25);  // alpha=0.5 mix.
}

TEST_F(DistanceTest, IdenticalUnknownValuesAreFloor) {
  const CellInfo& a = Cell("zzz-unseen-value");
  EXPECT_DOUBLE_EQ(distance_.SemanticDistance(a, a), 0.5);
}

TEST_F(DistanceTest, SameDomainValuesAreCloserThanCrossDomain) {
  const double same =
      distance_.SemanticDistance(Cell("London"), Cell("Paris"));
  const double cross =
      distance_.SemanticDistance(Cell("London"), Cell("Monday"));
  EXPECT_LT(same, cross);
  EXPECT_GE(same, 0.5);
}

TEST_F(DistanceTest, TypedUnknownPairsAreDomainCoherent) {
  // Unique numerals never co-occur in the corpus, but share a type.
  const double d =
      distance_.SemanticDistance(Cell("1,532,001"), Cell("874,223"));
  EXPECT_DOUBLE_EQ(d, 0.55);
  const double cross =
      distance_.SemanticDistance(Cell("1,532,001"), Cell("12:30"));
  EXPECT_GT(cross, 0.55);
}

TEST_F(DistanceTest, BothKnownWithoutCoOccurrenceGetsPrior) {
  // Two known values from unrelated domains that never share a column, and
  // with different types... both are kText: person-vs-city style. Compose a
  // pair guaranteed known: head vocabulary entries from distinct domains.
  const CellInfo& a = Cell("James");     // May or may not be known.
  const CellInfo& b = Cell("Honolulu");  // Tail city.
  const double d = distance_.SemanticDistance(a, b);
  EXPECT_GE(d, 0.5);
  EXPECT_LE(d, 1.0);
}

TEST_F(DistanceTest, UnknownTextPairsAreMaximal) {
  EXPECT_DOUBLE_EQ(
      distance_.SemanticDistance(Cell("qqq zzz"), Cell("jjj www")), 1.0);
}

TEST_F(DistanceTest, AlphaMixesComponents) {
  const CellInfo& a = Cell("London");
  const CellInfo& b = Cell("New York City");
  CellDistance syntactic_only(&stats_, {.alpha = 1.0});
  CellDistance semantic_only(&stats_, {.alpha = 0.0});
  EXPECT_DOUBLE_EQ(syntactic_only.Distance(a, b),
                   distance_.SyntacticDistance(a, b));
  EXPECT_DOUBLE_EQ(semantic_only.Distance(a, b),
                   distance_.SemanticDistance(a, b));
}

TEST_F(DistanceTest, NullCorpusStatsIsPureSyntaxPlusPenalty) {
  CellDistance no_corpus(nullptr);
  const CellInfo& a = Cell("London");
  const CellInfo& b = Cell("Paris");
  // Semantic part falls back to 1.0 for distinct values without stats.
  EXPECT_DOUBLE_EQ(no_corpus.SemanticDistance(a, b), 1.0);
}

TEST_F(DistanceTest, JaccardMeasureMode) {
  CellDistance jaccard(&stats_, {.alpha = 0.5,
                                 .measure = SemanticMeasure::kJaccard});
  const double d = jaccard.SemanticDistance(Cell("London"), Cell("Paris"));
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
}

// ---- metric properties (property test) ---------------------------------------

class DistancePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DistancePropertyTest, MetricPropertiesOnRandomTriples) {
  ColumnIndex index = synth::BuildBackgroundIndex(
      synth::CorpusProfile::kWeb, /*num_tables=*/400, /*seed=*/50);
  CorpusStats stats(&index);
  CellDistance distance(&stats);
  CellCatalog catalog(&index);

  // A pool of realistic cells: known values, unknown junk, numerals, nulls.
  synth::TableGenerator gen(synth::CorpusProfile::kWeb,
                            static_cast<uint64_t>(GetParam()) * 7919 + 13);
  std::vector<const CellInfo*> pool;
  pool.push_back(&catalog.NullCell());
  Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    Table t = gen.Generate();
    const std::string& cell =
        t.Cell(rng.Uniform(t.NumRows()), rng.Uniform(t.NumCols()));
    if (cell.empty()) continue;
    const size_t tokens = 1 + std::count(cell.begin(), cell.end(), ' ');
    pool.push_back(&catalog.Register(cell, tokens));
    // Also junk: a fragment of the cell.
    const size_t half = cell.size() / 2;
    if (half > 0) {
      pool.push_back(&catalog.Register(cell.substr(0, half), 1));
    }
  }

  for (size_t x = 0; x < pool.size(); ++x) {
    for (size_t y = 0; y < pool.size(); ++y) {
      const double dxy = distance.Distance(*pool[x], *pool[y]);
      // Non-negativity and boundedness.
      ASSERT_GE(dxy, 0.0);
      ASSERT_LE(dxy, 1.0 + 1e-12);
      // Symmetry.
      ASSERT_DOUBLE_EQ(dxy, distance.Distance(*pool[y], *pool[x]));
    }
  }
  // Triangle inequality over all triples.
  for (size_t x = 0; x < pool.size(); x += 2) {
    for (size_t y = 0; y < pool.size(); y += 2) {
      for (size_t z = 0; z < pool.size(); z += 2) {
        const double dxz = distance.Distance(*pool[x], *pool[z]);
        const double dxy = distance.Distance(*pool[x], *pool[y]);
        const double dyz = distance.Distance(*pool[y], *pool[z]);
        ASSERT_LE(dxz, dxy + dyz + 1e-9)
            << "triangle violated: '" << pool[x]->text << "' '"
            << pool[y]->text << "' '" << pool[z]->text << "'";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistancePropertyTest,
                         ::testing::Range(1, 6));

// ---- DistanceCache ---------------------------------------------------------

TEST_F(DistanceTest, CacheReturnsSameValues) {
  DistanceCache cache(&distance_);
  const CellInfo& a = Cell("London");
  const CellInfo& b = Cell("Paris");
  const double direct = distance_.Distance(a, b);
  EXPECT_DOUBLE_EQ(cache(a, b), direct);
  EXPECT_DOUBLE_EQ(cache(b, a), direct);  // Symmetric key.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(cache(a, b), direct);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace tegra
