// tegra::store test suite.
//
//  * Round-trip equivalence: every statistic TEGRA consumes (|C(s)|,
//    co-occurrence, union, PMI/NPMI/Jaccard/angular distances) is
//    bit-identical between a heap ColumnIndex and the TGRAIDX2 snapshot
//    built from it, under the snapshot's relabeled (sorted) value ids.
//  * Corruption matrix: every truncation point and a sweep of single-bit
//    flips must surface as Status::Corruption from Open() or Verify() —
//    never UB, never a crash, never silently wrong data.
//  * v1 hardening: the TGRAIDX1 loader rejects truncated and mutated
//    caches with Corruption.
//  * Durability: publication is atomic — no `.tmp` debris, old content
//    survives a failed write.
//  * CorpusManager: generation bumping, failed-reload semantics, and
//    concurrent readers racing a hot swap (the TSan target of the suite).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/file_util.h"
#include "corpus/column_index.h"
#include "corpus/corpus_io.h"
#include "corpus/corpus_stats.h"
#include "corpus/corpus_view.h"
#include "store/corpus_loader.h"
#include "store/corpus_manager.h"
#include "store/crc32c.h"
#include "store/format.h"
#include "store/mmap_corpus.h"
#include "store/snapshot_writer.h"
#include "synth/corpus_gen.h"

namespace tegra {
namespace store {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "store_test_" + std::to_string(::getpid()) +
         "_" + name;
}

ColumnIndex BuildCorpus(size_t tables = 400, uint64_t seed = 3) {
  return synth::BuildBackgroundIndex(synth::CorpusProfile::kWeb, tables, seed);
}

/// Writes raw bytes (non-atomically; tests that need torn files use this).
void WriteRaw(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  ASSERT_EQ(std::fclose(f), 0);
}

class StoreRoundTripTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    heap_ = new ColumnIndex(BuildCorpus());
    path_ = new std::string(TempPath("roundtrip.idx2"));
    const Status written = WriteSnapshot(*heap_, *path_);
    ASSERT_TRUE(written.ok()) << written.ToString();
    auto opened = MmapCorpus::Open(*path_);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    mmap_ = opened.value().release();
  }

  static void TearDownTestSuite() {
    delete mmap_;
    mmap_ = nullptr;
    std::remove(path_->c_str());
    delete path_;
    path_ = nullptr;
    delete heap_;
    heap_ = nullptr;
  }

  static ColumnIndex* heap_;
  static MmapCorpus* mmap_;
  static std::string* path_;
};

ColumnIndex* StoreRoundTripTest::heap_ = nullptr;
MmapCorpus* StoreRoundTripTest::mmap_ = nullptr;
std::string* StoreRoundTripTest::path_ = nullptr;

TEST_F(StoreRoundTripTest, CardinalitiesMatch) {
  EXPECT_EQ(mmap_->TotalColumns(), heap_->TotalColumns());
  EXPECT_EQ(mmap_->NumValues(), heap_->NumValues());
  EXPECT_STREQ(mmap_->FormatName(), "mmap-v2");
  EXPECT_GT(mmap_->MappedBytes(), 0u);
  // Zero-copy: the resident heap cost of the view is the object itself, not
  // any materialized postings or dictionary.
  EXPECT_EQ(mmap_->HeapBytes(), sizeof(MmapCorpus));
}

TEST_F(StoreRoundTripTest, EveryValueRoundTripsThroughLookup) {
  // heap id -> string -> mmap id -> string must close the loop, and the
  // O(1) ColumnCount must agree for every single value.
  for (ValueId heap_id = 0; heap_id < heap_->NumValues(); ++heap_id) {
    const std::string value = heap_->ValueString(heap_id);
    const ValueId mmap_id = mmap_->Lookup(value);
    ASSERT_NE(mmap_id, kInvalidValueId) << "lost value: " << value;
    EXPECT_EQ(mmap_->ValueString(mmap_id), value);
    EXPECT_EQ(mmap_->ColumnCount(mmap_id), heap_->ColumnCount(heap_id))
        << value;
  }
  EXPECT_EQ(mmap_->Lookup("value that is definitely not in the corpus"),
            kInvalidValueId);
  // Lookup normalizes exactly like the heap index does.
  const std::string value = heap_->ValueString(0);
  EXPECT_EQ(mmap_->Lookup("  " + value + "  "), mmap_->Lookup(value));
}

TEST_F(StoreRoundTripTest, StatisticsBitIdenticalAcrossRepresentations) {
  // Pair the most popular values (postings > 128 exercise the skip-block
  // path) with each other and with a spread of rare values. All derived
  // statistics must be bit-identical doubles, since they are computed from
  // identical integer counts by identical code.
  std::vector<ValueId> heap_ids(heap_->NumValues());
  for (size_t i = 0; i < heap_ids.size(); ++i) {
    heap_ids[i] = static_cast<ValueId>(i);
  }
  std::sort(heap_ids.begin(), heap_ids.end(), [&](ValueId a, ValueId b) {
    return heap_->ColumnCount(a) > heap_->ColumnCount(b);
  });
  ASSERT_GT(heap_->ColumnCount(heap_ids[0]), kPostingBlockSize)
      << "corpus too small to exercise block-compressed postings";

  std::vector<ValueId> sample(heap_ids.begin(),
                              heap_ids.begin() + std::min<size_t>(
                                                     40, heap_ids.size()));
  std::mt19937 rng(42);
  std::uniform_int_distribution<size_t> pick(0, heap_ids.size() - 1);
  for (int i = 0; i < 40; ++i) sample.push_back(heap_ids[pick(rng)]);

  CorpusStats heap_stats(heap_);
  CorpusStats mmap_stats(mmap_);
  for (size_t i = 0; i < sample.size(); ++i) {
    for (size_t j = i + 1; j < sample.size(); j += 7) {
      const ValueId ha = sample[i];
      const ValueId hb = sample[j];
      const ValueId ma = mmap_->Lookup(heap_->ValueString(ha));
      const ValueId mb = mmap_->Lookup(heap_->ValueString(hb));
      ASSERT_NE(ma, kInvalidValueId);
      ASSERT_NE(mb, kInvalidValueId);
      EXPECT_EQ(mmap_->CoOccurrenceCount(ma, mb),
                heap_->CoOccurrenceCount(ha, hb));
      EXPECT_EQ(mmap_->UnionCount(ma, mb), heap_->UnionCount(ha, hb));
      // Bit-identical, not approximately equal.
      EXPECT_EQ(mmap_stats.Pmi(ma, mb), heap_stats.Pmi(ha, hb));
      EXPECT_EQ(mmap_stats.Npmi(ma, mb), heap_stats.Npmi(ha, hb));
      EXPECT_EQ(mmap_stats.SemanticDistance(ma, mb),
                heap_stats.SemanticDistance(ha, hb));
      EXPECT_EQ(
          mmap_stats.SemanticDistance(ma, mb, SemanticMeasure::kJaccard),
          heap_stats.SemanticDistance(ha, hb, SemanticMeasure::kJaccard));
      EXPECT_EQ(
          mmap_stats.SemanticDistance(ma, mb, SemanticMeasure::kAngular),
          heap_stats.SemanticDistance(ha, hb, SemanticMeasure::kAngular));
    }
  }
}

TEST_F(StoreRoundTripTest, VerifyAcceptsIntactSnapshot) {
  EXPECT_TRUE(mmap_->Verify().ok());
  EXPECT_TRUE(VerifyCorpusFile(*path_).ok());
}

TEST_F(StoreRoundTripTest, DescribeReportsAllSectionsChecksummed) {
  auto info = DescribeCorpusFile(*path_, /*check_crc=*/true);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->format, "TGRAIDX2");
  EXPECT_TRUE(info->header_crc_ok);
  EXPECT_EQ(info->total_columns, heap_->TotalColumns());
  EXPECT_EQ(info->num_values, heap_->NumValues());
  ASSERT_EQ(info->sections.size(), kSectionCount);
  uint64_t described_bytes = 0;
  for (const SectionSummary& section : info->sections) {
    EXPECT_TRUE(section.crc_checked) << section.name;
    EXPECT_TRUE(section.crc_ok) << section.name;
    described_bytes = std::max(described_bytes,
                               section.offset + section.length);
  }
  EXPECT_LE(described_bytes, info->file_bytes);
  const std::string report = FormatCorpusFileInfo(info.value());
  EXPECT_NE(report.find("TGRAIDX2"), std::string::npos);
  EXPECT_NE(report.find("posting_blob"), std::string::npos);
}

TEST_F(StoreRoundTripTest, OpenCorpusAutodetectsBothFormats) {
  const std::string v1_path = TempPath("autodetect.idx");
  ASSERT_TRUE(SaveColumnIndex(*heap_, v1_path).ok());

  auto v1 = OpenCorpus(v1_path);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(v1->format, "heap-v1");
  auto v2 = OpenCorpus(*path_);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(v2->format, "mmap-v2");
  EXPECT_EQ(v1->view->NumValues(), v2->view->NumValues());

  const std::string junk_path = TempPath("autodetect.junk");
  WriteRaw(junk_path, "NOTANIDX file of some other kind entirely");
  auto junk = OpenCorpus(junk_path);
  EXPECT_FALSE(junk.ok());
  EXPECT_EQ(junk.status().code(), StatusCode::kCorruption);

  std::remove(v1_path.c_str());
  std::remove(junk_path.c_str());
}

// ---- Corruption matrix -----------------------------------------------------

class StoreCorruptionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const ColumnIndex heap = BuildCorpus(200, 5);
    auto encoded = EncodeSnapshot(heap);
    ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
    bytes_ = new std::string(std::move(encoded.value()));
  }
  static void TearDownTestSuite() {
    delete bytes_;
    bytes_ = nullptr;
  }

  /// True when the mutated bytes are rejected with Corruption by Open() or,
  /// failing that, by Verify(). Any other outcome (acceptance, crash, a
  /// different status code) fails the calling test.
  static bool RejectedAsCorruption(const std::string& mutated,
                                   const std::string& tag) {
    const std::string path = TempPath("corrupt_" + tag);
    WriteRaw(path, mutated);
    auto opened = MmapCorpus::Open(path);
    Status status = Status::OK();
    if (!opened.ok()) {
      status = opened.status();
    } else {
      status = opened.value()->Verify();
      opened.value().reset();  // Unmap before unlink.
    }
    std::remove(path.c_str());
    if (status.ok()) {
      ADD_FAILURE() << tag << ": corruption went undetected";
      return false;
    }
    EXPECT_EQ(status.code(), StatusCode::kCorruption)
        << tag << ": " << status.ToString();
    return status.code() == StatusCode::kCorruption;
  }

  static std::string* bytes_;
};

std::string* StoreCorruptionTest::bytes_ = nullptr;

TEST_F(StoreCorruptionTest, EveryTruncationPointIsRejected) {
  // A sweep of prefixes: inside the header, inside the section table, at
  // section boundaries, and a stride through the payloads. file_bytes in
  // the header pins the exact length, so every strict prefix must fail.
  std::vector<size_t> cuts = {0, 1, 7, 8, 12, 63, 64, 96,
                              kHeaderBytes + kSectionCount * kSectionEntryBytes,
                              bytes_->size() - 1};
  for (size_t cut = 128; cut < bytes_->size(); cut += bytes_->size() / 41) {
    cuts.push_back(cut);
  }
  for (const size_t cut : cuts) {
    ASSERT_LE(cut, bytes_->size());
    RejectedAsCorruption(bytes_->substr(0, cut),
                         "truncate_" + std::to_string(cut));
  }
}

TEST_F(StoreCorruptionTest, AppendedGarbageIsRejected) {
  RejectedAsCorruption(*bytes_ + std::string(17, '\xee'), "appended");
}

TEST_F(StoreCorruptionTest, SingleBitFlipsAreRejectedEverywhere) {
  // Deterministic sweep of single-bit flips across the whole file: header,
  // section table, and a sample of every payload region. Each must trip a
  // structural check at Open() or a checksum / deep-decode check in
  // Verify().
  std::mt19937 rng(2026);
  std::uniform_int_distribution<size_t> pick_byte(0, bytes_->size() - 1);
  std::uniform_int_distribution<int> pick_bit(0, 7);
  std::vector<std::pair<size_t, int>> flips;
  // Every byte of the header + section table is load-bearing; sample it
  // densely, then spray the payloads.
  const size_t table_end = kHeaderBytes + kSectionCount * kSectionEntryBytes;
  for (size_t offset = 0; offset < table_end; offset += 9) {
    flips.emplace_back(offset, static_cast<int>(offset) % 8);
  }
  for (int i = 0; i < 160; ++i) flips.emplace_back(pick_byte(rng),
                                                   pick_bit(rng));
  for (const auto& [offset, bit] : flips) {
    std::string mutated = *bytes_;
    mutated[offset] = static_cast<char>(
        static_cast<unsigned char>(mutated[offset]) ^ (1u << bit));
    RejectedAsCorruption(mutated, "bitflip_" + std::to_string(offset) + "_" +
                                      std::to_string(bit));
  }
}

TEST_F(StoreCorruptionTest, VerifyCorpusFileFlagsBitFlip) {
  // The satellite CI check in miniature: publish, corrupt one payload byte,
  // and the *file-level* verifier must report Corruption.
  const std::string path = TempPath("ci_flip.idx2");
  WriteRaw(path, *bytes_);
  ASSERT_TRUE(VerifyCorpusFile(path).ok());
  std::string mutated = *bytes_;
  mutated[mutated.size() - 5] ^= 0x10;  // Deep inside posting_blob.
  WriteRaw(path, mutated);
  const Status status = VerifyCorpusFile(path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();
  std::remove(path.c_str());
}

TEST(StoreV1HardeningTest, TruncationsAndMutationsAreRejected) {
  const ColumnIndex heap = BuildCorpus(150, 11);
  const std::string path = TempPath("v1.idx");
  ASSERT_TRUE(SaveColumnIndex(heap, path).ok());
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::remove(path.c_str());

  const std::string corrupt_path = TempPath("v1_corrupt.idx");
  // Truncation sweep.
  for (size_t cut : {size_t{0}, size_t{4}, size_t{8}, size_t{20},
                     bytes->size() / 2, bytes->size() - 1}) {
    WriteRaw(corrupt_path, bytes->substr(0, cut));
    auto loaded = LoadColumnIndex(corrupt_path);
    EXPECT_FALSE(loaded.ok()) << "cut=" << cut;
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
          << "cut=" << cut << ": " << loaded.status().ToString();
    }
  }
  // Oversized varint counts / absurd lengths from byte mutations must be
  // caught by bounds checks, not trusted. Flip high bytes early in the
  // stream where the cardinalities live.
  for (size_t offset : {size_t{8}, size_t{9}, size_t{10}, size_t{12}}) {
    std::string mutated = *bytes;
    mutated[offset] = static_cast<char>(0xff);
    WriteRaw(corrupt_path, mutated);
    auto loaded = LoadColumnIndex(corrupt_path);
    // Either rejected outright, or the mutation happened to be a valid
    // re-encoding — but it must never crash and never return a half-parsed
    // index silently (the loader validates totals at the end).
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
          << "offset=" << offset << ": " << loaded.status().ToString();
    }
  }
  // Trailing garbage is a hard error.
  WriteRaw(corrupt_path, *bytes + "extra");
  auto trailing = LoadColumnIndex(corrupt_path);
  EXPECT_FALSE(trailing.ok());
  std::remove(corrupt_path.c_str());
}

// ---- Durability ------------------------------------------------------------

TEST(StoreDurabilityTest, PublicationLeavesNoTempDebris) {
  const ColumnIndex heap = BuildCorpus(100, 2);
  const std::string v1_path = TempPath("durable.idx");
  const std::string v2_path = TempPath("durable.idx2");
  ASSERT_TRUE(SaveColumnIndex(heap, v1_path).ok());
  ASSERT_TRUE(WriteSnapshot(heap, v2_path).ok());
  for (const std::string& path : {v1_path, v2_path}) {
    EXPECT_FALSE(ReadFileToString(path + ".tmp").ok())
        << path << ".tmp left behind";
    EXPECT_TRUE(FileSize(path).ok());
  }
  // Overwrite-in-place republishes atomically over existing content.
  ASSERT_TRUE(WriteSnapshot(heap, v2_path).ok());
  EXPECT_TRUE(VerifyCorpusFile(v2_path).ok());
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
}

TEST(StoreDurabilityTest, FailedWriteKeepsOldContentIntact) {
  const ColumnIndex heap = BuildCorpus(100, 2);
  const std::string path = TempPath("keepold.idx2");
  ASSERT_TRUE(WriteSnapshot(heap, path).ok());
  const auto before = ReadFileToString(path);
  ASSERT_TRUE(before.ok());
  // Writing into a nonexistent directory must fail without touching `path`.
  EXPECT_FALSE(WriteSnapshot(heap, "/nonexistent-dir/x.idx2").ok());
  const auto after = ReadFileToString(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);
  std::remove(path.c_str());
}

// ---- Edge cases ------------------------------------------------------------

TEST(StoreEdgeCaseTest, EmptyCorpusRoundTrips) {
  ColumnIndex empty;
  empty.Finalize();
  const std::string path = TempPath("empty.idx2");
  ASSERT_TRUE(WriteSnapshot(empty, path).ok());
  auto opened = MmapCorpus::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->NumValues(), 0u);
  EXPECT_EQ((*opened)->TotalColumns(), 0u);
  EXPECT_EQ((*opened)->Lookup("anything"), kInvalidValueId);
  EXPECT_TRUE((*opened)->Verify().ok());
  opened.value().reset();
  std::remove(path.c_str());
}

TEST(StoreEdgeCaseTest, UnfinalizedIndexIsRefused) {
  ColumnIndex unfinalized;
  unfinalized.AddColumn({"a", "b"});
  auto encoded = EncodeSnapshot(unfinalized);
  EXPECT_FALSE(encoded.ok());
  EXPECT_EQ(encoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(StoreEdgeCaseTest, Crc32cKnownVectorsAndMasking) {
  // RFC 3720 test vector: 32 zero bytes.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
  // Incremental == one-shot.
  const std::string data = "tegra snapshot bytes";
  uint32_t incremental = Crc32cExtend(0, data.data(), 7);
  incremental = Crc32cExtend(incremental, data.data() + 7, data.size() - 7);
  EXPECT_EQ(incremental, Crc32c(data.data(), data.size()));
  // Masking round-trips and actually changes the value.
  const uint32_t crc = Crc32c(data.data(), data.size());
  EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
  EXPECT_NE(MaskCrc(crc), crc);
}

// ---- CorpusManager ---------------------------------------------------------

TEST(CorpusManagerTest, GenerationBumpsAndFailedReloadKeepsServing) {
  const ColumnIndex heap = BuildCorpus(120, 4);
  const std::string path = TempPath("manager.idx2");
  ASSERT_TRUE(WriteSnapshot(heap, path).ok());

  MetricsRegistry registry;
  CorpusManagerOptions options;
  options.metrics = &registry;
  CorpusManager manager(path, options);
  EXPECT_EQ(manager.Generation(), 0u);
  EXPECT_EQ(manager.Current(), nullptr);
  EXPECT_EQ(manager.CurrentFormat(), "none");

  uint64_t swap_generation = 0;
  manager.SetOnSwap([&](std::shared_ptr<const CorpusView> view,
                        uint64_t generation) {
    ASSERT_NE(view, nullptr);
    swap_generation = generation;
  });

  ASSERT_TRUE(manager.Reload().ok());
  EXPECT_EQ(manager.Generation(), 1u);
  EXPECT_EQ(swap_generation, 1u);
  EXPECT_EQ(manager.CurrentFormat(), "mmap-v2");
  const auto generation1 = manager.Current();
  ASSERT_NE(generation1, nullptr);

  ASSERT_TRUE(manager.Reload().ok());
  EXPECT_EQ(manager.Generation(), 2u);
  EXPECT_EQ(manager.ReloadCount(), 2u);
  // The old pin stays valid after the swap.
  EXPECT_EQ(generation1->NumValues(), manager.Current()->NumValues());

  // Corrupt the file: reload fails, generation and view are unchanged.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("TGRAIDX2garbage", f);
    std::fclose(f);
  }
  const auto generation2 = manager.Current();
  const Status failed = manager.Reload();
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(manager.Generation(), 2u);
  EXPECT_EQ(manager.Current(), generation2);
  EXPECT_EQ(manager.ReloadErrorCount(), 1u);
  EXPECT_FALSE(manager.LastError().empty());

  const auto snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("store.reload_total"), 2u);
  EXPECT_EQ(snap.counters.at("store.reload_errors_total"), 1u);
  EXPECT_EQ(snap.gauges.at("corpus.generation"), 2.0);

  std::remove(path.c_str());
}

TEST(CorpusManagerTest, ReloadWithoutPathIsInvalidArgument) {
  const auto heap = std::make_shared<ColumnIndex>(BuildCorpus(60, 1));
  CorpusManager manager(heap, /*path=*/"");
  EXPECT_EQ(manager.Generation(), 1u);
  EXPECT_EQ(manager.CurrentFormat(), "heap-v1");
  const Status status = manager.Reload();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.Generation(), 1u);
}

TEST(CorpusManagerTest, ConcurrentReadersRaceHotSwaps) {
  // The TSan target: readers continuously acquire the current generation
  // and hammer lookups/intersections while the main thread republishes and
  // swaps. Every reader pin must stay fully usable for its whole scope.
  const ColumnIndex corpus_a = BuildCorpus(150, 21);
  const ColumnIndex corpus_b = BuildCorpus(170, 22);
  const std::string path = TempPath("swapstress.idx2");
  ASSERT_TRUE(WriteSnapshot(corpus_a, path).ok());

  CorpusManager manager(path);
  ASSERT_TRUE(manager.Reload().ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&manager, &stop, &reads] {
      std::mt19937 rng(reads.fetch_add(1) + 99);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::shared_ptr<const CorpusView> view = manager.Current();
        ASSERT_NE(view, nullptr);
        const size_t n = view->NumValues();
        ASSERT_GT(n, 0u);
        std::uniform_int_distribution<ValueId> pick(
            0, static_cast<ValueId>(n - 1));
        for (int i = 0; i < 64; ++i) {
          const ValueId a = pick(rng);
          const ValueId b = pick(rng);
          const uint32_t ca = view->ColumnCount(a);
          const uint32_t cb = view->ColumnCount(b);
          const uint32_t both = view->CoOccurrenceCount(a, b);
          ASSERT_LE(both, std::min(ca, cb));
          ASSERT_EQ(view->Lookup(view->ValueString(a)), a);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Alternate publications while the readers run.
  for (int swap = 0; swap < 10; ++swap) {
    ASSERT_TRUE(
        WriteSnapshot(swap % 2 == 0 ? corpus_b : corpus_a, path).ok());
    ASSERT_TRUE(manager.Reload().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(manager.Generation(), 11u);
  EXPECT_GT(reads.load(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace store
}  // namespace tegra
