// Tests for the evaluation harness: the embedded Lists dataset, dataset
// builders, supervised example picking, bucketing and the report writers.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "core/segmentation.h"
#include "eval/experiment.h"
#include "eval/lists_data.h"

namespace tegra::eval {
namespace {

// ---- Lists dataset -------------------------------------------------------

TEST(ManualListsTest, TwentyListsWithVariedDelimiters) {
  const auto& lists = ManualLists();
  EXPECT_EQ(lists.size(), 20u);
  std::set<std::string> delimiters;
  for (const auto& list : lists) delimiters.insert(list.delimiters);
  // Heterogeneous delimiters across the set (comma, semicolon, colon, dash,
  // pipe, whitespace-only, ...).
  EXPECT_GE(delimiters.size(), 5u);
}

TEST(ManualListsTest, GroundTruthMatchesTokenization) {
  // Every ground-truth row must concatenate to exactly its line's tokens
  // under the list's tokenizer — otherwise the ground truth is wrong.
  for (const auto& list : ManualLists()) {
    Tokenizer tok(list.tokenizer_options());
    ASSERT_EQ(list.lines.size(), list.truth_rows.size()) << list.name;
    for (size_t r = 0; r < list.lines.size(); ++r) {
      const auto tokens = tok.Tokenize(list.lines[r]);
      Result<Bounds> bounds = CellsToBounds(tokens, list.truth_rows[r], tok);
      EXPECT_TRUE(bounds.ok())
          << list.name << " row " << r << ": " << bounds.status().ToString();
    }
  }
}

TEST(ManualListsTest, RectangularTruth) {
  for (const auto& list : ManualLists()) {
    const Table truth = list.TruthTable();
    EXPECT_GE(truth.NumRows(), 8u) << list.name;
    EXPECT_GE(truth.NumCols(), 3u) << list.name;
  }
}

// ---- dataset builders -----------------------------------------------------

TEST(BuildDatasetTest, GeneratedDatasetsHaveTruthAndLines) {
  for (DatasetId id :
       {DatasetId::kWeb, DatasetId::kWiki, DatasetId::kEnterprise}) {
    const auto instances = BuildDataset(id, 5);
    ASSERT_EQ(instances.size(), 5u);
    for (const auto& inst : instances) {
      EXPECT_EQ(inst.lines.size(), inst.truth.NumRows());
      EXPECT_FALSE(inst.lines.empty());
    }
  }
}

TEST(BuildDatasetTest, ListsDatasetIgnoresCount) {
  EXPECT_EQ(BuildDataset(DatasetId::kLists, 3).size(), 20u);
}

TEST(BuildDatasetTest, DatasetsAreDeterministic) {
  const auto a = BuildDataset(DatasetId::kWeb, 3);
  const auto b = BuildDataset(DatasetId::kWeb, 3);
  EXPECT_EQ(a[0].lines, b[0].lines);
  EXPECT_EQ(a[2].truth.rows(), b[2].truth.rows());
}

TEST(BuildDatasetTest, DatasetsDifferAcrossIds) {
  const auto web = BuildDataset(DatasetId::kWeb, 3);
  const auto wiki = BuildDataset(DatasetId::kWiki, 3);
  EXPECT_NE(web[0].lines, wiki[0].lines);
}

TEST(EnvKnobsTest, DefaultsArePositive) {
  EXPECT_GT(BenchTablesPerDataset(), 0u);
  EXPECT_GT(WebCorpusTables(), 0u);
  EXPECT_GT(EnterpriseCorpusTables(), 0u);
}

// ---- example picking ---------------------------------------------------------

TEST(PickExamplesTest, PicksDistinctRowsDeterministically) {
  const auto instances = BuildDataset(DatasetId::kWeb, 2);
  const auto ex1 = PickExamples(instances[0], 2, 7);
  const auto ex2 = PickExamples(instances[0], 2, 7);
  ASSERT_EQ(ex1.size(), 2u);
  EXPECT_NE(ex1[0].line_index, ex1[1].line_index);
  EXPECT_EQ(ex1[0].line_index, ex2[0].line_index);
  // Cells are the ground-truth row.
  EXPECT_EQ(ex1[0].cells, instances[0].truth.Row(ex1[0].line_index));
}

TEST(PickExamplesTest, CapsAtRowCount) {
  const auto instances = BuildDataset(DatasetId::kWeb, 1);
  const auto ex =
      PickExamples(instances[0], 1000, 7);
  EXPECT_EQ(ex.size(), instances[0].truth.NumRows());
  EXPECT_TRUE(PickExamples(instances[0], 0, 7).empty());
}

// ---- EvaluateAlgorithm ---------------------------------------------------------

TEST(EvaluateAlgorithmTest, PerfectOracleScoresOne) {
  const auto instances = BuildDataset(DatasetId::kWeb, 3);
  const SegmentFn oracle = [](const EvalInstance& inst) -> Result<Table> {
    return inst.truth;
  };
  const AlgoEvaluation eval = EvaluateAlgorithm(instances, oracle);
  EXPECT_DOUBLE_EQ(eval.mean.f1, 1.0);
  EXPECT_EQ(eval.failures, 0u);
  EXPECT_EQ(eval.scores.size(), 3u);
}

TEST(EvaluateAlgorithmTest, FailuresScoreZero) {
  const auto instances = BuildDataset(DatasetId::kWeb, 2);
  const SegmentFn failing = [](const EvalInstance&) -> Result<Table> {
    return Status::Internal("nope");
  };
  const AlgoEvaluation eval = EvaluateAlgorithm(instances, failing);
  EXPECT_EQ(eval.failures, 2u);
  EXPECT_DOUBLE_EQ(eval.mean.f1, 0.0);
}

// ---- bucketing -----------------------------------------------------------------

TEST(EqualBucketsTest, SplitsSortedIndices) {
  const std::vector<double> keys = {5, 1, 4, 2, 3, 0};
  const auto buckets = EqualBuckets(keys, 3);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], (std::vector<size_t>{5, 1}));
  EXPECT_EQ(buckets[1], (std::vector<size_t>{3, 4}));
  EXPECT_EQ(buckets[2], (std::vector<size_t>{2, 0}));
}

TEST(EqualBucketsTest, UnevenSizesCovered) {
  const std::vector<double> keys = {1, 2, 3, 4, 5};
  const auto buckets = EqualBuckets(keys, 2);
  size_t total = 0;
  for (const auto& b : buckets) total += b.size();
  EXPECT_EQ(total, 5u);
}

TEST(MeanFTest, AveragesSubset) {
  std::vector<PrfScore> scores(3);
  scores[0].f1 = 0.2;
  scores[1].f1 = 0.4;
  scores[2].f1 = 0.9;
  EXPECT_NEAR(MeanF(scores, {0, 2}), 0.55, 1e-12);
  EXPECT_DOUBLE_EQ(MeanF(scores, {}), 0.0);
}

// ---- output --------------------------------------------------------------------

TEST(TextTableTest, AlignsColumnsWithHeaderRule) {
  TextTable t({"a", "bbb"});
  t.AddRow({"xx", "y"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("a   bbb"), std::string::npos);
  EXPECT_NE(out.find("--  ---"), std::string::npos);
  EXPECT_NE(out.find("xx  y"), std::string::npos);
}

TEST(FormatPrfTest, Renders) {
  PrfScore s{0.5, 1.0, 0.6667};
  EXPECT_EQ(FormatPrf(s), "0.50/1.00/0.67");
}

}  // namespace
}  // namespace tegra::eval
