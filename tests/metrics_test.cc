// Tests for counters, gauges, fixed-bucket latency histograms and the
// registry snapshot used by the serving layer.

#include "service/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace tegra {
namespace {

TEST(CounterTest, IncrementsMonotonically) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetOverwrites) {
  Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.Value(), 3.5);
  g.Set(-1);
  EXPECT_DOUBLE_EQ(g.Value(), -1);
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram h;
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.sum, 0);
  EXPECT_DOUBLE_EQ(snap.p50, 0);
  EXPECT_DOUBLE_EQ(snap.p99, 0);
}

TEST(HistogramTest, CountSumMinMax) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(3.0);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 5.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 3.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 5.0 / 3.0);
}

TEST(HistogramTest, PercentilesAreOrderedAndInRange) {
  Histogram h;  // default latency bounds
  // A skewed latency population: mostly fast, a slow tail.
  for (int i = 0; i < 900; ++i) h.Observe(0.001);
  for (int i = 0; i < 90; ++i) h.Observe(0.050);
  for (int i = 0; i < 10; ++i) h.Observe(1.0);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_LE(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
  EXPECT_GE(snap.p50, snap.min);
  EXPECT_LE(snap.p99, snap.max);
  // p50 must sit in the fast mass, p99 in the slow tail's bucket range.
  EXPECT_LT(snap.p50, 0.01);
  EXPECT_GT(snap.p99, 0.05);
}

TEST(HistogramTest, ObservationsBeyondLastBoundLandInOverflowBucket) {
  Histogram h({0.1});
  h.Observe(5.0);
  h.Observe(7.0);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.max, 7.0);
  EXPECT_GT(snap.p50, 0.1);  // Interpolated inside the overflow bucket.
}

TEST(HistogramTest, ConcurrentObserveLosesNothing) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) h.Observe(0.001 * (i % 100 + 1));
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(h.Snapshot().count, 80000u);
}

TEST(MetricsRegistryTest, InstrumentsAreStableAcrossLookups) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(registry.GetCounter("x")->Value(), 1u);
  EXPECT_EQ(registry.GetHistogram("h"), registry.GetHistogram("h"));
  EXPECT_EQ(registry.GetGauge("g"), registry.GetGauge("g"));
}

TEST(MetricsRegistryTest, SnapshotContainsEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("requests")->Increment(7);
  registry.GetGauge("depth")->Set(3);
  registry.GetHistogram("latency")->Observe(0.25);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_TRUE(snap.counters.count("requests"));
  EXPECT_EQ(snap.counters.at("requests"), 7u);
  ASSERT_TRUE(snap.gauges.count("depth"));
  EXPECT_DOUBLE_EQ(snap.gauges.at("depth"), 3);
  ASSERT_TRUE(snap.histograms.count("latency"));
  EXPECT_EQ(snap.histograms.at("latency").count, 1u);
}

TEST(MetricsRegistryTest, RenderingsMentionEveryName) {
  MetricsRegistry registry;
  registry.GetCounter("c1")->Increment();
  registry.GetGauge("g1")->Set(1);
  registry.GetHistogram("h1")->Observe(0.5);
  const MetricsSnapshot snap = registry.Snapshot();
  const std::string text = snap.ToString();
  EXPECT_NE(text.find("c1"), std::string::npos);
  EXPECT_NE(text.find("g1"), std::string::npos);
  EXPECT_NE(text.find("h1"), std::string::npos);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"c1\":1"), std::string::npos);
  EXPECT_NE(json.find("\"h1\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        registry.GetCounter("shared" + std::to_string(i % 10))->Increment();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  uint64_t total = 0;
  for (const auto& [name, value] : registry.Snapshot().counters) {
    (void)name;
    total += value;
  }
  EXPECT_EQ(total, 8u * 200u);
}

TEST(ScopedLatencyTest, ObservesOnScopeExit) {
  Histogram h;
  { ScopedLatency latency(&h); }
  EXPECT_EQ(h.Snapshot().count, 1u);
  { ScopedLatency latency(nullptr); }  // Null histogram is a no-op.
}

TEST(HistogramTest, SnapshotExposesPerBucketCounts) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);   // bucket 0 (<= 1)
  h.Observe(1.5);   // bucket 1 (<= 2)
  h.Observe(3.0);   // bucket 2 (<= 4)
  h.Observe(100.0); // overflow (+inf) bucket
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.bucket_counts.size(), 4u);  // bounds + implicit +inf
  EXPECT_EQ(snap.bucket_counts[0], 1u);
  EXPECT_EQ(snap.bucket_counts[1], 1u);
  EXPECT_EQ(snap.bucket_counts[2], 1u);
  EXPECT_EQ(snap.bucket_counts[3], 1u);
  uint64_t total = 0;
  for (uint64_t c : snap.bucket_counts) total += c;
  EXPECT_EQ(total, snap.count);
}

// Regression for the snapshot race: Observe used to bump the bucket/count
// before the min/max CAS loops, so a concurrent Snapshot could see count > 0
// with min still +inf and max still -inf and feed them into std::clamp
// (UB: hi < lo). Snapshots taken mid-storm must always be internally sane.
TEST(HistogramTest, ConcurrentObserveAndSnapshotStaySane) {
  Histogram h;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      double v = 1e-4 * (t + 1);
      // do-while: every writer observes at least once even if the reader
      // loop below finishes before this thread is first scheduled.
      do {
        h.Observe(v);
        v = v < 1.0 ? v * 1.01 : 1e-4;
      } while (!stop.load(std::memory_order_relaxed));
    });
  }
  for (int i = 0; i < 2000; ++i) {
    const HistogramSnapshot snap = h.Snapshot();
    if (snap.count == 0) continue;
    EXPECT_LE(snap.min, snap.max);
    EXPECT_GE(snap.min, 0.0);
    EXPECT_GE(snap.p50, snap.min);
    EXPECT_LE(snap.p50, snap.max);
    EXPECT_LE(snap.p50, snap.p95);
    EXPECT_LE(snap.p95, snap.p99);
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  const HistogramSnapshot final_snap = h.Snapshot();
  EXPECT_GT(final_snap.count, 0u);
  EXPECT_LE(final_snap.min, final_snap.max);
}

}  // namespace
}  // namespace tegra
