// Tests for the minimal JSON layer behind the tegra_serve NDJSON protocol.

#include "service/serve_json.h"

#include <gtest/gtest.h>

namespace tegra {
namespace serve {
namespace {

TEST(ParseJsonTest, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->AsBool());
  EXPECT_FALSE(ParseJson("false")->AsBool(true));
  EXPECT_DOUBLE_EQ(ParseJson("3.5")->AsNumber(), 3.5);
  EXPECT_DOUBLE_EQ(ParseJson("-12")->AsNumber(), -12);
  EXPECT_DOUBLE_EQ(ParseJson("1e3")->AsNumber(), 1000);
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
}

TEST(ParseJsonTest, RequestShapedObject) {
  auto parsed = ParseJson(
      R"({"id": 7, "lines": ["a b", "c d"], "columns": 2,)"
      R"( "deadline_ms": 50.5, "bypass_cache": true})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& v = *parsed;
  EXPECT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v["id"].AsNumber(), 7);
  ASSERT_EQ(v["lines"].AsArray().size(), 2u);
  EXPECT_EQ(v["lines"].AsArray()[0].AsString(), "a b");
  EXPECT_DOUBLE_EQ(v["columns"].AsNumber(), 2);
  EXPECT_DOUBLE_EQ(v["deadline_ms"].AsNumber(), 50.5);
  EXPECT_TRUE(v["bypass_cache"].AsBool());
  // Missing keys chain to null safely.
  EXPECT_TRUE(v["missing"].is_null());
  EXPECT_TRUE(v["missing"]["nested"].is_null());
  EXPECT_DOUBLE_EQ(v["missing"].AsNumber(123), 123);
}

TEST(ParseJsonTest, EscapesRoundTrip) {
  auto parsed = ParseJson(R"("line\n\ttab \"quote\" back\\slash A")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "line\n\ttab \"quote\" back\\slash A");

  JsonValue v = JsonValue::Str("a\"b\\c\nd\x01");
  auto reparsed = ParseJson(v.Dump());
  ASSERT_TRUE(reparsed.ok()) << v.Dump();
  EXPECT_EQ(reparsed->AsString(), "a\"b\\c\nd\x01");
}

TEST(ParseJsonTest, NestedStructuresRoundTrip) {
  const std::string doc =
      R"({"a":[1,2,[3]],"b":{"c":null,"d":[true,false]},"e":"x"})";
  auto parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Dump(), doc);
}

TEST(ParseJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1}extra").ok());
  EXPECT_FALSE(ParseJson("1e").ok());
  for (const auto& bad : {"\"\\q\"", "\"\\u12g4\""}) {
    EXPECT_FALSE(ParseJson(bad).ok()) << bad;
  }
}

TEST(ParseJsonTest, DeepNestingIsRejectedNotCrashed) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonValueTest, BuildersProduceCompactJson) {
  JsonValue obj = JsonValue::Object();
  obj.Set("ok", JsonValue::Bool(true));
  obj.Set("n", JsonValue::Number(3));
  obj.Set("frac", JsonValue::Number(0.5));
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Str("x"));
  arr.Append(JsonValue::Null());
  obj.Set("items", std::move(arr));
  EXPECT_EQ(obj.Dump(),
            R"({"frac":0.5,"items":["x",null],"n":3,"ok":true})");
}

TEST(JsonEscapeTest, ControlCharacters) {
  EXPECT_EQ(JsonEscape("a\x02z"), "a\\u0002z");
  EXPECT_EQ(JsonEscape("tab\t"), "tab\\t");
  EXPECT_EQ(JsonEscape("plain"), "plain");
}

}  // namespace
}  // namespace serve
}  // namespace tegra
