// Tests for TegraExtractor configuration axes and the distance-function
// ablation knobs.

#include <gtest/gtest.h>

#include "core/tegra.h"
#include "distance/distance.h"
#include "synth/corpus_gen.h"
#include "corpus/column_index.h"

namespace tegra {
namespace {

class OptionsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    index_ = new ColumnIndex(synth::BuildBackgroundIndex(
        synth::CorpusProfile::kWeb, /*num_tables=*/800, /*seed=*/404));
    stats_ = new CorpusStats(index_);
  }
  static void TearDownTestSuite() {
    delete stats_;
    delete index_;
  }
  static ColumnIndex* index_;
  static CorpusStats* stats_;

  const std::vector<std::string> lines_ = {
      "Boston Massachusetts 645,966",
      "Worcester Massachusetts 182,544",
      "Providence Rhode Island 178,042",
      "Hartford Connecticut 124,775",
      "Stamford Connecticut 122,643",
  };
};

ColumnIndex* OptionsTest::index_ = nullptr;
CorpusStats* OptionsTest::stats_ = nullptr;

TEST_F(OptionsTest, MaxColumnsCapsTheSweep) {
  TegraOptions opts;
  opts.max_columns = 2;
  TegraExtractor tegra(stats_, opts);
  auto result = tegra.Extract(lines_);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->num_columns, 2);
}

TEST_F(OptionsTest, TokenizerOptionsFlowThrough) {
  TegraOptions opts;
  opts.tokenizer.punctuation_delimiters = ",";
  TegraExtractor tegra(stats_, opts);
  auto result = tegra.ExtractWithColumns({"a,b", "c,d"}, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.Cell(0, 0), "a");
  EXPECT_EQ(result->table.Cell(0, 1), "b");
}

TEST_F(OptionsTest, ExtractTokensEquivalentToExtract) {
  TegraExtractor tegra(stats_);
  Tokenizer tok;
  std::vector<std::vector<std::string>> token_lines;
  for (const auto& l : lines_) token_lines.push_back(tok.Tokenize(l));
  auto a = tegra.Extract(lines_);
  auto b = tegra.ExtractTokens(std::move(token_lines), 0, nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->table.rows(), b->table.rows());
  EXPECT_NEAR(a->sp, b->sp, 1e-9);
}

TEST_F(OptionsTest, ResultFieldsAreConsistent) {
  TegraExtractor tegra(stats_);
  auto result = tegra.Extract(lines_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->bounds.size(), lines_.size());
  EXPECT_EQ(result->table.NumRows(), lines_.size());
  EXPECT_EQ(static_cast<int>(result->table.NumCols()), result->num_columns);
  EXPECT_NEAR(result->per_column_objective,
              result->sp / result->num_columns, 1e-9);
  const double pairs = 5.0 * 4.0 / 2.0;
  EXPECT_NEAR(result->per_pair_objective,
              result->sp / (pairs * result->num_columns), 1e-9);
  EXPECT_GE(result->anchor_distance, 0.0);
  EXPECT_LT(result->anchor_line, lines_.size());
  EXPECT_GT(result->nodes_expanded, 0u);
  EXPECT_GE(result->seconds, 0.0);
}

TEST_F(OptionsTest, ConflictingColumnsAndExamplesRejected) {
  TegraExtractor tegra(stats_);
  std::vector<SegmentationExample> examples = {
      {0, {"Boston", "Massachusetts", "645,966"}},
  };
  Tokenizer tok;
  std::vector<std::vector<std::string>> token_lines;
  for (const auto& l : lines_) token_lines.push_back(tok.Tokenize(l));
  auto result = tegra.ExtractTokens(std::move(token_lines), 2, &examples);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(OptionsTest, MismatchedExampleWidthsRejected) {
  TegraExtractor tegra(stats_);
  std::vector<SegmentationExample> examples = {
      {0, {"Boston", "Massachusetts", "645,966"}},
      {1, {"Worcester Massachusetts", "182,544"}},
  };
  auto result = tegra.ExtractWithExamples(lines_, examples);
  EXPECT_FALSE(result.ok());
}

TEST_F(OptionsTest, ExhaustiveSweepMatchesOrBeatsSampledSweep) {
  TegraOptions sampled;
  sampled.sweep_anchor_sample = 1;
  TegraOptions exhaustive;
  exhaustive.sweep_anchor_sample = 0;
  exhaustive.final_anchor_sample = 0;
  TegraExtractor fast(stats_, sampled);
  TegraExtractor full(stats_, exhaustive);
  auto a = fast.Extract(lines_);
  auto b = full.Extract(lines_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Both must produce valid rectangular tables for the same list.
  EXPECT_EQ(a->table.NumRows(), b->table.NumRows());
}

TEST_F(OptionsTest, WidthCapRelaxationKeepsLongLinesFeasible) {
  TegraOptions opts;
  opts.max_cell_tokens = 2;
  TegraExtractor tegra(stats_, opts);
  // 12 tokens into 3 columns needs width 4 > cap 2: cap must relax.
  auto result = tegra.ExtractWithColumns(
      {"a b c d e f g h i j k l", "m n o p q r s t u v w x"}, 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.NumCols(), 3u);
}

// ---- distance ablation knobs ---------------------------------------------

TEST(DistanceKnobsTest, TypeCoherenceToggle) {
  CellCatalog catalog(nullptr);
  const CellInfo& a = catalog.Register("1,532,001", 1);
  const CellInfo& b = catalog.Register("874,223", 1);
  CellDistance with(nullptr, {});
  DistanceOptions off_opts;
  off_opts.type_coherence = false;
  CellDistance without(nullptr, off_opts);
  EXPECT_DOUBLE_EQ(with.SemanticDistance(a, b), 0.55);
  EXPECT_DOUBLE_EQ(without.SemanticDistance(a, b), 1.0);
}

TEST(DistanceKnobsTest, KnownValuePriorToggle) {
  ColumnIndex index;
  index.AddColumn({"alpha"});
  index.AddColumn({"omega"});
  index.Finalize();
  CorpusStats stats(&index);
  CellCatalog catalog(&index);
  const CellInfo& a = catalog.Register("alpha", 1);
  const CellInfo& b = catalog.Register("omega", 1);
  CellDistance with(&stats, {});
  DistanceOptions off_opts;
  off_opts.known_value_prior = false;
  CellDistance without(&stats, off_opts);
  EXPECT_DOUBLE_EQ(with.SemanticDistance(a, b), 0.85);
  EXPECT_DOUBLE_EQ(without.SemanticDistance(a, b), 1.0);
}

TEST(DistanceKnobsTest, NullNullPriceConfigurable) {
  CellCatalog catalog(nullptr);
  DistanceOptions opts;
  opts.null_null_distance = 0.5;
  CellDistance d(nullptr, opts);
  EXPECT_DOUBLE_EQ(d.Distance(catalog.NullCell(), catalog.NullCell()), 0.5);
}

}  // namespace
}  // namespace tegra
