// Tests for Table, ColumnIndex, CorpusStats (including the paper's PMI
// worked example) and corpus serialization.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "corpus/column_index.h"
#include "corpus/corpus_io.h"
#include "corpus/corpus_stats.h"
#include "corpus/table.h"

namespace tegra {
namespace {

// ---- Table -----------------------------------------------------------------

TEST(TableTest, AddRowFixesWidth) {
  Table t;
  t.AddRow({"a", "b"});
  t.AddRow({"c", "d"});
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.NumCols(), 2u);
  EXPECT_EQ(t.NumCells(), 4u);
  EXPECT_EQ(t.Cell(1, 0), "c");
  EXPECT_EQ(t.Column(1), (std::vector<std::string>{"b", "d"}));
}

TEST(TableTest, NumericFraction) {
  Table t({{"Boston", "42"}, {"Toronto", "7.5"}});
  EXPECT_DOUBLE_EQ(t.NumericCellFraction(), 0.5);
}

TEST(TableTest, NumericFractionIgnoresEmptyCells) {
  Table t(std::vector<std::vector<std::string>>{{"", "42"}});
  EXPECT_DOUBLE_EQ(t.NumericCellFraction(), 1.0);
}

TEST(TableTest, AvgTokensPerCell) {
  Tokenizer tok;
  Table t({{"New York City", "7"}, {"Boston", "12"}});
  // (3 + 1 + 1 + 1) / 4.
  EXPECT_DOUBLE_EQ(t.AvgTokensPerCell(tok), 1.5);
}

TEST(TableTest, ToStringAlignsColumns) {
  Table t({{"a", "bb"}, {"ccc", "d"}});
  EXPECT_EQ(t.ToString(), "| a   | bb |\n| ccc | d  |\n");
}

// ---- NormalizeValue ---------------------------------------------------------

TEST(NormalizeValueTest, CaseAndWhitespace) {
  EXPECT_EQ(NormalizeValue("  New   YORK  "), "new york");
  EXPECT_EQ(NormalizeValue("x"), "x");
  EXPECT_EQ(NormalizeValue("   "), "");
}

// ---- ColumnIndex ------------------------------------------------------------

TEST(ColumnIndexTest, PostingsAndCounts) {
  ColumnIndex index;
  index.AddColumn({"Toronto", "Boston"});
  index.AddColumn({"Toronto", "Chicago"});
  index.AddColumn({"Boston"});
  index.Finalize();

  EXPECT_EQ(index.TotalColumns(), 3u);
  const ValueId toronto = index.Lookup("toronto");
  const ValueId boston = index.Lookup("Boston");  // Case-insensitive.
  ASSERT_NE(toronto, kInvalidValueId);
  ASSERT_NE(boston, kInvalidValueId);
  EXPECT_EQ(index.ColumnCount(toronto), 2u);
  EXPECT_EQ(index.ColumnCount(boston), 2u);
  EXPECT_EQ(index.CoOccurrenceCount(toronto, boston), 1u);
  EXPECT_EQ(index.Lookup("nowhere"), kInvalidValueId);
}

TEST(ColumnIndexTest, DuplicatesWithinColumnCountOnce) {
  ColumnIndex index;
  index.AddColumn({"x", "x", "X", " x "});
  index.Finalize();
  EXPECT_EQ(index.ColumnCount(index.Lookup("x")), 1u);
}

TEST(ColumnIndexTest, EmptyCellsIgnored) {
  ColumnIndex index;
  index.AddColumn({"", "  ", "a"});
  index.Finalize();
  EXPECT_EQ(index.NumValues(), 1u);
}

TEST(ColumnIndexTest, IntersectionAsymmetricSizes) {
  ColumnIndex index;
  // "common" in every column; "rare" in one.
  for (int i = 0; i < 200; ++i) {
    std::vector<std::string> col = {"common", "filler" + std::to_string(i)};
    if (i == 137) col.push_back("rare");
    index.AddColumn(col);
  }
  index.Finalize();
  const ValueId common = index.Lookup("common");
  const ValueId rare = index.Lookup("rare");
  EXPECT_EQ(index.ColumnCount(common), 200u);
  EXPECT_EQ(index.CoOccurrenceCount(common, rare), 1u);
  EXPECT_EQ(index.CoOccurrenceCount(rare, common), 1u);
  EXPECT_EQ(index.UnionCount(rare, common), 200u);
}

TEST(ColumnIndexTest, SelfIntersectionIsCount) {
  ColumnIndex index;
  index.AddColumn({"a"});
  index.AddColumn({"a"});
  index.Finalize();
  const ValueId a = index.Lookup("a");
  EXPECT_EQ(index.CoOccurrenceCount(a, a), 2u);
}

TEST(ColumnIndexTest, AddTableIndexesEveryColumn) {
  Table t({{"Boston", "42"}, {"Toronto", "17"}});
  ColumnIndex index;
  index.AddTable(t);
  index.Finalize();
  EXPECT_EQ(index.TotalColumns(), 2u);
  EXPECT_NE(index.Lookup("boston"), kInvalidValueId);
  EXPECT_NE(index.Lookup("42"), kInvalidValueId);
}

// ---- CorpusStats ------------------------------------------------------------

/// Builds a corpus realizing the paper's Example 2 ratios at a reduced
/// scale: N = 10,000 columns, |C(canada)| = 100, |C(republic of korea)| = 50,
/// co-occurrence 30.
ColumnIndex BuildExample2Corpus() {
  ColumnIndex index;
  for (int i = 0; i < 10000; ++i) {
    std::vector<std::string> col = {"pad" + std::to_string(i)};
    if (i < 30) {
      col.push_back("Canada");
      col.push_back("Republic of Korea");
    } else if (i < 100) {
      col.push_back("Canada");
    } else if (i < 120) {
      col.push_back("Republic of Korea");
    }
    index.AddColumn(col);
  }
  index.Finalize();
  return index;
}

TEST(CorpusStatsTest, PaperExample2Pmi) {
  // PMI = log(p(a,b) / (p(a) p(b))) with p(a)=1e-2, p(b)=5e-3, p(ab)=3e-3:
  // log(3e-3 / 5e-5) = log(60) = 4.094. (The paper's absolute value differs
  // because its N is 100M; the ratio structure is identical.)
  ColumnIndex index = BuildExample2Corpus();
  CorpusStats stats(&index);
  const ValueId a = index.Lookup("canada");
  const ValueId b = index.Lookup("republic of korea");
  EXPECT_NEAR(stats.Probability(a), 0.01, 1e-9);
  EXPECT_NEAR(stats.JointProbability(a, b), 0.003, 1e-9);
  EXPECT_NEAR(stats.Pmi(a, b), std::log(60.0), 1e-9);
  EXPECT_GT(stats.Pmi(a, b), 0) << "strongly related values";
  // NPMI = PMI / -log p(ab).
  EXPECT_NEAR(stats.Npmi(a, b), std::log(60.0) / -std::log(0.003), 1e-9);
}

TEST(CorpusStatsTest, NpmiBounds) {
  ColumnIndex index = BuildExample2Corpus();
  CorpusStats stats(&index);
  const ValueId a = index.Lookup("canada");
  const ValueId b = index.Lookup("republic of korea");
  const ValueId pad = index.Lookup("pad5000");  // Shares no column with b.
  EXPECT_GE(stats.Npmi(a, b), -1.0);
  EXPECT_LE(stats.Npmi(a, b), 1.0);
  // Identical value: NPMI = 1.
  EXPECT_DOUBLE_EQ(stats.Npmi(a, a), 1.0);
  // Never co-occurring: NPMI = -1.
  EXPECT_DOUBLE_EQ(stats.Npmi(b, pad), -1.0);
}

TEST(CorpusStatsTest, SemanticDistanceTransformRange) {
  ColumnIndex index = BuildExample2Corpus();
  CorpusStats stats(&index);
  const ValueId a = index.Lookup("canada");
  const ValueId b = index.Lookup("republic of korea");
  const double d = stats.SemanticDistance(a, b);
  EXPECT_GE(d, 0.5);
  EXPECT_LE(d, 1.0);
  EXPECT_DOUBLE_EQ(stats.SemanticDistance(a, a), 0.5);
  EXPECT_DOUBLE_EQ(stats.SemanticDistance(kInvalidValueId, a), 1.0);
}

TEST(CorpusStatsTest, JaccardMeasure) {
  ColumnIndex index = BuildExample2Corpus();
  CorpusStats stats(&index);
  const ValueId a = index.Lookup("canada");
  const ValueId b = index.Lookup("republic of korea");
  // |A∩B| = 30, |A∪B| = 100 + 50 - 30 = 120.
  EXPECT_NEAR(stats.SemanticDistance(a, b, SemanticMeasure::kJaccard),
              1.0 - 30.0 / 120.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.SemanticDistance(a, a, SemanticMeasure::kJaccard),
                   0.0);
}

TEST(CorpusStatsTest, CacheGrowsAndHits) {
  ColumnIndex index = BuildExample2Corpus();
  CorpusStats stats(&index);
  const ValueId a = index.Lookup("canada");
  const ValueId b = index.Lookup("republic of korea");
  EXPECT_EQ(stats.CacheSize(), 0u);
  (void)stats.JointProbability(a, b);
  EXPECT_EQ(stats.CacheSize(), 1u);
  (void)stats.JointProbability(b, a);  // Symmetric key: no growth.
  EXPECT_EQ(stats.CacheSize(), 1u);
}

TEST(CorpusStatsTest, ColumnFrequency) {
  ColumnIndex index = BuildExample2Corpus();
  CorpusStats stats(&index);
  EXPECT_EQ(stats.ColumnFrequency("Canada"), 100u);
  EXPECT_EQ(stats.ColumnFrequency("never seen"), 0u);
}

TEST(CorpusStatsTest, SymmetricPairsShareOneCacheEntryWithHit) {
  ColumnIndex index = BuildExample2Corpus();
  CorpusStats stats(&index);
  const ValueId a = index.Lookup("canada");
  const ValueId b = index.Lookup("republic of korea");
  (void)stats.JointProbability(a, b);
  (void)stats.JointProbability(b, a);
  const LruCacheStats cache = stats.CoCacheStats();
  EXPECT_EQ(cache.size, 1u);    // (a,b) and (b,a) canonicalize to one key.
  EXPECT_EQ(cache.misses, 1u);  // First order computed...
  EXPECT_EQ(cache.hits, 1u);    // ...reversed order was a memo hit.
}

TEST(CorpusStatsTest, CoCacheStaysWithinConfiguredCapacityUnderStress) {
  ColumnIndex index = BuildExample2Corpus();
  CorpusStatsOptions options;
  options.co_cache_capacity = 128;
  options.co_cache_shards = 4;
  CorpusStats stats(&index, options);

  // Stress far more distinct pairs than the capacity: every pad value
  // against several others. The old unbounded map would hold all ~30k pairs.
  std::vector<ValueId> ids;
  for (int i = 0; i < 250; ++i) {
    ids.push_back(index.Lookup("pad" + std::to_string(i)));
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); j += 2) {
      (void)stats.JointProbability(ids[i], ids[j]);
    }
  }
  const LruCacheStats cache = stats.CoCacheStats();
  EXPECT_LE(cache.size, options.co_cache_capacity);
  EXPECT_LE(stats.CacheSize(), options.co_cache_capacity);
  EXPECT_GT(cache.evictions, 0u);
  EXPECT_GT(cache.misses, options.co_cache_capacity);  // Far more traffic...
  EXPECT_EQ(cache.capacity, options.co_cache_capacity);

  // Bounded memoization must never change answers, only recompute them.
  const ValueId a = index.Lookup("canada");
  const ValueId b = index.Lookup("republic of korea");
  EXPECT_NEAR(stats.JointProbability(a, b), 0.003, 1e-9);
  EXPECT_NEAR(stats.JointProbability(b, a), 0.003, 1e-9);
}

TEST(CorpusStatsTest, ZeroCapacityDisablesMemoizationButStaysCorrect) {
  ColumnIndex index = BuildExample2Corpus();
  CorpusStatsOptions options;
  options.co_cache_capacity = 0;
  CorpusStats stats(&index, options);
  const ValueId a = index.Lookup("canada");
  const ValueId b = index.Lookup("republic of korea");
  EXPECT_NEAR(stats.JointProbability(a, b), 0.003, 1e-9);
  EXPECT_NEAR(stats.JointProbability(a, b), 0.003, 1e-9);
  EXPECT_EQ(stats.CacheSize(), 0u);
  EXPECT_EQ(stats.CoCacheStats().hits, 0u);
}

// ---- corpus_io ---------------------------------------------------------------

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(CorpusIoTest, RoundTrip) {
  ColumnIndex index;
  index.AddColumn({"Toronto", "Boston", "New York City"});
  index.AddColumn({"Toronto", "42"});
  index.Finalize();

  const std::string path = TempPath("tegra_roundtrip.idx");
  ASSERT_TRUE(SaveColumnIndex(index, path).ok());
  Result<ColumnIndex> loaded = LoadColumnIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->TotalColumns(), index.TotalColumns());
  EXPECT_EQ(loaded->NumValues(), index.NumValues());
  const ValueId a = loaded->Lookup("toronto");
  ASSERT_NE(a, kInvalidValueId);
  EXPECT_EQ(loaded->ColumnCount(a), 2u);
  EXPECT_EQ(loaded->CoOccurrenceCount(a, loaded->Lookup("boston")), 1u);
  std::filesystem::remove(path);
}

TEST(CorpusIoTest, MissingFileIsIOError) {
  Result<ColumnIndex> r = LoadColumnIndex("/nonexistent/path.idx");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(CorpusIoTest, BadMagicIsCorruption) {
  const std::string path = TempPath("tegra_badmagic.idx");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("NOTANIDX_________", f);
  std::fclose(f);
  Result<ColumnIndex> r = LoadColumnIndex(path);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
  std::filesystem::remove(path);
}

TEST(CorpusIoTest, TruncatedFileIsCorruption) {
  ColumnIndex index;
  index.AddColumn({"alpha", "beta", "gamma"});
  index.Finalize();
  const std::string path = TempPath("tegra_trunc.idx");
  ASSERT_TRUE(SaveColumnIndex(index, path).ok());
  // Truncate to half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  Result<ColumnIndex> r = LoadColumnIndex(path);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
  std::filesystem::remove(path);
}

TEST(CorpusIoTest, SavingUnfinalizedIndexFails) {
  ColumnIndex index;
  index.AddColumn({"a"});
  EXPECT_TRUE(SaveColumnIndex(index, TempPath("x.idx")).IsInvalidArgument());
}

TEST(CorpusIoTest, LoadOrBuildUsesBuilderThenCache) {
  const std::string path = TempPath("tegra_loadorbuild.idx");
  std::filesystem::remove(path);
  int builds = 0;
  auto builder = [&builds] {
    ++builds;
    ColumnIndex index;
    index.AddColumn({"v1", "v2"});
    index.Finalize();
    return index;
  };
  Result<ColumnIndex> first = LoadOrBuildColumnIndex(path, builder);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(builds, 1);
  Result<ColumnIndex> second = LoadOrBuildColumnIndex(path, builder);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(builds, 1) << "second call must hit the disk cache";
  EXPECT_EQ(second->NumValues(), 2u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tegra
