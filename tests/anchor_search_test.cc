// Tests for the A* anchor search (Algorithm 2), the free-distance heuristic
// (Algorithm 4, Lemma 2) and super-additivity (Lemma 1).
//
// The central property: A* must find exactly the same minimal anchor
// distance as exhaustive enumeration of all anchor segmentations
// (TEGRA-naive), for random lists, column counts and width caps — with both
// a null corpus (pure syntax) and a small real corpus.

#include <gtest/gtest.h>

#include <limits>

#include "common/random.h"
#include "core/anchor_search.h"
#include "core/free_distance.h"
#include "core/slgr.h"
#include "synth/corpus_gen.h"
#include "synth/list_gen.h"
#include "corpus/column_index.h"

namespace tegra {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ListContext RandomContext(Rng* rng, size_t lines, uint32_t max_tokens,
                          const ColumnIndex* index) {
  static const char* kAlphabet[] = {"new",    "york", "city", "toronto",
                                    "boston", "42",   "1984", "7.5",
                                    "jan",    "ave"};
  std::vector<std::vector<std::string>> token_lines;
  for (size_t i = 0; i < lines; ++i) {
    const uint32_t n = static_cast<uint32_t>(rng->UniformInt(1, max_tokens));
    std::vector<std::string> toks;
    for (uint32_t t = 0; t < n; ++t) {
      toks.push_back(kAlphabet[rng->Uniform(std::size(kAlphabet))]);
    }
    token_lines.push_back(std::move(toks));
  }
  return ListContext(std::move(token_lines), index);
}

void PrepareWidths(ListContext* ctx, int m, uint32_t cap) {
  for (size_t j = 0; j < ctx->num_lines(); ++j) {
    ctx->EnsureWidth(j, ctx->EffectiveWidth(j, m, cap));
  }
}

class AStarEqualsNaiveTest : public ::testing::TestWithParam<int> {};

TEST_P(AStarEqualsNaiveTest, OnRandomLists) {
  Rng rng(GetParam() * 7919 + 5);
  CellDistance distance(nullptr);
  for (int iter = 0; iter < 12; ++iter) {
    ListContext ctx = RandomContext(&rng, 3, 6, nullptr);
    const int m = static_cast<int>(rng.UniformInt(1, 4));
    const uint32_t cap = static_cast<uint32_t>(rng.UniformInt(2, 4));
    PrepareWidths(&ctx, m, cap);
    for (size_t anchor = 0; anchor < ctx.num_lines(); ++anchor) {
      DistanceCache c1(&distance);
      DistanceCache c2(&distance);
      const auto astar =
          MinimizeAnchorDistanceAStar(ctx, anchor, m, &c1, cap);
      const auto naive =
          MinimizeAnchorDistanceExhaustive(ctx, anchor, m, &c2, cap);
      ASSERT_NEAR(astar.anchor_distance, naive.anchor_distance, 1e-9)
          << "anchor=" << anchor << " m=" << m << " cap=" << cap;
      // The A* bounds must realize the same AD (the argmin may differ only
      // when there are ties).
      DistanceCache c3(&distance);
      ASSERT_NEAR(
          AnchorDistanceOf(ctx, anchor, astar.anchor_bounds, &c3, cap),
          naive.anchor_distance, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AStarEqualsNaiveTest, ::testing::Range(1, 7));

TEST(AStarWithCorpusTest, MatchesNaiveOnRealDistances) {
  ColumnIndex index = synth::BuildBackgroundIndex(
      synth::CorpusProfile::kWeb, /*num_tables=*/300, /*seed=*/33);
  CorpusStats stats(&index);
  CellDistance distance(&stats);
  Rng rng(99);
  for (int iter = 0; iter < 5; ++iter) {
    // Lines drawn from real generated tables for realistic distances.
    synth::TableGenOptions opts =
        synth::DefaultTableGenOptions(synth::CorpusProfile::kWeb);
    opts.min_rows = 3;
    opts.max_rows = 3;
    opts.min_cols = 3;
    opts.max_cols = 3;
    synth::TableGenerator gen(synth::CorpusProfile::kWeb, opts,
                              rng.Next());
    auto instance = synth::MakeBenchmarkInstance(gen.Generate());
    Tokenizer tok;
    std::vector<std::vector<std::string>> token_lines;
    for (const auto& line : instance.lines) {
      token_lines.push_back(tok.Tokenize(line));
    }
    ListContext ctx(std::move(token_lines), &index);
    const int m = 3;
    PrepareWidths(&ctx, m, 3);
    DistanceCache c1(&distance);
    DistanceCache c2(&distance);
    const auto astar = MinimizeAnchorDistanceAStar(ctx, 0, m, &c1, 3);
    const auto naive = MinimizeAnchorDistanceExhaustive(ctx, 0, m, &c2, 3);
    ASSERT_NEAR(astar.anchor_distance, naive.anchor_distance, 1e-9);
  }
}

TEST(AStarTest, PrunesRelativeToExhaustive) {
  Rng rng(7);
  CellDistance distance(nullptr);
  ListContext ctx = RandomContext(&rng, 4, 8, nullptr);
  const int m = 3;
  PrepareWidths(&ctx, m, 4);
  DistanceCache c1(&distance);
  DistanceCache c2(&distance);
  const auto astar = MinimizeAnchorDistanceAStar(ctx, 0, m, &c1, 4);
  const auto naive = MinimizeAnchorDistanceExhaustive(ctx, 0, m, &c2, 4);
  EXPECT_LT(astar.nodes_expanded, naive.nodes_expanded)
      << "A* should visit fewer states than full enumeration";
}

TEST(AStarTest, FixedAnchorShortCircuits) {
  CellDistance distance(nullptr);
  ListContext ctx({{"a", "b"}, {"x", "y"}}, nullptr);
  PrepareWidths(&ctx, 2, 2);
  ctx.SetFixedBounds(0, {0, 1, 2});
  DistanceCache cache(&distance);
  const auto result = MinimizeAnchorDistanceAStar(ctx, 0, 2, &cache, 2);
  EXPECT_EQ(result.anchor_bounds, (Bounds{0, 1, 2}));
  EXPECT_EQ(result.nodes_expanded, 1u);
}

TEST(AStarTest, SupervisedWeightsScaleAnchorDistance) {
  CellDistance distance(nullptr);
  ListContext unweighted({{"a", "b"}, {"x", "y"}, {"p", "q"}}, nullptr);
  ListContext weighted({{"a", "b"}, {"x", "y"}, {"p", "q"}}, nullptr);
  PrepareWidths(&unweighted, 2, 2);
  PrepareWidths(&weighted, 2, 2);
  weighted.SetFixedBounds(1, {0, 1, 2});
  DistanceCache c1(&distance);
  DistanceCache c2(&distance);
  const auto plain = MinimizeAnchorDistanceAStar(unweighted, 0, 2, &c1, 2);
  const auto sup = MinimizeAnchorDistanceAStar(weighted, 0, 2, &c2, 2);
  // The example pair weight n/k = 3 must increase the anchor distance.
  EXPECT_GT(sup.anchor_distance, plain.anchor_distance);
}

// ---- heuristic properties -----------------------------------------------------

TEST(HeuristicTest, AdmissibleAlongOptimalPath) {
  // h(p, w) must underestimate the cost-to-go: for the optimal complete
  // segmentation found by exhaustive search, check every prefix node it
  // passes through.
  Rng rng(23);
  CellDistance distance(nullptr);
  for (int iter = 0; iter < 10; ++iter) {
    ListContext ctx = RandomContext(&rng, 3, 5, nullptr);
    const int m = 3;
    const uint32_t cap = 3;
    PrepareWidths(&ctx, m, cap);
    const uint32_t anchor_width = ctx.EffectiveWidth(0, m, cap);
    std::vector<uint32_t> line_widths(ctx.num_lines());
    for (size_t j = 0; j < ctx.num_lines(); ++j) {
      line_widths[j] = ctx.EffectiveWidth(j, m, cap);
    }
    DistanceCache cache(&distance);
    AnchorHeuristic h(ctx, 0, m, anchor_width, line_widths, &cache);

    DistanceCache c2(&distance);
    const auto best = MinimizeAnchorDistanceExhaustive(ctx, 0, m, &c2, cap);
    // h at the start node must not exceed the optimal total cost.
    EXPECT_LE(h.Get(0, 0), best.anchor_distance + 1e-9);
    // h at the target is zero.
    EXPECT_DOUBLE_EQ(h.Get(m, ctx.line_length(0)), 0.0);
  }
}

TEST(HeuristicTest, FreeDistanceIsLowerBoundOnAlignment) {
  // freeD(c) <= the cost line j pays to align any column against c in any
  // full alignment, for each candidate column c of the anchor.
  Rng rng(29);
  CellDistance distance(nullptr);
  ListContext ctx = RandomContext(&rng, 2, 4, nullptr);
  const int m = 2;
  const uint32_t cap = 4;
  PrepareWidths(&ctx, m, cap);
  const uint32_t aw = ctx.EffectiveWidth(0, m, cap);
  std::vector<uint32_t> widths(ctx.num_lines());
  for (size_t j = 0; j < ctx.num_lines(); ++j) {
    widths[j] = ctx.EffectiveWidth(j, m, cap);
  }
  DistanceCache cache(&distance);
  AnchorHeuristic h(ctx, 0, m, aw, widths, &cache);

  const uint32_t len = ctx.line_length(0);
  for (uint32_t start = 0; start < len; ++start) {
    for (uint32_t w = 1; w <= std::min(aw, len - start); ++w) {
      const CellInfo& c = ctx.Cell(0, start, w);
      const double free_d = h.FreeDistanceOf(c);
      // Against line 1, any candidate cell (or null) costs at least freeD's
      // per-line minimum; verify via direct minimization.
      double best = cache(c, ctx.NullCell());
      for (uint32_t s2 = 0; s2 < ctx.line_length(1); ++s2) {
        for (uint32_t w2 = 1;
             w2 <= std::min(widths[1], ctx.line_length(1) - s2); ++w2) {
          best = std::min(best, cache(c, ctx.Cell(1, s2, w2)));
        }
      }
      EXPECT_NEAR(free_d, best, 1e-9) << c.text;
    }
  }
}

// ---- super-additivity (Lemma 1) ------------------------------------------------

TEST(SuperAdditivityTest, PrefixPlusSuffixUnderestimatesComplete) {
  // L(X) + L(Y) <= L(Z) for a complete path Z split at any node: realized
  // here via the forward and backward alignment matrices (min over seam
  // tokens on each side, independently chosen, can only be cheaper).
  Rng rng(31);
  CellDistance distance(nullptr);
  DistanceCache cache(&distance);
  ListContext ctx = RandomContext(&rng, 2, 6, nullptr);
  const int m = 3;
  PrepareWidths(&ctx, m, 0);
  const auto anchors = EnumerateBounds(ctx.line_length(0), m, 0);
  ASSERT_FALSE(anchors.empty());
  const auto anchor_cells = ctx.CellsFor(0, anchors[anchors.size() / 2]);

  const auto fwd = ForwardAlignmentMatrix(ctx, 1, anchor_cells, &cache, 0);
  const auto bwd = BackwardAlignmentMatrix(ctx, 1, anchor_cells, &cache, 0);
  const uint32_t len = ctx.line_length(1);
  const double complete = fwd[m][len];
  for (int p = 0; p <= m; ++p) {
    double prefix_min = kInf;
    double suffix_min = kInf;
    for (uint32_t w = 0; w <= len; ++w) {
      prefix_min = std::min(prefix_min, fwd[p][w]);
      suffix_min = std::min(suffix_min, bwd[p][w]);
    }
    if (prefix_min == kInf || suffix_min == kInf) continue;
    EXPECT_LE(prefix_min + suffix_min, complete + 1e-9) << "p=" << p;
  }
}

}  // namespace
}  // namespace tegra
