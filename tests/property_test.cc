// Cross-cutting property and robustness tests:
//  * the mapping-metric DP equals a brute-force search over all
//    non-overlapping monotone mapping sets on small tables,
//  * random-bytes robustness for the tokenizer, type detector and HTML
//    scanner (never crash, always terminate),
//  * end-to-end invariants of extraction on randomized inputs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "core/tegra.h"
#include "eval/mapping_metric.h"
#include "html/html_lists.h"
#include "text/tokenizer.h"
#include "text/value_type.h"

namespace tegra {
namespace {

// ---- mapping metric vs brute force -----------------------------------------

/// Brute-force |M_best|: recursively choose, left to right, how the next
/// mapping pairs one truth column with k output columns (or k truth columns
/// with one output column), or skips a column on either side.
size_t BruteBest(const Table& tg, const Table& ta, size_t i, size_t j) {
  const size_t gm = tg.NumCols();
  const size_t am = ta.NumCols();
  if (i >= gm || j >= am) return 0;
  auto match = [&](size_t g0, size_t g1, size_t a0, size_t a1) {
    size_t count = 0;
    for (size_t r = 0; r < tg.NumRows(); ++r) {
      std::string gs;
      for (size_t c = g0; c < g1; ++c) {
        if (tg.Cell(r, c).empty()) continue;
        if (!gs.empty()) gs += " ";
        gs += tg.Cell(r, c);
      }
      std::string as;
      for (size_t c = a0; c < a1; ++c) {
        if (ta.Cell(r, c).empty()) continue;
        if (!as.empty()) as += " ";
        as += ta.Cell(r, c);
      }
      count += (gs == as);
    }
    return count;
  };
  size_t best = std::max(BruteBest(tg, ta, i + 1, j),
                         BruteBest(tg, ta, i, j + 1));
  for (size_t k = 1; j + k <= am; ++k) {
    best = std::max(best, match(i, i + 1, j, j + k) +
                              BruteBest(tg, ta, i + 1, j + k));
  }
  for (size_t k = 2; i + k <= gm; ++k) {
    best = std::max(best, match(i, i + k, j, j + 1) +
                              BruteBest(tg, ta, i + k, j + 1));
  }
  return best;
}

class MappingMetricPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MappingMetricPropertyTest, DpEqualsBruteForce) {
  Rng rng(GetParam() * 31337 + 11);
  static const char* kCells[] = {"a", "b", "c", "x y", ""};
  for (int iter = 0; iter < 30; ++iter) {
    const size_t rows = 1 + rng.Uniform(3);
    const size_t gcols = 1 + rng.Uniform(3);
    const size_t acols = 1 + rng.Uniform(3);
    std::vector<std::vector<std::string>> g(rows), a(rows);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < gcols; ++c) {
        g[r].push_back(kCells[rng.Uniform(std::size(kCells))]);
      }
      for (size_t c = 0; c < acols; ++c) {
        a[r].push_back(kCells[rng.Uniform(std::size(kCells))]);
      }
    }
    Table tg(std::move(g));
    Table ta(std::move(a));
    ASSERT_EQ(eval::BestMappingValue(tg, ta), BruteBest(tg, ta, 0, 0));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MappingMetricPropertyTest,
                         ::testing::Range(1, 6));

// ---- robustness under random bytes -------------------------------------------

std::string RandomBytes(Rng* rng, size_t max_len) {
  const size_t len = rng->Uniform(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng->Uniform(256)));
  }
  return out;
}

TEST(RobustnessTest, TokenizerNeverChokes) {
  Rng rng(5150);
  Tokenizer tok;
  for (int i = 0; i < 300; ++i) {
    const std::string junk = RandomBytes(&rng, 200);
    const auto tokens = tok.Tokenize(junk);
    EXPECT_EQ(tokens.size(), tok.CountTokens(junk));
    for (const auto& t : tokens) EXPECT_FALSE(t.empty());
  }
}

TEST(RobustnessTest, TypeDetectorNeverChokes) {
  Rng rng(6160);
  for (int i = 0; i < 300; ++i) {
    const ValueType t = DetectValueType(RandomBytes(&rng, 60));
    EXPECT_GE(static_cast<int>(t), 0);
    EXPECT_LT(static_cast<int>(t), static_cast<int>(ValueType::kNumTypes));
  }
}

TEST(RobustnessTest, HtmlScannerNeverChokes) {
  Rng rng(7170);
  static const char* kFragments[] = {
      "<ul>", "</ul>", "<li>", "</li>", "<ol>", "<b>", "&amp;", "&#",
      "text ", "<script>", "</script>", "<!--", "-->", "<", ">", "\"", "'",
  };
  for (int i = 0; i < 200; ++i) {
    std::string soup;
    const int pieces = 1 + static_cast<int>(rng.Uniform(40));
    for (int p = 0; p < pieces; ++p) {
      if (rng.Chance(0.3)) {
        soup += RandomBytes(&rng, 10);
      } else {
        soup += kFragments[rng.Uniform(std::size(kFragments))];
      }
    }
    const auto lists = html::ExtractHtmlLists(soup);
    for (const auto& list : lists) {
      for (const auto& item : list.items) EXPECT_FALSE(item.empty());
    }
    (void)html::StripMarkup(soup);
  }
}

// ---- extraction invariants ------------------------------------------------

TEST(RobustnessTest, ExtractionInvariantsOnRandomLists) {
  Rng rng(8180);
  static const char* kWords[] = {"alpha", "42",   "beta",  "7.5", "gamma",
                                 "x1",    "2010", "delta", "zz",  "q"};
  TegraExtractor tegra(nullptr);  // No corpus: syntactic only, still valid.
  for (int iter = 0; iter < 25; ++iter) {
    std::vector<std::string> lines;
    const size_t n = 2 + rng.Uniform(5);
    for (size_t i = 0; i < n; ++i) {
      std::string line;
      const size_t toks = 1 + rng.Uniform(6);
      for (size_t t = 0; t < toks; ++t) {
        if (t > 0) line += " ";
        line += kWords[rng.Uniform(std::size(kWords))];
      }
      lines.push_back(std::move(line));
    }
    auto result = tegra.Extract(lines);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // Invariants: rectangular, row tokens preserved in order.
    EXPECT_EQ(result->table.NumRows(), n);
    Tokenizer tok;
    for (size_t i = 0; i < n; ++i) {
      std::string joined;
      for (size_t c = 0; c < result->table.NumCols(); ++c) {
        const std::string& cell = result->table.Cell(i, c);
        if (cell.empty()) continue;
        if (!joined.empty()) joined += " ";
        joined += cell;
      }
      EXPECT_EQ(tok.Tokenize(joined), tok.Tokenize(lines[i]))
          << "tokens must be preserved, row " << i;
    }
  }
}

}  // namespace
}  // namespace tegra
