// Second property-test pass:
//  * A* == exhaustive under supervised pair weights and pinned example rows,
//  * the unsupervised column-count selection against a brute-force oracle
//    over every (m, table segmentation) on tiny instances,
//  * HTML page -> batch extraction integration.

#include <gtest/gtest.h>

#include <limits>

#include "common/random.h"
#include "core/anchor_search.h"
#include "core/batch.h"
#include "core/objective.h"
#include "core/tegra.h"
#include "html/html_lists.h"

namespace tegra {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ListContext RandomContext(Rng* rng, size_t lines, uint32_t max_tokens) {
  static const char* kAlphabet[] = {"new", "york", "42",  "boston",
                                    "7.5", "jan",  "ave", "1999"};
  std::vector<std::vector<std::string>> token_lines;
  for (size_t i = 0; i < lines; ++i) {
    const uint32_t n = static_cast<uint32_t>(rng->UniformInt(1, max_tokens));
    std::vector<std::string> toks;
    for (uint32_t t = 0; t < n; ++t) {
      toks.push_back(kAlphabet[rng->Uniform(std::size(kAlphabet))]);
    }
    token_lines.push_back(std::move(toks));
  }
  return ListContext(std::move(token_lines), nullptr);
}

class SupervisedAStarTest : public ::testing::TestWithParam<int> {};

TEST_P(SupervisedAStarTest, MatchesExhaustiveWithExamples) {
  Rng rng(GetParam() * 60013 + 3);
  CellDistance distance(nullptr);
  for (int iter = 0; iter < 8; ++iter) {
    ListContext ctx = RandomContext(&rng, 4, 5);
    const int m = static_cast<int>(rng.UniformInt(2, 3));
    const uint32_t cap = 3;
    for (size_t j = 0; j < ctx.num_lines(); ++j) {
      ctx.EnsureWidth(j, ctx.EffectiveWidth(j, m, cap));
    }
    // Pin one random non-anchor line to a random valid segmentation.
    const size_t pinned = 1 + rng.Uniform(3);
    const auto choices =
        EnumerateBounds(ctx.line_length(pinned), m,
                        ctx.EffectiveWidth(pinned, m, cap));
    ASSERT_FALSE(choices.empty());
    ctx.SetFixedBounds(pinned, choices[rng.Uniform(choices.size())]);

    for (size_t anchor = 0; anchor < ctx.num_lines(); ++anchor) {
      DistanceCache c1(&distance);
      DistanceCache c2(&distance);
      const auto astar =
          MinimizeAnchorDistanceAStar(ctx, anchor, m, &c1, cap);
      const auto naive =
          MinimizeAnchorDistanceExhaustive(ctx, anchor, m, &c2, cap);
      ASSERT_NEAR(astar.anchor_distance, naive.anchor_distance, 1e-9)
          << "anchor=" << anchor << " pinned=" << pinned << " m=" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SupervisedAStarTest, ::testing::Range(1, 6));

// ---- unsupervised m-selection oracle -----------------------------------------

/// Brute-force best per-column objective over every m and every full table
/// segmentation (uncapped widths).
double OracleBestPerColumn(ListContext* ctx, int max_m, DistanceCache* cache) {
  double best = kInf;
  for (int m = 1; m <= max_m; ++m) {
    std::vector<std::vector<Bounds>> per_line;
    for (size_t j = 0; j < ctx->num_lines(); ++j) {
      per_line.push_back(EnumerateBounds(ctx->line_length(j), m, 0));
    }
    std::vector<size_t> idx(ctx->num_lines(), 0);
    std::vector<Bounds> current(ctx->num_lines());
    while (true) {
      for (size_t j = 0; j < ctx->num_lines(); ++j) {
        current[j] = per_line[j][idx[j]];
      }
      best = std::min(best, PerColumnObjective(
                                SumOfPairsDistance(*ctx, current, cache), m));
      size_t j = 0;
      while (j < idx.size() && ++idx[j] == per_line[j].size()) {
        idx[j] = 0;
        ++j;
      }
      if (j == idx.size()) break;
    }
  }
  return best;
}

TEST(UnsupervisedSelectionTest, WithinTwiceTheOracleObjective) {
  // TEGRA's chosen table cannot beat the oracle, and by the 2-approximation
  // argument its per-column objective is at most ~2x the optimum at the
  // chosen m; across m the same bound holds for the minimum.
  Rng rng(515);
  CellDistance distance(nullptr);
  static const char* kWords[] = {"a", "77", "bb", "1999"};
  for (int iter = 0; iter < 6; ++iter) {
    std::vector<std::vector<std::string>> lines;
    for (int j = 0; j < 3; ++j) {
      const uint32_t n = static_cast<uint32_t>(rng.UniformInt(1, 3));
      std::vector<std::string> toks;
      for (uint32_t t = 0; t < n; ++t) {
        toks.push_back(kWords[rng.Uniform(std::size(kWords))]);
      }
      lines.push_back(std::move(toks));
    }
    std::vector<std::string> raw;
    for (const auto& toks : lines) {
      std::string line;
      for (const auto& t : toks) {
        if (!line.empty()) line += " ";
        line += t;
      }
      raw.push_back(std::move(line));
    }

    TegraOptions opts;
    opts.max_columns = 3;
    opts.max_cell_tokens = 0;  // Uncapped, to match the oracle.
    opts.sweep_anchor_sample = 0;
    TegraExtractor tegra(nullptr, opts);
    auto result = tegra.Extract(raw);
    ASSERT_TRUE(result.ok());

    ListContext ctx(std::move(lines), nullptr);
    for (size_t j = 0; j < ctx.num_lines(); ++j) {
      ctx.EnsureWidth(j, ctx.line_length(j));
    }
    DistanceCache cache(&distance);
    const double oracle = OracleBestPerColumn(&ctx, 3, &cache);
    ASSERT_GE(result->per_column_objective, oracle - 1e-9);
    ASSERT_LE(result->per_column_objective, 2.0 * oracle + 1e-9)
        << "selection fell outside the approximation band";
  }
}

// ---- html -> batch integration -------------------------------------------------

TEST(HtmlBatchIntegrationTest, PageToTables) {
  const char* page = R"(
    <ul><li>Home</li><li>About</li></ul>
    <ol>
      <li>Boston Massachusetts 645,966</li>
      <li>Worcester Massachusetts 182,544</li>
      <li>Providence RhodeIsland 178,042</li>
      <li>Hartford Connecticut 124,775</li>
    </ol>)";
  const auto lists = html::ExtractHtmlLists(page);
  ASSERT_EQ(lists.size(), 2u);

  std::vector<std::vector<std::string>> inputs;
  for (const auto& list : lists) inputs.push_back(list.items);

  TegraExtractor extractor(nullptr);
  BatchOptions opts;
  opts.num_threads = 2;
  opts.min_rows = 3;  // Drops the nav list.
  BatchExtractor batch(&extractor, opts);
  const auto items = batch.ExtractAll(inputs);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].disposition, BatchItem::Disposition::kFiltered);
  ASSERT_EQ(items[1].disposition, BatchItem::Disposition::kExtracted);
  EXPECT_EQ(items[1].result.table.NumRows(), 4u);
  EXPECT_GE(items[1].result.num_columns, 2);
}

}  // namespace
}  // namespace tegra
