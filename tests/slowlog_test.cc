// Tests for tegra::serve::SlowRequestLog: admission policy, slowest-first
// ordering, capacity-bounded eviction, thread safety and JSON rendering.

#include "service/slowlog.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "service/admin_pages.h"
#include "service/serve_json.h"

namespace tegra {
namespace serve {
namespace {

SlowRequestRecord MakeRecord(uint64_t trace_id, double total_seconds) {
  SlowRequestRecord rec;
  rec.trace_id = trace_id;
  rec.total_seconds = total_seconds;
  rec.queue_seconds = total_seconds * 0.25;
  rec.extract_seconds = total_seconds * 0.75;
  rec.num_lines = 8;
  rec.num_columns = 3;
  rec.sp_score = 0.1 * static_cast<double>(trace_id);
  rec.outcome = "ok";
  return rec;
}

TEST(SlowlogTest, EmptyLogSnapshotsEmpty) {
  SlowRequestLog log(4);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(log.capacity(), 4u);
}

TEST(SlowlogTest, RetainsEverythingBelowCapacity) {
  SlowRequestLog log(4);
  EXPECT_TRUE(log.Add(MakeRecord(1, 0.010)));
  EXPECT_TRUE(log.Add(MakeRecord(2, 0.030)));
  EXPECT_TRUE(log.Add(MakeRecord(3, 0.020)));
  EXPECT_EQ(log.size(), 3u);
}

TEST(SlowlogTest, SnapshotIsSortedSlowestFirst) {
  SlowRequestLog log(8);
  log.Add(MakeRecord(1, 0.010));
  log.Add(MakeRecord(2, 0.050));
  log.Add(MakeRecord(3, 0.030));
  log.Add(MakeRecord(4, 0.040));
  const auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_GE(snap[i - 1].total_seconds, snap[i].total_seconds)
        << "records " << i - 1 << " and " << i << " out of order";
  }
  EXPECT_EQ(snap.front().trace_id, 2u);
  EXPECT_EQ(snap.back().trace_id, 1u);
}

TEST(SlowlogTest, EvictsTheFastestWhenFull) {
  SlowRequestLog log(3);
  log.Add(MakeRecord(1, 0.010));
  log.Add(MakeRecord(2, 0.020));
  log.Add(MakeRecord(3, 0.030));
  // Slower than the current minimum: admitted, evicts trace 1.
  EXPECT_TRUE(log.Add(MakeRecord(4, 0.015)));
  EXPECT_EQ(log.size(), 3u);
  const auto snap = log.Snapshot();
  for (const auto& rec : snap) EXPECT_NE(rec.trace_id, 1u);
  // Faster than every retained record: rejected, log unchanged.
  EXPECT_FALSE(log.Add(MakeRecord(5, 0.001)));
  EXPECT_EQ(log.size(), 3u);
  const auto snap2 = log.Snapshot();
  ASSERT_EQ(snap2.size(), 3u);
  EXPECT_EQ(snap2[0].trace_id, 3u);
  EXPECT_EQ(snap2[1].trace_id, 2u);
  EXPECT_EQ(snap2[2].trace_id, 4u);
}

TEST(SlowlogTest, ZeroCapacityDisablesTheLog) {
  SlowRequestLog log(0);
  EXPECT_FALSE(log.Add(MakeRecord(1, 99.0)));
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.Snapshot().empty());
}

TEST(SlowlogTest, ClearDropsRecordsButKeepsCapacity) {
  SlowRequestLog log(2);
  log.Add(MakeRecord(1, 0.010));
  log.Add(MakeRecord(2, 0.020));
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.capacity(), 2u);
  EXPECT_TRUE(log.Add(MakeRecord(3, 0.001)));  // Empty log admits anything.
}

TEST(SlowlogTest, RecordFieldsSurviveRoundTrip) {
  SlowRequestLog log(2);
  SlowRequestRecord rec = MakeRecord(7, 0.123);
  rec.cache_hit = true;
  rec.outcome = "deadline_exceeded";
  rec.sp_score = 0.42;
  log.Add(rec);
  const auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].trace_id, 7u);
  EXPECT_DOUBLE_EQ(snap[0].total_seconds, 0.123);
  EXPECT_TRUE(snap[0].cache_hit);
  EXPECT_EQ(snap[0].outcome, "deadline_exceeded");
  EXPECT_DOUBLE_EQ(snap[0].sp_score, 0.42);
}

TEST(SlowlogTest, ConcurrentAddsStayBoundedAndSorted) {
  SlowRequestLog log(16);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Add(MakeRecord(static_cast<uint64_t>(t * kPerThread + i),
                           1e-4 * static_cast<double>((i * 37 + t) % 997)));
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 16u);
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_GE(snap[i - 1].total_seconds, snap[i].total_seconds);
  }
  // The global maximum across every thread's schedule must be retained.
  int max_mod = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      max_mod = std::max(max_mod, (i * 37 + t) % 997);
    }
  }
  EXPECT_NEAR(snap.front().total_seconds, 1e-4 * max_mod, 1e-12);
}

TEST(SlowlogTest, JsonRenderingIncludesSpAndSpans) {
  SlowRequestLog log(4);
  SlowRequestRecord rec = MakeRecord(11, 0.5);
  rec.sp_score = 0.31;
  trace::TraceEvent span;
  span.name = "extract";
  span.category = "core";
  span.span_id = 1;
  span.duration_us = 500;
  rec.spans.push_back(span);
  log.Add(rec);

  const JsonValue out = SlowlogToJson(log);
  EXPECT_TRUE(out["ok"].AsBool(false));
  const auto& records = out["records"].AsArray();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0]["sp"].AsNumber(-1), 0.31);
  EXPECT_DOUBLE_EQ(records[0]["total_ms"].AsNumber(0), 500.0);
  const auto& spans = records[0]["spans"].AsArray();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0]["name"].AsString(), "extract");
  // The dump is one NDJSON-safe line.
  const std::string dump = out.Dump();
  EXPECT_EQ(dump.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace tegra
