// Tests for string utilities, hashing, RNG and the thread pool.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "common/file_util.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace tegra {
namespace {

// ---- string_util --------------------------------------------------------

TEST(SplitOnAnyTest, Basic) {
  EXPECT_EQ(SplitOnAny("a b c", " "),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitOnAnyTest, CollapsesConsecutiveDelimiters) {
  EXPECT_EQ(SplitOnAny("a,,b, ,c", ", "),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitOnAnyTest, LeadingTrailingDelimiters) {
  EXPECT_EQ(SplitOnAny("  a b  ", " "),
            (std::vector<std::string>{"a", "b"}));
}

TEST(SplitOnAnyTest, EmptyInput) {
  EXPECT_TRUE(SplitOnAny("", " ").empty());
  EXPECT_TRUE(SplitOnAny("   ", " ").empty());
}

TEST(SplitExactTest, KeepsEmptyPieces) {
  EXPECT_EQ(SplitExact("a::b", ":"),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitExact("", ":"), (std::vector<std::string>{""}));
}

TEST(JoinTest, SkipsEmptyParts) {
  EXPECT_EQ(Join({"a", "", "b"}), "a b");
  EXPECT_EQ(Join({"", "", ""}), "");
  EXPECT_EQ(JoinRange({"a", "b", "c", "d"}, 1, 3), "b c");
}

TEST(JoinRangeTest, OutOfBoundsEndIsClamped) {
  EXPECT_EQ(JoinRange({"a", "b"}, 0, 99), "a b");
}

TEST(TrimTest, Basic) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(TrimView("abc"), "abc");
}

TEST(CaseAndAffixTest, Basic) {
  EXPECT_EQ(ToLower("New YORK"), "new york");
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("x", "http://"));
  EXPECT_TRUE(EndsWith("file.idx", ".idx"));
  EXPECT_FALSE(EndsWith("x", ".idx"));
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(0.666666), "0.67");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(2.5, 3), "2.500");
}

TEST(PadRightTest, PadsAndTruncates) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadRight("abcdef", 3), "abc");
}

// ---- hash ----------------------------------------------------------------

TEST(HashTest, Fnv1aIsDeterministicAndDiscriminating) {
  EXPECT_EQ(Fnv1a64("toronto"), Fnv1a64("toronto"));
  EXPECT_NE(Fnv1a64("toronto"), Fnv1a64("torontO"));
  // Known FNV-1a property: empty string hashes to the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
}

TEST(HashTest, PairHashSpreadsNeighbors) {
  PairHash h;
  std::set<size_t> values;
  for (uint32_t i = 0; i < 100; ++i) {
    values.insert(h({i, i + 1}));
  }
  EXPECT_EQ(values.size(), 100u);  // No collisions among tiny neighbors.
}

// ---- random ---------------------------------------------------------------

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.Uniform(4)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(ZipfSamplerTest, HeadIsMorePopularThanTail) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(3);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], 0);
}

TEST(ZipfSamplerTest, SingleItem) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(3);
  EXPECT_EQ(zipf.Sample(&rng), 0u);
}

// ---- thread pool -----------------------------------------------------------

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.Submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto f = pool.Submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
}

TEST(ThreadPoolTest, ManyTasksDrainOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 200; ++i) {
      futures.push_back(pool.Submit([&count] { count.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, TrySubmitRunsBeforeShutdown) {
  ThreadPool pool(2);
  auto maybe = pool.TrySubmit([] { return 5; });
  ASSERT_TRUE(maybe.has_value());
  EXPECT_EQ(maybe->get(), 5);
}

TEST(ThreadPoolTest, TrySubmitFailsFastAfterBeginShutdown) {
  ThreadPool pool(2);
  pool.BeginShutdown();
  EXPECT_FALSE(pool.TrySubmit([] { return 1; }).has_value());
  // Idempotent: a second BeginShutdown (and the destructor's) is harmless.
  pool.BeginShutdown();
  EXPECT_FALSE(pool.TrySubmit([] { return 2; }).has_value());
}

// Regression for enqueueing into a dying pool: submitter threads hammer
// TrySubmit while the main thread begins shutdown. Every accepted task must
// run exactly once; everything after the shutdown point must be refused
// (rather than rotting in a queue no worker will drain).
TEST(ThreadPoolTest, TrySubmitVersusShutdownRaceLosesNoAcceptedTask) {
  for (int round = 0; round < 10; ++round) {
    ThreadPool pool(3);
    std::atomic<int> executed{0};
    std::atomic<int> accepted{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          auto maybe = pool.TrySubmit([&executed] { executed.fetch_add(1); });
          if (maybe.has_value()) {
            accepted.fetch_add(1);
          } else {
            return;  // Shutdown observed; further submits would also fail.
          }
        }
      });
    }
    // Let the submitters race for a moment, then tear the pool down under
    // them. BeginShutdown makes every later TrySubmit fail fast.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    pool.BeginShutdown();
    stop.store(true);
    for (auto& s : submitters) s.join();
    // After BeginShutdown every TrySubmit must be refused.
    EXPECT_FALSE(pool.TrySubmit([] {}).has_value());
    // Destruction drains the queue: all accepted tasks ran, none were lost.
    // (The pool is destroyed at scope end; check afterwards via a fresh
    // scope.)
    const int accepted_count = accepted.load();
    while (executed.load() < accepted_count) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    EXPECT_EQ(executed.load(), accepted_count);
  }
}


// ---- file_util: AtomicWriteFile durability contract ---------------------

std::string FileUtilTempDir() {
  const std::string dir = ::testing::TempDir() + "common_test_fileutil_" +
                          std::to_string(::getpid());
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  return dir;
}

/// Installs a fault-injection/observation hook for the scope of one test;
/// always restored on destruction so failures cannot leak into later tests.
class ScopedFileOpHook {
 public:
  explicit ScopedFileOpHook(std::function<int(const FileOpEvent&)> hook) {
    SetFileOpHookForTest(std::move(hook));
  }
  ~ScopedFileOpHook() { SetFileOpHookForTest(nullptr); }
};

TEST(AtomicWriteFileTest, SyscallOrderIsFsyncFileRenameFsyncDir) {
  const std::string dir = FileUtilTempDir();
  const std::string path = dir + "/order.bin";
  std::vector<FileOpEvent> events;
  ScopedFileOpHook hook([&](const FileOpEvent& e) {
    events.push_back(e);
    return 0;
  });
  ASSERT_TRUE(AtomicWriteFile(path, "payload").ok());
  // The durability contract, in order: temp-file fsync (data safe), rename
  // (publication), parent-dir fsync (the *name* is safe).
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FileOpEvent::kFsyncFile);
  EXPECT_EQ(events[0].path, path + ".tmp");
  EXPECT_EQ(events[1].kind, FileOpEvent::kRename);
  EXPECT_EQ(events[1].path, path);
  EXPECT_EQ(events[2].kind, FileOpEvent::kFsyncDir);
  EXPECT_EQ(events[2].path, dir);
  auto readback = ReadFileToString(path);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback.value(), "payload");
}

TEST(AtomicWriteFileTest, TempFsyncFailureLeavesPublishedPathUntouched) {
  const std::string dir = FileUtilTempDir();
  const std::string path = dir + "/fsync_fail.bin";
  ASSERT_TRUE(AtomicWriteFile(path, "old content").ok());
  ScopedFileOpHook hook([&](const FileOpEvent& e) {
    return e.kind == FileOpEvent::kFsyncFile ? EIO : 0;
  });
  const Status failed = AtomicWriteFile(path, "new content");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIOError);
  // Old content intact, temp file cleaned up.
  auto readback = ReadFileToString(path);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback.value(), "old content");
  EXPECT_FALSE(ReadFileToString(path + ".tmp").ok());
}

TEST(AtomicWriteFileTest, RenameFailureLeavesPublishedPathUntouched) {
  const std::string dir = FileUtilTempDir();
  const std::string path = dir + "/rename_fail.bin";
  ASSERT_TRUE(AtomicWriteFile(path, "old content").ok());
  ScopedFileOpHook hook([&](const FileOpEvent& e) {
    return e.kind == FileOpEvent::kRename ? EIO : 0;
  });
  ASSERT_FALSE(AtomicWriteFile(path, "new content").ok());
  auto readback = ReadFileToString(path);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback.value(), "old content");
  EXPECT_FALSE(ReadFileToString(path + ".tmp").ok());
}

TEST(AtomicWriteFileTest, DirFsyncFailureIsReportedButContentIsPublished) {
  const std::string dir = FileUtilTempDir();
  const std::string path = dir + "/dirsync_fail.bin";
  ScopedFileOpHook hook([&](const FileOpEvent& e) {
    return e.kind == FileOpEvent::kFsyncDir ? EIO : 0;
  });
  const Status failed = AtomicWriteFile(path, "content");
  // The rename already happened: content is visible, but the caller must
  // hear that its durability window is open.
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.ToString().find(dir), std::string::npos);
  auto readback = ReadFileToString(path);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback.value(), "content");
}

TEST(AtomicWriteFileTest, DirFsyncEinvalAndEnotsupAreTolerated) {
  const std::string dir = FileUtilTempDir();
  for (const int benign : {EINVAL, ENOTSUP}) {
    const std::string path =
        dir + "/benign_" + std::to_string(benign) + ".bin";
    ScopedFileOpHook hook([&](const FileOpEvent& e) {
      return e.kind == FileOpEvent::kFsyncDir ? benign : 0;
    });
    EXPECT_TRUE(AtomicWriteFile(path, "content").ok());
  }
}

TEST(EnsureDirectoryTest, CreatesNestedAndIsIdempotent) {
  const std::string root = FileUtilTempDir();
  const std::string nested = root + "/a/b/c";
  ASSERT_TRUE(EnsureDirectory(nested).ok());
  EXPECT_TRUE(IsDirectory(nested));
  EXPECT_TRUE(EnsureDirectory(nested).ok());
  // A file in the way is an error, not a silent success.
  const std::string file_path = root + "/a/b/c/file";
  ASSERT_TRUE(AtomicWriteFile(file_path, "x").ok());
  EXPECT_FALSE(EnsureDirectory(file_path).ok());
}

TEST(RemoveFileTest, RemovesAndToleratesMissing) {
  const std::string dir = FileUtilTempDir();
  const std::string path = dir + "/victim";
  ASSERT_TRUE(AtomicWriteFile(path, "x").ok());
  EXPECT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(ReadFileToString(path).ok());
  EXPECT_TRUE(RemoveFile(path).ok());  // ENOENT is not an error.
}

}  // namespace
}  // namespace tegra
