// Stress and concurrency tests: bigger lists, wide tables, concurrent
// corpus-statistics access, and allocation-heavy paths.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/thread_pool.h"
#include "core/tegra.h"
#include "corpus/corpus_stats.h"
#include "synth/corpus_gen.h"
#include "synth/list_gen.h"
#include "corpus/column_index.h"

namespace tegra {
namespace {

TEST(StressTest, HundredRowList) {
  ColumnIndex index = synth::BuildBackgroundIndex(
      synth::CorpusProfile::kWeb, /*num_tables=*/600, /*seed=*/11);
  CorpusStats stats(&index);
  synth::TableGenOptions shape =
      synth::DefaultTableGenOptions(synth::CorpusProfile::kWeb);
  shape.min_rows = 100;
  shape.max_rows = 100;
  shape.min_cols = 4;
  shape.max_cols = 4;
  synth::TableGenerator gen(synth::CorpusProfile::kWeb, shape, 8);
  const auto instance = synth::MakeBenchmarkInstance(gen.Generate());

  TegraOptions opts;
  opts.final_anchor_sample = 8;  // Keep the stress test brisk.
  TegraExtractor tegra(&stats, opts);
  auto result = tegra.ExtractWithColumns(instance.lines, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumRows(), 100u);
}

TEST(StressTest, WideTable) {
  ColumnIndex index = synth::BuildBackgroundIndex(
      synth::CorpusProfile::kWeb, /*num_tables=*/600, /*seed=*/12);
  CorpusStats stats(&index);
  synth::TableGenOptions shape =
      synth::DefaultTableGenOptions(synth::CorpusProfile::kWeb);
  shape.min_rows = 8;
  shape.max_rows = 8;
  shape.min_cols = 12;
  shape.max_cols = 12;
  synth::TableGenerator gen(synth::CorpusProfile::kWeb, shape, 9);
  const auto instance = synth::MakeBenchmarkInstance(gen.Generate());

  TegraExtractor tegra(&stats);
  auto result = tegra.ExtractWithColumns(instance.lines, 12);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumCols(), 12u);
}

TEST(StressTest, ConcurrentCorpusStatsAccess) {
  ColumnIndex index = synth::BuildBackgroundIndex(
      synth::CorpusProfile::kWeb, /*num_tables=*/400, /*seed=*/13);
  CorpusStats stats(&index);
  // Hammer the shared co-occurrence cache from many threads; results must
  // be identical to a single-threaded pass.
  std::vector<ValueId> ids;
  for (ValueId id = 0; id < index.NumValues() && ids.size() < 60; id += 97) {
    ids.push_back(id);
  }
  std::vector<double> expected;
  for (size_t i = 0; i < ids.size(); ++i) {
    expected.push_back(stats.Npmi(ids[i], ids[(i * 7 + 3) % ids.size()]));
  }
  std::atomic<int> mismatches{0};
  ThreadPool pool(8);
  pool.ParallelFor(200, [&](size_t iter) {
    const size_t i = iter % ids.size();
    const double v = stats.Npmi(ids[i], ids[(i * 7 + 3) % ids.size()]);
    if (v != expected[i]) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(StressTest, ManySmallExtractionsNoLeakOrCrash) {
  TegraExtractor tegra(nullptr);
  for (int i = 0; i < 200; ++i) {
    auto result = tegra.ExtractWithColumns(
        {"a " + std::to_string(i) + " b", "c 7 d"}, 3);
    ASSERT_TRUE(result.ok());
  }
}

TEST(StressTest, LongTokensAndOddCharacters) {
  TegraExtractor tegra(nullptr);
  std::string long_token(300, 'x');
  auto result = tegra.ExtractWithColumns(
      {long_token + " 42", "\xff\xfe weird 17"}, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumRows(), 2u);
}

}  // namespace
}  // namespace tegra
