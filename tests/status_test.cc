#include "common/status.h"

#include <gtest/gtest.h>

namespace tegra {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad column count");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad column count");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad column count");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::IOError("disk full");
  Status t = s;
  EXPECT_TRUE(t.IsIOError());
  EXPECT_EQ(t.message(), "disk full");
  // Copy assignment over an existing error.
  Status u = Status::NotFound("x");
  u = s;
  EXPECT_TRUE(u.IsIOError());
  // Self-assignment safe.
  u = *&u;
  EXPECT_TRUE(u.IsIOError());
}

TEST(StatusTest, MovePreservesState) {
  Status s = Status::Corruption("bad magic");
  Status t = std::move(s);
  EXPECT_TRUE(t.IsCorruption());
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, ServicePredicates) {
  EXPECT_TRUE(Status::Unavailable("overloaded").IsUnavailable());
  EXPECT_FALSE(Status::Unavailable("overloaded").IsDeadlineExceeded());
  EXPECT_TRUE(Status::DeadlineExceeded("too slow").IsDeadlineExceeded());
  EXPECT_FALSE(Status::OK().IsUnavailable());
  EXPECT_EQ(Status::Unavailable("queue full").ToString(),
            "Unavailable: queue full");
}

TEST(StatusCodeTest, Names) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.ValueOr("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

TEST(ReturnNotOkMacroTest, PropagatesError) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    TEGRA_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);

  auto succeeds = [] { return Status::OK(); };
  auto wrapper2 = [&]() -> Status {
    TEGRA_RETURN_NOT_OK(succeeds());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_EQ(wrapper2().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace tegra
