// Tests for header-row detection and the Angular semantic measure.

#include <gtest/gtest.h>

#include "core/header.h"
#include "corpus/corpus_stats.h"
#include "corpus/column_index.h"

namespace tegra {
namespace {

const std::vector<std::string> kWithHeader = {
    "Rank City State Population",
    "1 Boston Massachusetts 645,966",
    "2 Worcester Massachusetts 182,544",
    "3 Providence RhodeIsland 178,042",
    "4 Hartford Connecticut 124,775",
};

TEST(HeaderDetectionTest, DetectsTypicalHeader) {
  EXPECT_TRUE(HasHeaderRow(kWithHeader));
  EXPECT_GT(HeaderScore(kWithHeader), 0.5);
}

TEST(HeaderDetectionTest, NoFalsePositiveOnUniformBody) {
  const std::vector<std::string> no_header(kWithHeader.begin() + 1,
                                           kWithHeader.end());
  EXPECT_FALSE(HasHeaderRow(no_header));
}

TEST(HeaderDetectionTest, AllTextListIsNotHeadered) {
  // A list of phrases with no typed body gives no type signal.
  const std::vector<std::string> text_only = {
      "Silent River", "Hidden Valley", "Broken Crown", "Golden Dawn",
      "Crimson Tide"};
  EXPECT_LT(HeaderScore(text_only), 0.5);
}

TEST(HeaderDetectionTest, TooShortToJudge) {
  EXPECT_DOUBLE_EQ(HeaderScore({"Rank City", "1 Boston"}), 0.0);
  EXPECT_DOUBLE_EQ(HeaderScore({}), 0.0);
  EXPECT_FALSE(HasHeaderRow({"only one line"}));
}

TEST(HeaderDetectionTest, StripHeaderRemovesAndReports) {
  std::string header;
  const auto body = StripHeaderRow(kWithHeader, &header);
  EXPECT_EQ(body.size(), kWithHeader.size() - 1);
  EXPECT_EQ(header, kWithHeader[0]);
  EXPECT_EQ(body[0], kWithHeader[1]);
}

TEST(HeaderDetectionTest, StripHeaderNoopWithoutHeader) {
  const std::vector<std::string> no_header(kWithHeader.begin() + 1,
                                           kWithHeader.end());
  std::string header = "sentinel";
  const auto body = StripHeaderRow(no_header, &header);
  EXPECT_EQ(body, no_header);
  EXPECT_TRUE(header.empty());
}

TEST(HeaderDetectionTest, HeaderTokensRepeatedInBodyLowerScore) {
  // Row 0 is made of the same values as the body, so it cannot be a header:
  // the novelty signal must vanish.
  const std::vector<std::string> lines = {
      "Open Closed Open",
      "Open Closed Open",
      "Closed Open Closed",
      "Open Open Closed",
  };
  EXPECT_LT(HeaderScore(lines), 0.5);
  EXPECT_FALSE(HasHeaderRow(lines));
}

// ---- angular measure -------------------------------------------------------

TEST(AngularMeasureTest, BoundsAndIdentity) {
  ColumnIndex index;
  for (int i = 0; i < 100; ++i) {
    std::vector<std::string> col = {"always"};
    if (i % 2 == 0) col.push_back("evens");
    if (i % 2 == 1) col.push_back("odds");
    index.AddColumn(col);
  }
  index.Finalize();
  CorpusStats stats(&index);
  const ValueId always = index.Lookup("always");
  const ValueId evens = index.Lookup("evens");
  const ValueId odds = index.Lookup("odds");

  // Identity.
  EXPECT_DOUBLE_EQ(
      stats.SemanticDistance(always, always, SemanticMeasure::kAngular), 0.0);
  // Disjoint sets: orthogonal -> distance 1.
  EXPECT_DOUBLE_EQ(
      stats.SemanticDistance(evens, odds, SemanticMeasure::kAngular), 1.0);
  // Subset: cos = |A∩B| / sqrt(|A||B|) = 50 / sqrt(50*100) ~ 0.707 ->
  // angle 45° -> distance 0.5.
  EXPECT_NEAR(
      stats.SemanticDistance(always, evens, SemanticMeasure::kAngular), 0.5,
      1e-9);
}

TEST(AngularMeasureTest, TriangleOnSampledTriples) {
  ColumnIndex index;
  for (int i = 0; i < 60; ++i) {
    std::vector<std::string> col;
    if (i % 2 == 0) col.push_back("a");
    if (i % 3 == 0) col.push_back("b");
    if (i % 5 == 0) col.push_back("c");
    col.push_back("pad" + std::to_string(i));
    index.AddColumn(col);
  }
  index.Finalize();
  CorpusStats stats(&index);
  const ValueId ids[] = {index.Lookup("a"), index.Lookup("b"),
                         index.Lookup("c")};
  for (ValueId x : ids) {
    for (ValueId y : ids) {
      for (ValueId z : ids) {
        const double xz =
            stats.SemanticDistance(x, z, SemanticMeasure::kAngular);
        const double xy =
            stats.SemanticDistance(x, y, SemanticMeasure::kAngular);
        const double yz =
            stats.SemanticDistance(y, z, SemanticMeasure::kAngular);
        EXPECT_LE(xz, xy + yz + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace tegra
