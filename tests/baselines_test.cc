// Tests for the ListExtract and Judie baselines: phase behaviour, the
// over-segmentation trap the paper describes, supervised adaptations, and
// error handling.

#include <gtest/gtest.h>

#include "baselines/field_quality.h"
#include "baselines/judie.h"
#include "baselines/listextract.h"
#include "synth/corpus_gen.h"
#include "synth/knowledge_base.h"
#include "corpus/column_index.h"

namespace tegra {
namespace {

/// A corpus where "New York" is a much more popular cell than
/// "New York City" — the trap of §1.
ColumnIndex BuildTrapCorpus() {
  ColumnIndex index;
  for (int i = 0; i < 400; ++i) {
    index.AddColumn({"New York", "Boston", "Chicago"});
    if (i % 8 == 0) {
      index.AddColumn({"New York City", "Los Angeles", "Houston"});
    }
    index.AddColumn({"pad" + std::to_string(i)});
  }
  index.Finalize();
  return index;
}

// ---- FieldQuality -------------------------------------------------------

TEST(FieldQualityTest, TypedFieldsScoreHigh) {
  FieldQuality fq(nullptr);
  CellCatalog catalog(nullptr);
  EXPECT_DOUBLE_EQ(fq.Score(catalog.Register("645,966", 1)), 1.0);
  EXPECT_DOUBLE_EQ(fq.Score(catalog.Register("2010-05-31", 1)), 1.0);
  EXPECT_DOUBLE_EQ(fq.Score(catalog.NullCell()), 0.0);
}

TEST(FieldQualityTest, LmPriorFavorsShortStrings) {
  FieldQuality fq(nullptr);
  CellCatalog catalog(nullptr);
  const double one = fq.Score(catalog.Register("unknownword", 1));
  const double two = fq.Score(catalog.Register("unknown words", 2));
  EXPECT_GT(one, two);
  EXPECT_GT(two, 0.0);
}

TEST(FieldQualityTest, CorpusSupportScales) {
  ColumnIndex index = BuildTrapCorpus();
  CorpusStats stats(&index);
  FieldQuality fq(&stats);
  CellCatalog catalog(&index);
  const double popular = fq.Score(catalog.Register("New York", 2));
  const double rarer = fq.Score(catalog.Register("New York City", 3));
  const double unknown = fq.Score(catalog.Register("Zxqw Vbnm", 2));
  EXPECT_GT(popular, rarer);
  EXPECT_GT(rarer, unknown);
}

// ---- ListExtract ----------------------------------------------------------

TEST(ListExtractTest, SegmentsCleanNumericTable) {
  ColumnIndex index = BuildTrapCorpus();
  CorpusStats stats(&index);
  ListExtract algo(&stats);
  auto result = algo.Extract({"Boston 42 7.5", "Chicago 17 9.1",
                              "New York 23 8.8"});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_columns, 3);
  EXPECT_EQ(result->table.Cell(0, 0), "Boston");
  EXPECT_EQ(result->table.Cell(2, 2), "8.8");
}

TEST(ListExtractTest, OverSegmentsPopularPrefixes) {
  // The §1 trap: "New York" is carved out of "New York City" by the
  // popularity-driven FQ in phase 1, inflating the column count.
  ColumnIndex index = BuildTrapCorpus();
  CorpusStats stats(&index);
  ListExtract algo(&stats);
  auto result = algo.Extract({
      "New York City 645,966",
      "New York City 182,544",
      "New York City 178,042",
  });
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->num_columns, 2)
      << "local splitting should over-segment here";
}

TEST(ListExtractTest, EmptyInputRejected) {
  ListExtract algo(nullptr);
  EXPECT_FALSE(algo.Extract({}).ok());
}

TEST(ListExtractTest, SupervisedExamplesFixColumnCount) {
  ColumnIndex index = BuildTrapCorpus();
  CorpusStats stats(&index);
  ListExtract algo(&stats);
  std::vector<SegmentationExample> examples = {
      {0, {"New York City", "645,966"}},
  };
  auto result = algo.ExtractWithExamples(
      {"New York City 645,966", "New York City 182,544"}, examples);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_columns, 2);
  EXPECT_EQ(result->table.Cell(0, 0), "New York City");
}

TEST(ListExtractTest, BadExampleRejected) {
  ListExtract algo(nullptr);
  std::vector<SegmentationExample> examples = {{0, {"wrong", "tokens"}}};
  EXPECT_FALSE(algo.ExtractWithExamples({"a b"}, examples).ok());
  examples = {{5, {"a", "b"}}};
  EXPECT_FALSE(algo.ExtractWithExamples({"a b"}, examples).ok());
}

TEST(ListExtractTest, FixedColumnsOptionHonored) {
  ListExtractOptions opts;
  opts.fixed_columns = 2;
  ListExtract algo(nullptr, opts);
  auto result = algo.Extract({"a b c", "d e f"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_columns, 2);
}

TEST(ListExtractTest, HandlesRaggedLines) {
  ListExtract algo(nullptr);
  auto result = algo.Extract({"a 42", "b 17 extra junk", "c 9"});
  ASSERT_TRUE(result.ok());
  // All rows coerced to one width.
  for (size_t r = 0; r < result->table.NumRows(); ++r) {
    EXPECT_EQ(result->table.Row(r).size(),
              static_cast<size_t>(result->num_columns));
  }
}

// ---- Judie -------------------------------------------------------------------

synth::KnowledgeBase CityKb() {
  synth::KnowledgeBase kb;
  kb.AddEntity("New York City", "city");
  kb.AddEntity("Los Angeles", "city");
  kb.AddEntity("Boston", "city");
  kb.AddEntity("United States", "country");
  kb.AddEntity("Canada", "country");
  return kb;
}

TEST(JudieTest, KbEntitiesBecomeFields) {
  synth::KnowledgeBase kb = CityKb();
  Judie algo(&kb);
  auto result = algo.Extract({
      "New York City United States",
      "Los Angeles United States",
      "Boston United States",
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_columns, 2);
  EXPECT_EQ(result->table.Cell(0, 0), "New York City");
  EXPECT_EQ(result->table.Cell(0, 1), "United States");
}

TEST(JudieTest, DegradesWithoutCoverage) {
  synth::KnowledgeBase empty_kb;
  Judie algo(&empty_kb);
  auto result = algo.Extract({
      "New York City United States",
      "Los Angeles Canada",
  });
  ASSERT_TRUE(result.ok());
  // Without KB coverage the entity boundary is invisible; the multi-token
  // city cannot be reliably recovered.
  EXPECT_NE(result->table.Cell(0, 0), "New York City");
}

TEST(JudieTest, SupervisedAddsExampleCellsToKb) {
  synth::KnowledgeBase empty_kb;
  Judie algo(&empty_kb);
  std::vector<SegmentationExample> examples = {
      {0, {"New York City", "United States"}},
  };
  auto result = algo.ExtractWithExamples(
      {"New York City United States", "New York City United States"},
      examples);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.Cell(1, 0), "New York City");
}

TEST(JudieTest, EmptyInputRejected) {
  synth::KnowledgeBase kb;
  Judie algo(&kb);
  EXPECT_FALSE(algo.Extract({}).ok());
}

TEST(JudieTest, FixedColumnsHonored) {
  synth::KnowledgeBase kb = CityKb();
  JudieOptions opts;
  opts.fixed_columns = 3;
  Judie algo(&kb, opts);
  auto result = algo.Extract({"Boston 42 x", "Boston 17 y"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_columns, 3);
}

}  // namespace
}  // namespace tegra
