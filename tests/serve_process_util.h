// Shared harness for end-to-end tests that drive the real tegra_serve
// binary: fork/exec with stdin/stdout pipes, a reader thread so the child
// can never block on a full stdout pipe, and a canned extraction-request
// builder. Used by serve_admin_e2e_test and serve_reload_e2e_test.
//
// The including target must define TEGRA_SERVE_BINARY (the compile-time
// path of the daemon binary).

#ifndef TEGRA_TESTS_SERVE_PROCESS_UTIL_H_
#define TEGRA_TESTS_SERVE_PROCESS_UTIL_H_

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/serve_json.h"

#ifndef TEGRA_SERVE_BINARY
#error "TEGRA_SERVE_BINARY must be defined to the tegra_serve binary path"
#endif

namespace tegra {
namespace serve {

/// A running tegra_serve child: NDJSON in via `WriteLine`, NDJSON out via
/// `NextLine` (fed by a reader thread so the child can never block on a full
/// stdout pipe).
class ServeProcess {
 public:
  bool Start(const std::vector<std::string>& extra_args) {
    int in_pipe[2];   // parent writes -> child stdin
    int out_pipe[2];  // child stdout -> parent reads
    if (::pipe(in_pipe) != 0 || ::pipe(out_pipe) != 0) return false;
    pid_ = ::fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      // Child: wire the pipes and exec the daemon.
      ::dup2(in_pipe[0], STDIN_FILENO);
      ::dup2(out_pipe[1], STDOUT_FILENO);
      ::close(in_pipe[0]);
      ::close(in_pipe[1]);
      ::close(out_pipe[0]);
      ::close(out_pipe[1]);
      std::vector<std::string> args = {TEGRA_SERVE_BINARY};
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(TEGRA_SERVE_BINARY, argv.data());
      ::_exit(127);  // exec failed
    }
    ::close(in_pipe[0]);
    ::close(out_pipe[1]);
    stdin_fd_ = in_pipe[1];
    stdout_fd_ = out_pipe[0];
    reader_ = std::thread([this] { ReaderLoop(); });
    return true;
  }

  ~ServeProcess() {
    CloseStdin();
    if (reader_.joinable()) reader_.join();
    if (pid_ > 0) {
      int status = 0;
      if (::waitpid(pid_, &status, WNOHANG) == 0) {
        ::kill(pid_, SIGKILL);
        ::waitpid(pid_, &status, 0);
      }
    }
  }

  bool WriteLine(const std::string& line) {
    const std::string data = line + "\n";
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::write(stdin_fd_, data.data() + off, data.size() - off);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Next stdout line, or empty string after `timeout_ms` / EOF.
  std::string NextLine(int timeout_ms = 30000) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                 [this] { return !lines_.empty() || eof_; });
    if (lines_.empty()) return "";
    std::string line = std::move(lines_.front());
    lines_.pop_front();
    return line;
  }

  void CloseStdin() {
    if (stdin_fd_ >= 0) {
      ::close(stdin_fd_);
      stdin_fd_ = -1;
    }
  }

  /// Waits for the child to exit and returns its exit code (-1 on abnormal
  /// termination).
  int Wait() {
    if (pid_ <= 0) return -1;
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  /// The child's pid (for out-of-band signals, e.g. SIGHUP reload tests).
  pid_t pid() const { return pid_; }

 private:
  void ReaderLoop() {
    std::string buf;
    char chunk[4096];
    ssize_t n;
    while ((n = ::read(stdout_fd_, chunk, sizeof(chunk))) > 0) {
      buf.append(chunk, static_cast<size_t>(n));
      size_t pos;
      while ((pos = buf.find('\n')) != std::string::npos) {
        std::lock_guard<std::mutex> lock(mu_);
        lines_.push_back(buf.substr(0, pos));
        buf.erase(0, pos + 1);
        cv_.notify_all();
      }
    }
    ::close(stdout_fd_);
    std::lock_guard<std::mutex> lock(mu_);
    eof_ = true;
    cv_.notify_all();
  }

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  std::thread reader_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::string> lines_;
  bool eof_ = false;
};

/// Canned NDJSON extraction request (`num_lines` rows starting at `rotate`
/// in a fixed city table; bypass_cache so every request does real work).
inline std::string ExtractionRequestLine(int id, size_t num_lines,
                                         size_t rotate) {
  static const std::vector<std::string> base = {
      "Boston Massachusetts 645,966",    "Worcester Massachusetts 182,544",
      "Providence Rhode Island 178,042", "Hartford Connecticut 124,775",
      "Springfield Massachusetts 153,060", "Bridgeport Connecticut 144,229",
      "New Haven Connecticut 129,779",   "Stamford Connecticut 122,643",
  };
  JsonValue request = JsonValue::Object();
  request.Set("id", JsonValue::Number(id));
  JsonValue lines = JsonValue::Array();
  for (size_t i = 0; i < num_lines; ++i) {
    lines.Append(JsonValue::Str(base[(rotate + i) % base.size()]));
  }
  request.Set("lines", std::move(lines));
  request.Set("bypass_cache", JsonValue::Bool(true));
  return request.Dump();
}

}  // namespace serve
}  // namespace tegra

#endif  // TEGRA_TESTS_SERVE_PROCESS_UTIL_H_
