// Tests for the synthetic-data substrate: vocabularies, domains, table
// generation, benchmark construction, the raw-crawl simulator and the
// knowledge base.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/string_util.h"
#include "synth/corpus_gen.h"
#include "synth/knowledge_base.h"
#include "synth/list_gen.h"
#include "synth/vocab.h"
#include "text/tokenizer.h"
#include "text/value_type.h"
#include "corpus/column_index.h"

namespace tegra::synth {
namespace {

// ---- vocabularies ------------------------------------------------------------

TEST(VocabTest, SizesAndUniqueness) {
  struct Entry {
    const char* name;
    const std::vector<std::string>& values;
    size_t min_size;
  };
  const Entry entries[] = {
      {"WorldCities", WorldCities(), 150},
      {"UsCities", UsCities(), 90},
      {"Countries", Countries(), 140},
      {"UsStates", UsStates(), 50},
      {"FirstNames", FirstNames(), 90},
      {"LastNames", LastNames(), 90},
      {"Companies", Companies(), 60},
      {"Universities", Universities(), 45},
      {"SportsTeams", SportsTeams(), 50},
      {"Movies", Movies(), 60},
      {"Months", Months(), 12},
      {"Weekdays", Weekdays(), 7},
      {"Elements", Elements(), 50},
  };
  for (const Entry& e : entries) {
    EXPECT_GE(e.values.size(), e.min_size) << e.name;
    std::set<std::string> unique(e.values.begin(), e.values.end());
    EXPECT_EQ(unique.size(), e.values.size())
        << e.name << " contains duplicates";
  }
}

TEST(VocabTest, MultiTokenEntitiesPresent) {
  // Multi-token names are the segmentation difficulty the corpus must carry.
  int multi = 0;
  for (const auto& city : WorldCities()) {
    if (city.find(' ') != std::string::npos) ++multi;
  }
  EXPECT_GE(multi, 15);
}

TEST(VocabTest, EnterpriseVocabulariesAreDeterministic) {
  const auto& a = EnterpriseCustomers();
  const auto& b = EnterpriseCustomers();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 100u);
  // The proprietary vocabulary must be disjoint from public web content.
  std::set<std::string> web(WorldCities().begin(), WorldCities().end());
  for (const auto& name : a) EXPECT_EQ(web.count(name), 0u) << name;
}

TEST(VocabTest, CountryAbbreviationsPresent) {
  const auto& countries = Countries();
  EXPECT_NE(std::find(countries.begin(), countries.end(), "USA"),
            countries.end());
  EXPECT_NE(std::find(countries.begin(), countries.end(), "UK"),
            countries.end());
}

// ---- domains --------------------------------------------------------------

TEST(DomainTest, CategoricalSamplesComeFromVocabulary) {
  const Domain& domain = GetDomain(DomainKind::kCountry);
  Rng rng(1);
  std::set<std::string> vocab(Countries().begin(), Countries().end());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(vocab.count(domain.Sample(&rng)), 1u);
  }
}

TEST(DomainTest, ZipfHeadDominates) {
  const Domain& domain = GetDomain(DomainKind::kWorldCity);
  Rng rng(2);
  size_t head_hits = 0;
  std::set<std::string> head(WorldCities().begin(),
                             WorldCities().begin() + 20);
  for (int i = 0; i < 1000; ++i) {
    head_hits += head.count(domain.Sample(&rng));
  }
  // 20 of ~170 values should absorb well over a third of samples under Zipf.
  EXPECT_GT(head_hits, 350u);
}

TEST(DomainTest, GeneratedValuesMatchTheirTypes) {
  Rng rng(3);
  struct Case {
    DomainKind kind;
    ValueType expected;
  };
  const Case cases[] = {
      {DomainKind::kSmallInt, ValueType::kInteger},
      {DomainKind::kLargeInt, ValueType::kInteger},
      {DomainKind::kDecimal, ValueType::kDecimal},
      {DomainKind::kPercent, ValueType::kPercent},
      {DomainKind::kMoney, ValueType::kCurrency},
      {DomainKind::kYear, ValueType::kYear},
      {DomainKind::kDateYmd, ValueType::kDate},
      {DomainKind::kDateMonDay, ValueType::kDate},
      {DomainKind::kTime, ValueType::kTime},
      {DomainKind::kEmail, ValueType::kEmail},
      {DomainKind::kPhone, ValueType::kPhone},
      {DomainKind::kIdCode, ValueType::kIdCode},
  };
  for (const Case& c : cases) {
    for (int i = 0; i < 50; ++i) {
      const std::string v = GetDomain(c.kind).Sample(&rng);
      EXPECT_EQ(DetectValueType(v), c.expected)
          << DomainKindName(c.kind) << " produced '" << v << "'";
    }
  }
}

TEST(DomainTest, RankColumnIsSequential) {
  Rng rng(4);
  const auto column = GetDomain(DomainKind::kRank).GenerateColumn(&rng, 5);
  EXPECT_EQ(column, (std::vector<std::string>{"1", "2", "3", "4", "5"}));
}

TEST(DomainTest, PersonNamesAreTwoOrThreeTokens) {
  Rng rng(5);
  Tokenizer tok;
  bool saw_three = false;
  for (int i = 0; i < 200; ++i) {
    const std::string name = GetDomain(DomainKind::kPersonName).Sample(&rng);
    const size_t tokens = tok.CountTokens(name);
    EXPECT_GE(tokens, 2u) << name;
    EXPECT_LE(tokens, 3u) << name;
    saw_three = saw_three || tokens == 3;
  }
  EXPECT_TRUE(saw_three) << "middle names should occur";
}

TEST(DomainTest, StreetAddressShape) {
  Rng rng(6);
  Tokenizer tok;
  for (int i = 0; i < 50; ++i) {
    const std::string addr =
        GetDomain(DomainKind::kStreetAddress).Sample(&rng);
    EXPECT_EQ(tok.CountTokens(addr), 3u) << addr;
    EXPECT_TRUE(IsNumericType(DetectValueType(tok.Tokenize(addr)[0])));
  }
}

TEST(DomainTest, NumericClassification) {
  EXPECT_TRUE(IsNumericDomain(DomainKind::kMoney));
  EXPECT_TRUE(IsNumericDomain(DomainKind::kRank));
  EXPECT_FALSE(IsNumericDomain(DomainKind::kPhrase));
  EXPECT_FALSE(IsNumericDomain(DomainKind::kEmail));
}

// ---- table generation --------------------------------------------------------

TEST(TableGeneratorTest, DeterministicGivenSeed) {
  TableGenerator a(CorpusProfile::kWeb, 99);
  TableGenerator b(CorpusProfile::kWeb, 99);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a.Generate(), b.Generate());
  }
}

TEST(TableGeneratorTest, DifferentSeedsDiffer) {
  TableGenerator a(CorpusProfile::kWeb, 1);
  TableGenerator b(CorpusProfile::kWeb, 2);
  EXPECT_NE(a.Generate(), b.Generate());
}

TEST(TableGeneratorTest, ShapeWithinProfileBounds) {
  TableGenerator gen(CorpusProfile::kWiki, 7);
  const TableGenOptions opts = DefaultTableGenOptions(CorpusProfile::kWiki);
  for (int i = 0; i < 50; ++i) {
    Table t = gen.Generate();
    EXPECT_GE(static_cast<int>(t.NumRows()), opts.min_rows);
    EXPECT_LE(static_cast<int>(t.NumRows()), opts.max_rows);
    EXPECT_GE(static_cast<int>(t.NumCols()), opts.min_cols);
    EXPECT_LE(static_cast<int>(t.NumCols()), opts.max_cols);
  }
}

TEST(TableGeneratorTest, NumericFractionTracksProfile) {
  TableGenerator gen(CorpusProfile::kEnterprise, 11);
  double numeric = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) numeric += gen.Generate().NumericCellFraction();
  numeric /= n;
  // Target is 57%; dates/ids/emails are non-numeric, allow a wide band.
  EXPECT_GT(numeric, 0.40);
  EXPECT_LT(numeric, 0.75);
}

TEST(TableGeneratorTest, NoFullyNullRows) {
  TableGenerator gen(CorpusProfile::kWeb, 13);
  for (int i = 0; i < 100; ++i) {
    Table t = gen.Generate();
    for (size_t r = 0; r < t.NumRows(); ++r) {
      bool all_null = true;
      for (size_t c = 0; c < t.NumCols(); ++c) {
        all_null = all_null && t.Cell(r, c).empty();
      }
      EXPECT_FALSE(all_null);
    }
  }
}

TEST(TableGeneratorTest, GenerateWithShapeHonorsRequest) {
  TableGenerator gen(CorpusProfile::kWeb, 17);
  Table t = gen.GenerateWithShape(
      {DomainKind::kCountry, DomainKind::kSmallInt}, 7);
  EXPECT_EQ(t.NumRows(), 7u);
  EXPECT_EQ(t.NumCols(), 2u);
  EXPECT_EQ(t.name(), "country|small_int");
}

TEST(BuildIndexTest, BackgroundIndexIsFinalizedAndPopulated) {
  ColumnIndex index = BuildBackgroundIndex(CorpusProfile::kWeb, 100, 3);
  EXPECT_TRUE(index.finalized());
  EXPECT_GT(index.TotalColumns(), 200u);
  EXPECT_GT(index.NumValues(), 500u);
}

TEST(BuildIndexTest, CombinedCoversBothProfiles) {
  ColumnIndex combined = BuildCombinedIndex(150, 3, 150, 4);
  // Public web content and proprietary enterprise content both present.
  EXPECT_NE(combined.Lookup("london"), kInvalidValueId);
  bool found_enterprise = false;
  for (const auto& customer : EnterpriseCustomers()) {
    if (combined.Lookup(customer) != kInvalidValueId) {
      found_enterprise = true;
      break;
    }
  }
  EXPECT_TRUE(found_enterprise);
}

TEST(BuildIndexTest, WebCorpusLacksEnterpriseNames) {
  ColumnIndex web = BuildBackgroundIndex(CorpusProfile::kWeb, 200, 3);
  for (const auto& customer : EnterpriseCustomers()) {
    EXPECT_EQ(web.Lookup(customer), kInvalidValueId) << customer;
  }
}

// ---- benchmark construction -----------------------------------------------

TEST(ListGenTest, LinesMatchGroundTruthJoin) {
  auto instances = MakeBenchmark(CorpusProfile::kWeb, 20, 5);
  ASSERT_EQ(instances.size(), 20u);
  for (const auto& inst : instances) {
    ASSERT_EQ(inst.lines.size(), inst.ground_truth.NumRows());
    for (size_t r = 0; r < inst.lines.size(); ++r) {
      EXPECT_EQ(inst.lines[r], Join(inst.ground_truth.Row(r), " "));
    }
  }
}

TEST(ListGenTest, BenchmarkSeedsAreDisjointStreams) {
  auto a = MakeBenchmark(CorpusProfile::kWeb, 3, 5);
  auto b = MakeBenchmark(CorpusProfile::kWeb, 3, 6);
  EXPECT_NE(a[0].lines, b[0].lines);
}

// ---- raw crawl ---------------------------------------------------------------

TEST(RawCrawlTest, MixRoughlyMatchesOptions) {
  const auto crawl = GenerateRawCrawl(2000, 9);
  size_t counts[4] = {0, 0, 0, 0};
  for (const auto& list : crawl) ++counts[static_cast<int>(list.kind)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / 2000.0, 0.06, 0.03);
  EXPECT_NEAR(static_cast<double>(counts[1]) / 2000.0, 0.60, 0.05);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 2000.0, 0.20, 0.05);
}

TEST(RawCrawlTest, FilterDropsNavigationAndProse) {
  const auto crawl = GenerateRawCrawl(2000, 10);
  size_t kept_relational = 0;
  size_t kept_other = 0;
  size_t total_relational = 0;
  for (const auto& list : crawl) {
    const bool kept = PassesCrawlFilter(list);
    if (list.kind == RawListKind::kRelational) {
      ++total_relational;
      kept_relational += kept;
    } else {
      kept_other += kept;
    }
  }
  // The filter keeps nearly all relational lists and rejects most junk.
  EXPECT_GT(kept_relational * 10, total_relational * 9);
  EXPECT_LT(kept_other, crawl.size() / 2);
}

TEST(RawCrawlTest, FilterBounds) {
  RawList tiny{{"a b"}, RawListKind::kDegenerate};
  EXPECT_FALSE(PassesCrawlFilter(tiny));
  RawList ok{{"a b", "c d", "e f", "g h", "i j"}, RawListKind::kRelational};
  EXPECT_TRUE(PassesCrawlFilter(ok));
  RawList long_line = ok;
  long_line.lines[2] = std::string(400, 'x');
  for (int i = 0; i < 40; ++i) long_line.lines[2] += " tok";
  EXPECT_FALSE(PassesCrawlFilter(long_line));
}

// ---- knowledge base -----------------------------------------------------------

TEST(KnowledgeBaseTest, LookupIsNormalized) {
  KnowledgeBase kb;
  kb.AddEntity("New York City", "city");
  EXPECT_TRUE(kb.Contains("new  york  CITY"));
  EXPECT_EQ(kb.TypeOf("NEW YORK CITY").value(), "city");
  EXPECT_FALSE(kb.Contains("new york"));
  EXPECT_FALSE(kb.TypeOf("boston").has_value());
}

TEST(KnowledgeBaseTest, GeneralKbCoversPopularHeadOnly) {
  KnowledgeBase kb = KnowledgeBase::BuildGeneral();
  EXPECT_GT(kb.size(), 100u);
  // The head of the city vocabulary is covered; the tail is not.
  EXPECT_TRUE(kb.Contains(WorldCities().front()));
  EXPECT_FALSE(kb.Contains(WorldCities().back()));
  // No proprietary enterprise coverage.
  EXPECT_FALSE(kb.Contains(EnterpriseCustomers().front()));
}

TEST(KnowledgeBaseTest, CoverageOptionScalesSize) {
  KnowledgeBaseOptions narrow;
  narrow.entity_coverage = 0.1;
  KnowledgeBaseOptions wide;
  wide.entity_coverage = 0.9;
  EXPECT_LT(KnowledgeBase::BuildGeneral(narrow).size(),
            KnowledgeBase::BuildGeneral(wide).size());
}

}  // namespace
}  // namespace tegra::synth
