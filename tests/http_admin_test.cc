// Tests for the HTTP admin plane: HttpAdminServer (POSIX HTTP/1.1 listener,
// routing, shedding, lifecycle) and AdminPages (the zPage set wired to a live
// ExtractionService). Includes the TSan-relevant concurrency cases: scrapes
// racing extractions and Stop() racing in-flight requests.

#include "service/http_admin.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "corpus/corpus_stats.h"
#include "service/admin_pages.h"
#include "service/extraction_service.h"
#include "service/serve_json.h"
#include "store/corpus_manager.h"
#include "synth/corpus_gen.h"
#include "trace/trace.h"
#include "corpus/column_index.h"

namespace tegra {
namespace serve {
namespace {

/// Routes the global tracer's metric sink (where the core extractor records
/// extract.sp_score / extract.low_confidence_total) into a test-local
/// registry, and restores the tracer-owned registry on scope exit so later
/// tests never write through a dangling pointer.
struct ScopedBindMetrics {
  explicit ScopedBindMetrics(MetricsRegistry* registry) {
    trace::Tracer::Global().BindMetrics(registry);
  }
  ~ScopedBindMetrics() { trace::Tracer::Global().BindMetrics(nullptr); }
};

/// Sends raw bytes to 127.0.0.1:port and returns everything read until EOF —
/// for exercising the malformed-request paths HttpGet cannot produce.
std::string RawRequest(int port, const std::string& data) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  (void)::send(fd, data.data(), data.size(), 0);
  ::shutdown(fd, SHUT_WR);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

// ---------------------------------------------------------------------------
// HttpAdminServer: transport-level behaviour with plain handlers.
// ---------------------------------------------------------------------------

TEST(HttpAdminServerTest, StartsOnEphemeralPortAndServes) {
  HttpAdminServer server;
  server.Handle("/ping", [](const HttpRequest&) {
    return HttpResponse::Text(200, "pong\n");
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  const auto result = HttpGet(server.port(), "/ping");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->status, 200);
  EXPECT_EQ(result->body, "pong\n");
  const auto it = result->headers.find("content-type");
  ASSERT_NE(it, result->headers.end());
  EXPECT_NE(it->second.find("text/plain"), std::string::npos);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpAdminServerTest, UnknownPathIs404ListingRoutes) {
  HttpAdminServer server;
  server.Handle("/known", [](const HttpRequest&) {
    return HttpResponse::Text(200, "ok");
  });
  ASSERT_TRUE(server.Start().ok());
  const auto result = HttpGet(server.port(), "/nope");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, 404);
  EXPECT_NE(result->body.find("/known"), std::string::npos);
}

TEST(HttpAdminServerTest, NonGetMethodsAre405) {
  HttpAdminServer server;
  server.Handle("/x", [](const HttpRequest&) {
    return HttpResponse::Text(200, "ok");
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string response = RawRequest(
      server.port(),
      "POST /x HTTP/1.1\r\nHost: localhost\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos) << response;
}

TEST(HttpAdminServerTest, MalformedRequestLineIs400) {
  HttpAdminServer server;
  server.Handle("/x", [](const HttpRequest&) {
    return HttpResponse::Text(200, "ok");
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string response =
      RawRequest(server.port(), "this is not http\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
}

TEST(HttpAdminServerTest, OversizedRequestHeadIs413) {
  HttpAdminOptions options;
  options.max_request_bytes = 512;
  HttpAdminServer server(options);
  server.Handle("/x", [](const HttpRequest&) {
    return HttpResponse::Text(200, "ok");
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string response = RawRequest(
      server.port(), "GET /x HTTP/1.1\r\nX-Pad: " + std::string(4096, 'a') +
                         "\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 413"), std::string::npos) << response;
}

TEST(HttpAdminServerTest, QueryParametersAreDecodedAndDispatched) {
  HttpAdminServer server;
  std::string seen_format, seen_q;
  server.Handle("/page", [&](const HttpRequest& request) {
    seen_format = request.Param("format", "html");
    seen_q = request.Param("q");
    return HttpResponse::Text(200, "format=" + seen_format);
  });
  ASSERT_TRUE(server.Start().ok());
  const auto result =
      HttpGet(server.port(), "/page?format=json&q=a%20b%2Bc");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, 200);
  EXPECT_EQ(seen_format, "json");
  EXPECT_EQ(seen_q, "a b+c");
  EXPECT_EQ(result->body, "format=json");
}

TEST(HttpAdminServerTest, PortConflictFailsCleanly) {
  HttpAdminServer first;
  first.Handle("/", [](const HttpRequest&) {
    return HttpResponse::Text(200, "ok");
  });
  ASSERT_TRUE(first.Start().ok());

  HttpAdminOptions options;
  options.port = first.port();
  HttpAdminServer second(options);
  second.Handle("/", [](const HttpRequest&) {
    return HttpResponse::Text(200, "ok");
  });
  const Status status = second.Start();
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(second.running());
}

TEST(HttpAdminServerTest, StopIsIdempotentAndRestartable) {
  HttpAdminServer server;
  server.Handle("/", [](const HttpRequest&) {
    return HttpResponse::Text(200, "ok");
  });
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
  server.Stop();  // Second Stop is a no-op.
  EXPECT_FALSE(server.running());
  // After Stop the port is released and the server can be started again.
  ASSERT_TRUE(server.Start().ok());
  const auto result = HttpGet(server.port(), "/");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, 200);
  server.Stop();
}

TEST(HttpAdminServerTest, ConcurrentClientsAllServed) {
  MetricsRegistry registry;
  HttpAdminOptions options;
  options.num_handler_threads = 4;
  HttpAdminServer server(options, &registry);
  std::atomic<int> handled{0};
  server.Handle("/work", [&](const HttpRequest&) {
    handled.fetch_add(1);
    return HttpResponse::Text(200, "done");
  });
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto result = HttpGet(server.port(), "/work");
        if (result.ok() && result->status == 200) ok_count.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(ok_count.load(), kThreads * kPerThread);
  EXPECT_EQ(handled.load(), kThreads * kPerThread);
  const MetricsSnapshot snap = registry.Snapshot();
  const auto it = snap.counters.find("admin.requests_total");
  ASSERT_NE(it, snap.counters.end());
  EXPECT_GE(it->second, static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(HttpAdminServerTest, StopWithoutStartIsSafe) {
  HttpAdminServer server;
  server.Stop();  // Never started; must not crash or hang.
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), -1);
}

// ---------------------------------------------------------------------------
// AdminPages over a live ExtractionService.
// ---------------------------------------------------------------------------

class AdminPagesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    index_ = new ColumnIndex(synth::BuildBackgroundIndex(
        synth::CorpusProfile::kWeb, /*num_tables=*/800, /*seed=*/404));
    stats_ = new CorpusStats(index_);
    extractor_ = new TegraExtractor(stats_);
    // AdminPages consumes the corpus through a CorpusManager; wrap the
    // fixture index in a non-owning view (no file backing, generation 1).
    manager_ = new store::CorpusManager(
        std::shared_ptr<const CorpusView>(index_, [](const CorpusView*) {}),
        /*path=*/"");
  }
  static void TearDownTestSuite() {
    delete manager_;
    delete extractor_;
    delete stats_;
    delete index_;
    manager_ = nullptr;
    extractor_ = nullptr;
    stats_ = nullptr;
    index_ = nullptr;
  }

  static ExtractionRequest MakeRequest(size_t rotate = 0) {
    static const std::vector<std::string> base = {
        "Boston Massachusetts 645,966",
        "Worcester Massachusetts 182,544",
        "Providence Rhode Island 178,042",
        "Hartford Connecticut 124,775",
        "Springfield Massachusetts 153,060",
        "Bridgeport Connecticut 144,229",
    };
    ExtractionRequest request;
    for (size_t j = 0; j < base.size(); ++j) {
      request.lines.push_back(base[(rotate + j) % base.size()]);
    }
    return request;
  }

  static ColumnIndex* index_;
  static CorpusStats* stats_;
  static TegraExtractor* extractor_;
  static store::CorpusManager* manager_;
};

ColumnIndex* AdminPagesTest::index_ = nullptr;
CorpusStats* AdminPagesTest::stats_ = nullptr;
TegraExtractor* AdminPagesTest::extractor_ = nullptr;
store::CorpusManager* AdminPagesTest::manager_ = nullptr;

TEST_F(AdminPagesTest, AllPagesRespondOverSockets) {
  MetricsRegistry registry;
  ScopedBindMetrics bind(&registry);
  ExtractionService service(extractor_, {}, &registry);
  AdminPages pages(&service, &trace::Tracer::Global(), manager_);
  HttpAdminServer server({}, &registry);
  pages.RegisterAll(&server);
  ASSERT_TRUE(server.Start().ok());

  // Drive one extraction through so the pages have content to show.
  const ExtractionResponse response = service.SubmitAndWait(MakeRequest());
  ASSERT_TRUE(response.ok()) << response.status.ToString();

  const std::vector<std::string> endpoints = {
      "/", "/metrics", "/healthz", "/readyz", "/statusz", "/tracez",
      "/slowlogz", "/varz"};
  for (const std::string& endpoint : endpoints) {
    const auto result = HttpGet(server.port(), endpoint);
    ASSERT_TRUE(result.ok()) << endpoint << ": " << result.status().ToString();
    EXPECT_EQ(result->status, 200) << endpoint << "\n" << result->body;
    EXPECT_FALSE(result->body.empty()) << endpoint;
  }

  // /metrics speaks the Prometheus exposition format and carries both the
  // quality histogram and the build-info marker.
  const auto metrics = HttpGet(server.port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  const auto ct = metrics->headers.find("content-type");
  ASSERT_NE(ct, metrics->headers.end());
  EXPECT_NE(ct->second.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics->body.find("tegra_extract_sp_score_bucket"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("tegra_build_info{git_sha="),
            std::string::npos);
  EXPECT_NE(metrics->body.find("tegra_service_requests_total"),
            std::string::npos);

  // /varz is parseable JSON, self-identifies the build, and carries uptime.
  const auto varz = HttpGet(server.port(), "/varz");
  ASSERT_TRUE(varz.ok());
  const auto varz_json = ParseJson(varz->body);
  ASSERT_TRUE(varz_json.ok()) << varz_json.status().ToString();
  EXPECT_TRUE((*varz_json)["build"].is_object());
  EXPECT_GT((*varz_json)["gauges"]["process.uptime_seconds"].AsNumber(-1), 0);

  // /tracez is loadable Chrome trace JSON.
  const auto tracez = HttpGet(server.port(), "/tracez");
  ASSERT_TRUE(tracez.ok());
  const auto trace_json = ParseJson(tracez->body);
  ASSERT_TRUE(trace_json.ok()) << trace_json.status().ToString();
  EXPECT_TRUE((*trace_json)["traceEvents"].is_array());

  // /slowlogz?format=json renders the shared shape with the sp field.
  const auto slowlog = HttpGet(server.port(), "/slowlogz?format=json");
  ASSERT_TRUE(slowlog.ok());
  const auto slow_json = ParseJson(slowlog->body);
  ASSERT_TRUE(slow_json.ok()) << slow_json.status().ToString();
  const auto& records = (*slow_json)["records"].AsArray();
  ASSERT_GE(records.size(), 1u);
  EXPECT_GE(records[0]["sp"].AsNumber(-1), 0) << slowlog->body;
}

TEST_F(AdminPagesTest, ReadyzReports503WhenQueueSaturated) {
  MetricsRegistry registry;
  ServiceOptions service_options;
  service_options.max_queue_depth = 4;
  ExtractionService service(extractor_, service_options, &registry);
  AdminPages pages(&service, &trace::Tracer::Global(), manager_);

  // Healthy: ready.
  HttpResponse ready = pages.Readyz(HttpRequest());
  EXPECT_EQ(ready.status, 200);

  // Deterministic saturation via the queue-depth hook: at the threshold the
  // page must flip to 503 and explain itself.
  pages.set_queue_depth_fn([] { return size_t{4}; });
  ready = pages.Readyz(HttpRequest());
  EXPECT_EQ(ready.status, 503);
  EXPECT_NE(ready.body.find("queue saturated"), std::string::npos)
      << ready.body;

  pages.set_queue_depth_fn([] { return size_t{3}; });
  EXPECT_EQ(pages.Readyz(HttpRequest()).status, 200);
}

TEST_F(AdminPagesTest, ReadyzReports503WithoutServiceOrCorpus) {
  AdminPages no_service(nullptr, nullptr, nullptr);
  HttpResponse response = no_service.Readyz(HttpRequest());
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("not attached"), std::string::npos);

  MetricsRegistry registry;
  ExtractionService service(extractor_, {}, &registry);
  AdminPages no_corpus(&service, nullptr, nullptr);
  response = no_corpus.Readyz(HttpRequest());
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("corpus"), std::string::npos);
}

TEST_F(AdminPagesTest, ReadyzReports503DuringShutdown) {
  MetricsRegistry registry;
  auto* service = new ExtractionService(extractor_, {}, &registry);
  AdminPages pages(service, nullptr, manager_);
  EXPECT_EQ(pages.Readyz(HttpRequest()).status, 200);
  service->Shutdown();
  HttpResponse response = pages.Readyz(HttpRequest());
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("shutting down"), std::string::npos);
  delete service;
}

TEST_F(AdminPagesTest, StatuszShowsBuildCorpusAndQuality) {
  MetricsRegistry registry;
  ScopedBindMetrics bind(&registry);
  ExtractionService service(extractor_, {}, &registry);
  AdminPagesOptions options;
  options.corpus_description = "synthetic web:800:404";
  AdminPages pages(&service, &trace::Tracer::Global(), manager_, options);

  const ExtractionResponse response = service.SubmitAndWait(MakeRequest(1));
  ASSERT_TRUE(response.ok());

  const HttpResponse statusz = pages.Statusz(HttpRequest());
  EXPECT_EQ(statusz.status, 200);
  EXPECT_NE(statusz.content_type.find("text/html"), std::string::npos);
  EXPECT_NE(statusz.body.find("git_sha"), std::string::npos);
  EXPECT_NE(statusz.body.find("synthetic web:800:404"), std::string::npos);
  EXPECT_NE(statusz.body.find("extraction quality"), std::string::npos);
  EXPECT_NE(statusz.body.find("sp_score"), std::string::npos);
  EXPECT_NE(statusz.body.find("max_queue_depth"), std::string::npos);
}

// The TSan case the issue calls out: /metrics scrapes racing extractions.
// Run extraction load on several client threads while a scraper hammers the
// endpoint; every scrape must return a well-formed 200 and the final counters
// must be exact.
TEST_F(AdminPagesTest, ConcurrentScrapesDuringExtractions) {
  MetricsRegistry registry;
  ScopedBindMetrics bind(&registry);
  ServiceOptions service_options;
  service_options.num_workers = 2;
  ExtractionService service(extractor_, service_options, &registry);
  AdminPages pages(&service, &trace::Tracer::Global(), manager_);
  HttpAdminServer server({}, &registry);
  pages.RegisterAll(&server);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 6;
  std::atomic<bool> done{false};
  std::atomic<int> scrapes_ok{0};
  std::atomic<int> scrapes_bad{0};

  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto result = HttpGet(server.port(), "/metrics");
      if (result.ok() && result->status == 200 &&
          result->body.find("tegra_build_info") != std::string::npos) {
        scrapes_ok.fetch_add(1);
      } else {
        scrapes_bad.fetch_add(1);
      }
      // Also exercise the JSON path, which walks the same histograms.
      const auto varz = HttpGet(server.port(), "/varz");
      if (!varz.ok() || varz->status != 200) scrapes_bad.fetch_add(1);
    }
  });

  std::vector<std::thread> clients;
  std::atomic<int> extract_ok{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        ExtractionRequest request = MakeRequest(c * kRequestsPerClient + i);
        request.bypass_cache = true;  // Force real extractor work every time.
        const ExtractionResponse response =
            service.SubmitAndWait(std::move(request));
        if (response.ok()) extract_ok.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  done.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_EQ(extract_ok.load(), kClients * kRequestsPerClient);
  EXPECT_GT(scrapes_ok.load(), 0);
  EXPECT_EQ(scrapes_bad.load(), 0);

  // After the dust settles, the scrape totals must be exact, not torn.
  const auto final_scrape = HttpGet(server.port(), "/metrics");
  ASSERT_TRUE(final_scrape.ok());
  // Line-anchored so the "# TYPE ..." comment line cannot match first.
  const std::string needle = "\ntegra_service_completed_total ";
  const size_t pos = final_scrape->body.find(needle);
  ASSERT_NE(pos, std::string::npos);
  const int completed =
      std::atoi(final_scrape->body.c_str() + pos + needle.size());
  EXPECT_EQ(completed, kClients * kRequestsPerClient);
}

// Stop() racing in-flight requests must not deadlock, crash or leak threads.
TEST_F(AdminPagesTest, StopWhileClientsAreFetching) {
  MetricsRegistry registry;
  ExtractionService service(extractor_, {}, &registry);
  AdminPages pages(&service, &trace::Tracer::Global(), manager_);
  HttpAdminServer server({}, &registry);
  pages.RegisterAll(&server);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  std::atomic<bool> stop_clients{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      while (!stop_clients.load(std::memory_order_acquire)) {
        // Failures are expected once the server goes down; only liveness
        // matters here.
        (void)HttpGet(port, "/statusz", /*timeout_ms=*/1000);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Stop();
  stop_clients.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace serve
}  // namespace tegra
