// Tests for the tokenizer, value-type detection and character profiles.

#include <gtest/gtest.h>

#include "text/char_profile.h"
#include "text/tokenizer.h"
#include "text/value_type.h"

namespace tegra {
namespace {

// ---- tokenizer ----------------------------------------------------------

TEST(TokenizerTest, WhitespaceDefault) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("Los Angeles  California\tUnited States"),
            (std::vector<std::string>{"Los", "Angeles", "California",
                                      "United", "States"}));
}

TEST(TokenizerTest, PunctuationDelimiters) {
  TokenizerOptions opts;
  opts.punctuation_delimiters = ".,:";
  Tokenizer tok(opts);
  EXPECT_EQ(tok.Tokenize("1. Boston, Massachusetts: 645,966"),
            (std::vector<std::string>{"1", "Boston", "Massachusetts", "645",
                                      "966"}));
}

TEST(TokenizerTest, CommaNotDelimiterByDefault) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("Tokyo 37,400,068"),
            (std::vector<std::string>{"Tokyo", "37,400,068"}));
}

TEST(TokenizerTest, EmptyAndAllDelimiters) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize(" \t \n").empty());
}

TEST(TokenizerTest, CountMatchesTokenize) {
  Tokenizer tok;
  const std::string lines[] = {"", "a", "a b c", "  x  ", "one,two three"};
  for (const auto& line : lines) {
    EXPECT_EQ(tok.CountTokens(line), tok.Tokenize(line).size()) << line;
  }
}

TEST(TokenizerTest, MaxTokensTruncates) {
  TokenizerOptions opts;
  opts.max_tokens = 2;
  Tokenizer tok(opts);
  EXPECT_EQ(tok.Tokenize("a b c d").size(), 2u);
}

// ---- value types ----------------------------------------------------------

struct TypeCase {
  const char* input;
  ValueType expected;
};

class ValueTypeTest : public ::testing::TestWithParam<TypeCase> {};

TEST_P(ValueTypeTest, Detects) {
  EXPECT_EQ(DetectValueType(GetParam().input), GetParam().expected)
      << "input: " << GetParam().input;
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, ValueTypeTest,
    ::testing::Values(
        TypeCase{"", ValueType::kEmpty},
        TypeCase{"   ", ValueType::kEmpty},
        TypeCase{"42", ValueType::kInteger},
        TypeCase{"-7", ValueType::kInteger},
        TypeCase{"1,234,567", ValueType::kInteger},
        TypeCase{"159.3", ValueType::kDecimal},
        TypeCase{"-0.5", ValueType::kDecimal},
        TypeCase{"1,234.56", ValueType::kDecimal},
        TypeCase{"12%", ValueType::kPercent},
        TypeCase{"3.5%", ValueType::kPercent},
        TypeCase{"$1,200", ValueType::kCurrency},
        TypeCase{"$99.95", ValueType::kCurrency},
        TypeCase{"\xE2\x82\xAC" "99", ValueType::kCurrency},  // €99
        TypeCase{"1984", ValueType::kYear},
        TypeCase{"2020", ValueType::kYear},
        TypeCase{"3020", ValueType::kInteger},  // Not a plausible year.
        TypeCase{"2010-05-31", ValueType::kDate},
        TypeCase{"05/31/2010", ValueType::kDate},
        TypeCase{"Jan 12", ValueType::kDate},
        TypeCase{"12 Jan 2010", ValueType::kDate},
        TypeCase{"September 3", ValueType::kDate},
        TypeCase{"12:30", ValueType::kTime},
        TypeCase{"09:15:00", ValueType::kTime},
        TypeCase{"mary.cook@example.com", ValueType::kEmail},
        TypeCase{"http://example.com/x", ValueType::kUrl},
        TypeCase{"www.example.com", ValueType::kUrl},
        TypeCase{"example.org", ValueType::kUrl},
        TypeCase{"425-882-8080", ValueType::kPhone},
        TypeCase{"(425) 882 8080", ValueType::kPhone},
        TypeCase{"10.0.0.1", ValueType::kIpAddress},
        TypeCase{"255.255.255.300", ValueType::kPhone},  // Octet overflow;
        // dotted digit groups then read as a phone-style number.
        TypeCase{"SKU-926434", ValueType::kIdCode},
        TypeCase{"A12B9", ValueType::kIdCode},
        TypeCase{"CC-1042", ValueType::kIdCode},
        TypeCase{"New York City", ValueType::kText},
        TypeCase{"Toronto", ValueType::kText},
        TypeCase{"hello world foo", ValueType::kText}));

TEST(ValueTypeTest, NumericFamily) {
  EXPECT_TRUE(IsNumericType(ValueType::kInteger));
  EXPECT_TRUE(IsNumericType(ValueType::kDecimal));
  EXPECT_TRUE(IsNumericType(ValueType::kPercent));
  EXPECT_TRUE(IsNumericType(ValueType::kCurrency));
  EXPECT_TRUE(IsNumericType(ValueType::kYear));
  EXPECT_FALSE(IsNumericType(ValueType::kDate));
  EXPECT_FALSE(IsNumericType(ValueType::kText));
  EXPECT_FALSE(IsNumericType(ValueType::kPhone));
}

TEST(ValueTypeTest, NamesAreDistinct) {
  EXPECT_STREQ(ValueTypeName(ValueType::kInteger), "integer");
  EXPECT_STREQ(ValueTypeName(ValueType::kText), "text");
  EXPECT_STRNE(ValueTypeName(ValueType::kEmail),
               ValueTypeName(ValueType::kUrl));
}

// ---- char profiles ---------------------------------------------------------

TEST(CharProfileTest, CountsClasses) {
  CharProfile p = ComputeCharProfile("Ab1-x 2");
  EXPECT_EQ(p.capitals, 1);
  EXPECT_EQ(p.lowers, 2);   // 'b', 'x'
  EXPECT_EQ(p.digits, 2);   // '1', '2'
  EXPECT_EQ(p.punctuation, 1);  // '-'
  EXPECT_EQ(p.symbols, 0);
}

TEST(CharProfileTest, WhitespaceNotCounted) {
  EXPECT_EQ(ComputeCharProfile("a b"), ComputeCharProfile("ab"));
}

TEST(CharClassDistanceTest, IdenticalProfilesAreZero) {
  CharProfile p = ComputeCharProfile("New York");
  EXPECT_DOUBLE_EQ(CharClassDistance(p, p), 0.0);
}

TEST(CharClassDistanceTest, FractionOfDifferingClasses) {
  CharProfile a = ComputeCharProfile("abc");   // 3 lowers
  CharProfile b = ComputeCharProfile("ab1");   // 2 lowers, 1 digit
  // Differ in lowers and digits: 2 of 5 classes.
  EXPECT_DOUBLE_EQ(CharClassDistance(a, b), 0.4);
}

TEST(CharClassDistanceTest, TriangleInequalityOnSamples) {
  const char* samples[] = {"Toronto", "New York City", "645,966", "$12.50",
                           "SKU-9","", "a B 9 ?"};
  for (const char* x : samples) {
    for (const char* y : samples) {
      for (const char* z : samples) {
        const auto px = ComputeCharProfile(x);
        const auto py = ComputeCharProfile(y);
        const auto pz = ComputeCharProfile(z);
        EXPECT_LE(CharClassDistance(px, pz),
                  CharClassDistance(px, py) + CharClassDistance(py, pz) + 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace tegra
