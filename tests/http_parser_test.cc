// tegra::net::HttpParser — incremental framing under hostile and fragmented
// input: truncated start lines, heads split across arbitrary read
// boundaries, pipelined requests, oversized heads/bodies, bad
// Transfer-Encoding, header-count bombs. The parser is the security
// boundary of the data plane, so every rejection is asserted down to the
// specific HTTP status it maps to.

#include "net/http_parser.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace tegra {
namespace net {
namespace {

TEST(HttpParserTest, SimpleGet) {
  HttpParser parser;
  parser.Feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().path, "/healthz");
  EXPECT_EQ(parser.request().version, "HTTP/1.1");
  EXPECT_EQ(parser.request().Header("host"), "x");
  EXPECT_TRUE(parser.request().WantsKeepAlive());
}

TEST(HttpParserTest, PostBodyFramedByContentLength) {
  HttpParser parser;
  parser.Feed("POST /v1/extract HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().body, "hello");
}

TEST(HttpParserTest, OneByteAtATime) {
  // Every possible read boundary: feed the request a single byte per call.
  const std::string raw =
      "POST /v1/extract?x=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "{\"a\": true}";
  HttpParser parser;
  for (char c : raw) {
    ASSERT_FALSE(parser.failed());
    parser.Feed(std::string_view(&c, 1));
  }
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().path, "/v1/extract");
  EXPECT_EQ(parser.request().Param("x"), "1");
  EXPECT_EQ(parser.request().body, "{\"a\": true}");
}

TEST(HttpParserTest, HeadSplitAcrossReads) {
  // The CRLFCRLF terminator itself straddles two reads.
  HttpParser parser;
  parser.Feed("GET / HTTP/1.1\r\nHost: a\r");
  EXPECT_FALSE(parser.done());
  EXPECT_FALSE(parser.failed());
  parser.Feed("\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().Header("host"), "a");
}

TEST(HttpParserTest, TruncatedStartLineIsNotAnError) {
  // Half a request line is just "not done yet" — more bytes may come.
  HttpParser parser;
  parser.Feed("GET /ver");
  EXPECT_FALSE(parser.done());
  EXPECT_FALSE(parser.failed());
  parser.Feed("y/long/path HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().path, "/very/long/path");
}

TEST(HttpParserTest, MalformedStartLine400) {
  HttpParser parser;
  parser.Feed("this is not http\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, UnsupportedVersion400) {
  HttpParser parser;
  parser.Feed("GET / HTTP/2.0\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, MissingContentLengthOnPost400) {
  HttpParser parser;
  parser.Feed("POST /v1/extract HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, BadContentLength400) {
  for (const char* bad : {"banana", "-3", "12banana"}) {
    HttpParser parser;
    parser.Feed(std::string("POST / HTTP/1.1\r\nContent-Length: ") + bad +
                "\r\n\r\n");
    ASSERT_TRUE(parser.failed()) << bad;
    EXPECT_EQ(parser.error_status(), 400) << bad;
  }
}

TEST(HttpParserTest, ChunkedTransferEncoding501) {
  // Chunked framing is deliberately unimplemented; the rejection must be
  // explicit (501), not a hang or a misframed body.
  HttpParser parser;
  parser.Feed(
      "POST /v1/extract HTTP/1.1\r\n"
      "Transfer-Encoding: chunked\r\n"
      "\r\n"
      "5\r\nhello\r\n0\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParserTest, IdentityTransferEncodingAccepted) {
  HttpParser parser;
  parser.Feed(
      "POST / HTTP/1.1\r\n"
      "Transfer-Encoding: identity\r\n"
      "Content-Length: 2\r\n"
      "\r\n"
      "ok");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().body, "ok");
}

TEST(HttpParserTest, OversizedHead413) {
  HttpParserLimits limits;
  limits.max_head_bytes = 128;
  HttpParser parser(limits);
  parser.Feed("GET / HTTP/1.1\r\nX-Pad: " + std::string(4096, 'a') +
              "\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, OversizedHeadDetectedBeforeTerminator) {
  // The limit fires while the head is still streaming in — a client slowly
  // pumping an endless header can never make the parser buffer it all.
  HttpParserLimits limits;
  limits.max_head_bytes = 64;
  HttpParser parser(limits);
  parser.Feed("GET / HTTP/1.1\r\nX-Pad: ");
  for (int i = 0; i < 100 && !parser.failed(); ++i) {
    parser.Feed(std::string(16, 'a'));
    ASSERT_LE(parser.buffered_bytes(), 200u);  // Bounded, not accumulating.
  }
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, OversizedDeclaredBody413) {
  HttpParserLimits limits;
  limits.max_body_bytes = 1024;
  HttpParser parser(limits);
  // Rejected on the declaration alone; no body byte is ever accepted.
  parser.Feed("POST / HTTP/1.1\r\nContent-Length: 1048576\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, TooManyHeaders431) {
  HttpParserLimits limits;
  limits.max_header_count = 8;
  HttpParser parser(limits);
  std::string head = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 20; ++i) {
    head += "X-H" + std::to_string(i) + ": v\r\n";
  }
  parser.Feed(head + "\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, PipelinedRequestsShareOneBuffer) {
  HttpParser parser;
  parser.Feed(
      "POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nonePOST /b HTTP/1.1\r\n"
      "Content-Length: 3\r\n\r\ntwo");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().path, "/a");
  EXPECT_EQ(parser.request().body, "one");
  EXPECT_GT(parser.buffered_bytes(), 0u);

  parser.Next();
  ASSERT_TRUE(parser.done());  // Second request completes from the surplus.
  EXPECT_EQ(parser.request().path, "/b");
  EXPECT_EQ(parser.request().body, "two");
  EXPECT_EQ(parser.buffered_bytes(), 0u);

  parser.Next();
  EXPECT_FALSE(parser.done());  // Nothing buffered: back to kHead.
  EXPECT_FALSE(parser.failed());
}

TEST(HttpParserTest, QueryStringDecoding) {
  HttpParser parser;
  parser.Feed("GET /search?q=a%20b%2Bc&n=3 HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().Param("q"), "a b+c");
  EXPECT_EQ(parser.request().Param("n"), "3");
  EXPECT_EQ(parser.request().Param("missing", "dflt"), "dflt");
}

TEST(HttpParserTest, KeepAliveSemantics) {
  {
    HttpParser parser;
    parser.Feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
    ASSERT_TRUE(parser.done());
    EXPECT_FALSE(parser.request().WantsKeepAlive());
  }
  {
    HttpParser parser;
    parser.Feed("GET / HTTP/1.0\r\n\r\n");
    ASSERT_TRUE(parser.done());
    EXPECT_FALSE(parser.request().WantsKeepAlive());
  }
  {
    HttpParser parser;
    parser.Feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
    ASSERT_TRUE(parser.done());
    EXPECT_TRUE(parser.request().WantsKeepAlive());
  }
}

TEST(HttpParserTest, HeaderKeysLowerCasedValuesTrimmed) {
  HttpParser parser;
  parser.Feed("GET / HTTP/1.1\r\nX-MiXeD-CaSe:   padded value  \r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().Header("x-mixed-case"), "padded value");
}

TEST(HttpParserTest, ZeroLengthBodyCompletesImmediately) {
  HttpParser parser;
  parser.Feed("POST / HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_TRUE(parser.request().body.empty());
}

TEST(HttpParserTest, SerializeResponseRoundTrip) {
  HttpResponse response = HttpResponse::Json("{\"ok\":true}\n");
  response.extra_headers.emplace_back("Retry-After", "1");
  const std::string wire = SerializeResponse(response, /*keep_alive=*/true);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 12\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"ok\":true}\n"), std::string::npos);

  const std::string closing =
      SerializeResponse(HttpResponse::Text(503, "busy\n"), false);
  EXPECT_NE(closing.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  EXPECT_NE(closing.find("Connection: close\r\n"), std::string::npos);
}

}  // namespace
}  // namespace net
}  // namespace tegra
