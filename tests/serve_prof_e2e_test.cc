// End-to-end test of the profiling/evidence layer in the real tegra_serve
// binary: fork/exec the daemon, drive POST /v1/extract over sockets, and
// assert the observability contract of tegra::prof:
//
//  * GET /pprof/profile under load returns non-empty folded stacks whose
//    frames symbolize into tegra code (the SIGPROF sampler, the
//    frame-pointer walk and dladdr symbolization all working together in a
//    multi-threaded process),
//  * the wide-event access log emits EXACTLY one JSON line per completed
//    /v1/extract exchange — singles, batches and parse rejections alike —
//    and errors are kept even when ordinary-request sampling drops to 0,
//  * an OpenMetrics exemplar's trace id resolves to a record in
//    /slowlogz?format=json (metrics -> trace joinability),
//  * SIGTERM drains gracefully: exit code 0 and a flushed access log,
//  * the span-ring counters surface as trace.ring.* gauges on /varz.
//
// The binary path is injected at compile time via TEGRA_SERVE_BINARY.

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/http_client.h"
#include "serve_process_util.h"
#include "service/http_admin.h"
#include "service/serve_json.h"
#include "trace/trace.h"

namespace tegra {
namespace serve {
namespace {

struct ReadyPorts {
  int admin = -1;
  int data = -1;
};

ReadyPorts ReadReadyEvents(ServeProcess* daemon, bool expect_admin) {
  ReadyPorts ports;
  const int expected = expect_admin ? 2 : 1;
  for (int i = 0; i < expected; ++i) {
    const std::string line = daemon->NextLine();
    const auto parsed = ParseJson(line);
    EXPECT_TRUE(parsed.ok()) << line;
    if (!parsed.ok()) return ports;
    const std::string event = (*parsed)["event"].AsString();
    const int port = static_cast<int>((*parsed)["port"].AsNumber(0));
    if (event == "admin_ready") {
      ports.admin = port;
    } else if (event == "data_ready") {
      ports.data = port;
    } else {
      ADD_FAILURE() << "unexpected event line: " << line;
    }
  }
  return ports;
}

void Quit(ServeProcess* daemon) {
  ASSERT_TRUE(daemon->WriteLine("{\"cmd\":\"quit\"}"));
  daemon->CloseStdin();
  EXPECT_EQ(daemon->Wait(), 0);
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string contents;
  char chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    contents.append(chunk, n);
  }
  std::fclose(f);
  return contents;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0, pos;
  while ((pos = text.find('\n', start)) != std::string::npos) {
    lines.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  if (start < text.size()) lines.push_back(text.substr(start));
  return lines;
}

TEST(ServeProfE2eTest, ProfileUnderLoadHasNonEmptyTegraStacks) {
  ServeProcess daemon;
  ASSERT_TRUE(daemon.Start({"--build-corpus", "web:200:1", "--port", "0",
                            "--admin-port", "0", "--workers", "4",
                            "--profile-hz", "199"}));
  const ReadyPorts ports = ReadReadyEvents(&daemon, /*expect_admin=*/true);
  ASSERT_GT(ports.data, 0);
  ASSERT_GT(ports.admin, 0);

  // Offer continuous extraction load while the capture window is open, so
  // SIGPROF (which fires on consumed CPU time) has something to sample.
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      net::HttpClient client("127.0.0.1", ports.data, /*timeout_ms=*/30000);
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string body =
            ExtractionRequestLine(c * 100000 + i, 8, (c + i) % 8);
        (void)client.Post("/v1/extract", body);
        ++i;
      }
    });
  }

  const auto profile =
      HttpGet(ports.admin, "/pprof/profile?seconds=1.5", /*timeout_ms=*/30000);
  stop.store(true);
  for (auto& client : clients) client.join();

  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile->status, 200);
  const std::vector<std::string> lines = SplitLines(profile->body);
  ASSERT_FALSE(lines.empty()) << "empty profile body";
  // Every line is "stack count"; at least one stack must be a real chain
  // that symbolized into tegra code.
  bool tegra_chain = false;
  for (const std::string& line : lines) {
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(std::atoll(line.c_str() + space + 1), 0) << line;
    if (line.find(';') != std::string::npos &&
        line.find("tegra") != std::string::npos) {
      tegra_chain = true;
    }
  }
  EXPECT_TRUE(tegra_chain)
      << "no multi-frame tegra stack in:\n" << profile->body;

  Quit(&daemon);
}

TEST(ServeProfE2eTest, WideEventLogEmitsExactlyOneLinePerRequest) {
  const std::string log_path = testing::TempDir() + "serve_prof_access_" +
                               std::to_string(::getpid()) + ".jsonl";
  std::remove(log_path.c_str());
  ServeProcess daemon;
  ASSERT_TRUE(daemon.Start({"--build-corpus", "web:200:1", "--port", "0",
                            "--workers", "2", "--access-log", log_path,
                            "--access-log-sample", "1.0"}));
  const ReadyPorts ports = ReadReadyEvents(&daemon, /*expect_admin=*/false);
  ASSERT_GT(ports.data, 0);

  net::HttpClient client("127.0.0.1", ports.data, /*timeout_ms=*/30000);
  constexpr int kSingles = 6;
  for (int i = 0; i < kSingles; ++i) {
    const auto response =
        client.Post("/v1/extract", ExtractionRequestLine(i, 8, i % 8));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status, 200);
  }
  // One batch of three -> ONE aggregate wide event with items=3.
  const std::string batch = "{\"requests\":[" + ExtractionRequestLine(100, 8, 0) +
                            "," + ExtractionRequestLine(101, 8, 1) + "," +
                            ExtractionRequestLine(102, 8, 2) + "]}";
  const auto batch_response = client.Post("/v1/extract", batch);
  ASSERT_TRUE(batch_response.ok());
  EXPECT_EQ(batch_response.value().status, 200);
  // One parse rejection -> one bad_request wide event.
  const auto bad_response = client.Post("/v1/extract", "this is not json");
  ASSERT_TRUE(bad_response.ok());
  EXPECT_EQ(bad_response.value().status, 400);

  Quit(&daemon);  // Graceful drain flushes the access log.

  const std::vector<std::string> lines = SplitLines(ReadFile(log_path));
  ASSERT_EQ(lines.size(), static_cast<size_t>(kSingles + 2))
      << ReadFile(log_path);
  int singles = 0, batches = 0, bad = 0;
  std::set<uint64_t> request_ids;
  for (const std::string& line : lines) {
    const auto parsed = ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << line;
    const JsonValue& v = *parsed;
    EXPECT_EQ(v["endpoint"].AsString(), "/v1/extract");
    const uint64_t request_id =
        static_cast<uint64_t>(v["request_id"].AsNumber(0));
    EXPECT_GT(request_id, 0u) << line;
    EXPECT_TRUE(request_ids.insert(request_id).second)
        << "duplicate request_id: " << line;
    if (v["outcome"].AsString() == "bad_request") {
      ++bad;
    } else if (v["batch"].AsBool(false)) {
      ++batches;
      EXPECT_EQ(v["items"].AsNumber(0), 3);
      EXPECT_EQ(v["outcome"].AsString(), "ok");
    } else {
      ++singles;
      EXPECT_EQ(v["outcome"].AsString(), "ok");
      EXPECT_EQ(v["status"].AsNumber(0), 200);
      EXPECT_GT(v["total_ms"].AsNumber(-1), 0.0);
      EXPECT_GT(v["bytes_out"].AsNumber(0), 0.0);
    }
  }
  EXPECT_EQ(singles, kSingles);
  EXPECT_EQ(batches, 1);
  EXPECT_EQ(bad, 1);
  std::remove(log_path.c_str());
}

TEST(ServeProfE2eTest, TailSamplingZeroStillKeepsErrors) {
  const std::string log_path = testing::TempDir() + "serve_prof_tail_" +
                               std::to_string(::getpid()) + ".jsonl";
  std::remove(log_path.c_str());
  ServeProcess daemon;
  ASSERT_TRUE(daemon.Start({"--build-corpus", "web:200:1", "--port", "0",
                            "--workers", "2", "--access-log", log_path,
                            "--access-log-sample", "0.0",
                            "--access-log-slow-ms", "1000000"}));
  const ReadyPorts ports = ReadReadyEvents(&daemon, /*expect_admin=*/false);
  ASSERT_GT(ports.data, 0);

  net::HttpClient client("127.0.0.1", ports.data, /*timeout_ms=*/30000);
  for (int i = 0; i < 4; ++i) {
    const auto response =
        client.Post("/v1/extract", ExtractionRequestLine(i, 8, i % 8));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, 200);
  }
  const auto bad_response = client.Post("/v1/extract", "{\"lines\":[]}");
  ASSERT_TRUE(bad_response.ok());
  EXPECT_EQ(bad_response.value().status, 400);

  Quit(&daemon);

  const std::vector<std::string> lines = SplitLines(ReadFile(log_path));
  ASSERT_EQ(lines.size(), 1u) << ReadFile(log_path);
  const auto parsed = ParseJson(lines[0]);
  ASSERT_TRUE(parsed.ok()) << lines[0];
  EXPECT_EQ((*parsed)["outcome"].AsString(), "bad_request");
  std::remove(log_path.c_str());
}

TEST(ServeProfE2eTest, ExemplarTraceIdResolvesInSlowlog) {
  ServeProcess daemon;
  ASSERT_TRUE(daemon.Start({"--build-corpus", "web:200:1", "--port", "0",
                            "--admin-port", "0", "--workers", "2",
                            "--trace", "on"}));
  const ReadyPorts ports = ReadReadyEvents(&daemon, /*expect_admin=*/true);
  ASSERT_GT(ports.data, 0);
  ASSERT_GT(ports.admin, 0);

  // At most 6 requests: the slowlog (default capacity 8) then retains every
  // request, so any exemplar's trace id must be resolvable.
  net::HttpClient client("127.0.0.1", ports.data, /*timeout_ms=*/30000);
  for (int i = 0; i < 6; ++i) {
    const auto response =
        client.Post("/v1/extract", ExtractionRequestLine(i, 8, i % 8));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, 200);
  }

  // Default format stays classic Prometheus: no exemplar syntax, no EOF.
  const auto classic = HttpGet(ports.admin, "/metrics");
  ASSERT_TRUE(classic.ok());
  EXPECT_NE(classic->headers.at("content-type").find("version=0.0.4"),
            std::string::npos);
  EXPECT_EQ(classic->body.find("# {trace_id="), std::string::npos);

  const auto openmetrics =
      HttpGet(ports.admin, "/metrics?format=openmetrics");
  ASSERT_TRUE(openmetrics.ok());
  EXPECT_EQ(openmetrics->status, 200);
  EXPECT_NE(
      openmetrics->headers.at("content-type").find("openmetrics-text"),
      std::string::npos);
  EXPECT_NE(openmetrics->body.find("# EOF"), std::string::npos);

  // Pull every exemplar trace id out of the exposition.
  std::set<uint64_t> exemplar_ids;
  const std::string& body = openmetrics->body;
  const std::string needle = "# {trace_id=\"";
  for (size_t pos = body.find(needle); pos != std::string::npos;
       pos = body.find(needle, pos + 1)) {
    exemplar_ids.insert(
        static_cast<uint64_t>(std::atoll(body.c_str() + pos + needle.size())));
  }
  if (trace::kCompiledIn) {
    ASSERT_FALSE(exemplar_ids.empty())
        << "no exemplars in OpenMetrics exposition:\n" << body;

    // Every request is in the slowlog; at least one exemplar must join.
    const auto slowlog = HttpGet(ports.admin, "/slowlogz?format=json");
    ASSERT_TRUE(slowlog.ok());
    const auto parsed = ParseJson(slowlog->body);
    ASSERT_TRUE(parsed.ok());
    std::set<uint64_t> slowlog_ids;
    for (const JsonValue& record : (*parsed)["records"].AsArray()) {
      slowlog_ids.insert(
          static_cast<uint64_t>(record["trace_id"].AsNumber(0)));
    }
    bool joined = false;
    for (const uint64_t id : exemplar_ids) {
      if (slowlog_ids.count(id) > 0) joined = true;
    }
    EXPECT_TRUE(joined) << "no exemplar trace id found in /slowlogz";
  } else {
    // Spans compiled out (TEGRA_TRACE=OFF): no trace context ever installs
    // itself, so exemplars must never fire — the documented interaction.
    EXPECT_TRUE(exemplar_ids.empty()) << body;
  }

  // Satellite: the span-ring counters are scrapeable gauges on /varz.
  const auto varz = HttpGet(ports.admin, "/varz");
  ASSERT_TRUE(varz.ok());
  const auto varz_json = ParseJson(varz->body);
  ASSERT_TRUE(varz_json.ok());
  EXPECT_GT((*varz_json)["gauges"]["trace.ring.capacity"].AsNumber(0), 0.0);
  if (trace::kCompiledIn) {
    EXPECT_GT((*varz_json)["gauges"]["trace.ring.spans"].AsNumber(-1), 0.0);
  }
  EXPECT_GE((*varz_json)["gauges"]["trace.ring.dropped"].AsNumber(-1), 0.0);

  Quit(&daemon);
}

TEST(ServeProfE2eTest, SigtermDrainsGracefullyAndFlushesAccessLog) {
  const std::string log_path = testing::TempDir() + "serve_prof_sigterm_" +
                               std::to_string(::getpid()) + ".jsonl";
  std::remove(log_path.c_str());
  ServeProcess daemon;
  ASSERT_TRUE(daemon.Start({"--build-corpus", "web:200:1", "--port", "0",
                            "--workers", "2", "--access-log", log_path}));
  const ReadyPorts ports = ReadReadyEvents(&daemon, /*expect_admin=*/false);
  ASSERT_GT(ports.data, 0);

  net::HttpClient client("127.0.0.1", ports.data, /*timeout_ms=*/30000);
  for (int i = 0; i < 3; ++i) {
    const auto response =
        client.Post("/v1/extract", ExtractionRequestLine(i, 8, i % 8));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, 200);
  }

  // SIGTERM (not quit, not stdin EOF): the daemon must drain and exit 0
  // with the access log flushed — the ordered-shutdown contract.
  ASSERT_EQ(::kill(daemon.pid(), SIGTERM), 0);
  EXPECT_EQ(daemon.Wait(), 0);

  const std::vector<std::string> lines = SplitLines(ReadFile(log_path));
  EXPECT_EQ(lines.size(), 3u) << ReadFile(log_path);
  std::remove(log_path.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace tegra
