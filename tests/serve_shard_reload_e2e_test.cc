// End-to-end test of the sharded-corpus hot path in the real tegra_serve
// binary: builds a 4-shard corpus directory, starts the daemon on it, keeps
// extraction traffic in flight while an overlay append + reload swaps
// generations, and asserts that (a) zero in-flight requests fail, (b) the
// reload is O(delta) — every base shard mapping is reused (visible as
// corpus.parts_reused on /varz), (c) requests touching overlay-only values
// succeed, (d) a corrupted manifest is rejected while the old generation
// keeps serving, and (e) compaction + SIGHUP returns the directory to the
// overlay-free steady state.
//
// The binary path is injected at compile time via TEGRA_SERVE_BINARY.

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/file_util.h"
#include "corpus/column_index.h"
#include "serve_process_util.h"
#include "service/http_admin.h"
#include "service/serve_json.h"
#include "shard/shard_builder.h"
#include "store/manifest.h"
#include "synth/corpus_gen.h"

namespace tegra {
namespace serve {
namespace {

std::string CorpusDir() {
  return testing::TempDir() + "serve_shard_e2e_" + std::to_string(::getpid());
}

std::vector<Table> MakeTables(size_t n, uint64_t seed) {
  synth::TableGenerator gen(synth::CorpusProfile::kWeb, seed);
  return gen.GenerateMany(n);
}

ColumnIndex BuildIndex(const std::vector<Table>& tables) {
  ColumnIndex index;
  for (const Table& t : tables) index.AddTable(t);
  index.Finalize();
  return index;
}

void BuildShardedOrDie(const std::string& dir,
                       const std::vector<Table>& tables) {
  shardbuild::ShardBuildOptions options;
  options.num_shards = 4;
  shardbuild::ShardBuilder builder(dir, options);
  for (const Table& t : tables) builder.AddTable(t);
  const auto stats = builder.Finish();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
}

double VarzGauge(int port, const std::string& name) {
  const auto varz = HttpGet(port, "/varz");
  if (!varz.ok() || varz->status != 200) return -1;
  const auto parsed = ParseJson(varz->body);
  if (!parsed.ok()) return -1;
  return (*parsed)["gauges"][name].AsNumber(-1);
}

/// An extraction request over arbitrary line content (the canned helper
/// only knows the fixed city table; here we need overlay-only values).
std::string CustomRequestLine(int id, const std::vector<std::string>& lines) {
  JsonValue request = JsonValue::Object();
  request.Set("id", JsonValue::Number(id));
  JsonValue array = JsonValue::Array();
  for (const std::string& line : lines) array.Append(JsonValue::Str(line));
  request.Set("lines", std::move(array));
  request.Set("bypass_cache", JsonValue::Bool(true));
  return request.Dump();
}

TEST(ServeShardReloadE2eTest, OverlayAppendReloadIsODeltaWithZeroFailures) {
  const std::string dir = CorpusDir();
  const auto base_tables = MakeTables(120, 1);
  BuildShardedOrDie(dir, base_tables);

  ServeProcess daemon;
  ASSERT_TRUE(daemon.Start(
      {"--corpus", dir, "--admin-port", "0", "--workers", "2"}));
  const std::string ready_line = daemon.NextLine();
  const auto ready = ParseJson(ready_line);
  ASSERT_TRUE(ready.ok()) << ready_line;
  ASSERT_EQ((*ready)["event"].AsString(), "admin_ready") << ready_line;
  const int port = static_cast<int>((*ready)["port"].AsNumber(0));
  ASSERT_GT(port, 0) << ready_line;

  // The daemon opened the directory as a sharded corpus.
  EXPECT_EQ(VarzGauge(port, "corpus.shards"), 4);
  EXPECT_EQ(VarzGauge(port, "corpus.overlays"), 0);
  const double base_values = VarzGauge(port, "corpus.values");
  EXPECT_GT(base_values, 0);

  // Find values the overlay introduces that the base corpus has never seen:
  // proof later that queries are actually routed into the overlay.
  const auto delta_tables = MakeTables(25, 2);
  const ColumnIndex delta = BuildIndex(delta_tables);
  const ColumnIndex base_index = BuildIndex(base_tables);
  std::vector<std::string> overlay_only;
  delta.ForEachValue([&](ValueId, const std::string& value) {
    if (overlay_only.size() < 8 &&
        base_index.Lookup(value) == kInvalidValueId) {
      overlay_only.push_back(value);
    }
  });
  ASSERT_FALSE(overlay_only.empty());

  // Queue a burst of in-flight extractions, append the overlay, and chase
  // with a reload so the generation swap lands under live traffic.
  int next_id = 1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(daemon.WriteLine(ExtractionRequestLine(next_id++, 32, i % 8)));
  }
  ASSERT_TRUE(shardbuild::AppendOverlay(dir, delta).ok());
  ASSERT_TRUE(daemon.WriteLine("{\"id\":9000,\"cmd\":\"corpus_reload\"}"));
  for (int i = 0; i < 8; ++i) {
    const std::string line = daemon.NextLine();
    const auto response = ParseJson(line);
    ASSERT_TRUE(response.ok()) << line;
    EXPECT_TRUE((*response)["ok"].AsBool(false))
        << "in-flight request failed across sharded reload: " << line;
  }
  const std::string ack_line = daemon.NextLine();
  const auto ack = ParseJson(ack_line);
  ASSERT_TRUE(ack.ok()) << ack_line;
  ASSERT_TRUE((*ack)["ok"].AsBool(false)) << ack_line;
  EXPECT_EQ((*ack)["format"].AsString(), "sharded-v2") << ack_line;
  EXPECT_EQ((*ack)["generation"].AsNumber(0), 2) << ack_line;

  // O(delta): all four base shard mappings were adopted, only the overlay
  // was mapped fresh; the value universe grew by the delta.
  EXPECT_EQ(VarzGauge(port, "corpus.overlays"), 1);
  EXPECT_EQ(VarzGauge(port, "corpus.parts_reused"), 4);
  EXPECT_GT(VarzGauge(port, "corpus.values"), base_values);

  // Queries over overlay-only values run against the new generation. The
  // daemon pipelines extraction responses, so a standalone request is chased
  // with a control command whose Flush(0) pushes the response out.
  ASSERT_TRUE(daemon.WriteLine(CustomRequestLine(next_id++, overlay_only)));
  ASSERT_TRUE(daemon.WriteLine("{\"cmd\":\"metrics\"}"));
  const std::string overlay_line = daemon.NextLine();
  const auto overlay_response = ParseJson(overlay_line);
  ASSERT_TRUE(overlay_response.ok()) << overlay_line;
  EXPECT_TRUE((*overlay_response)["ok"].AsBool(false)) << overlay_line;
  daemon.NextLine();  // metrics payload

  // A corrupted manifest must be rejected at open: the reload fails, the
  // generation holds, and the old sharded corpus keeps serving.
  const std::string manifest_path = dir + "/MANIFEST.tgrs";
  auto manifest_bytes = ReadFileToString(manifest_path);
  ASSERT_TRUE(manifest_bytes.ok());
  {
    std::string tampered = manifest_bytes.value();
    tampered[20] = static_cast<char>(tampered[20] ^ 0x5a);
    ASSERT_TRUE(AtomicWriteFile(manifest_path, tampered).ok());
  }
  ASSERT_TRUE(daemon.WriteLine("{\"id\":9100,\"cmd\":\"corpus_reload\"}"));
  const std::string bad_line = daemon.NextLine();
  const auto bad = ParseJson(bad_line);
  ASSERT_TRUE(bad.ok()) << bad_line;
  EXPECT_FALSE((*bad)["ok"].AsBool(true)) << bad_line;
  EXPECT_EQ((*bad)["generation"].AsNumber(0), 2) << bad_line;
  ASSERT_TRUE(daemon.WriteLine(ExtractionRequestLine(next_id++, 16, 0)));
  ASSERT_TRUE(daemon.WriteLine("{\"cmd\":\"metrics\"}"));
  const std::string after_line = daemon.NextLine();
  const auto after = ParseJson(after_line);
  ASSERT_TRUE(after.ok()) << after_line;
  EXPECT_TRUE((*after)["ok"].AsBool(false))
      << "old generation stopped serving after failed reload: " << after_line;
  daemon.NextLine();  // metrics payload
  ASSERT_TRUE(AtomicWriteFile(manifest_path, manifest_bytes.value()).ok());

  // Compaction folds the overlay into new shard files; SIGHUP picks the new
  // manifest up out-of-band. Nothing is reusable (every shard was rewritten)
  // and the overlay count returns to zero — same value universe.
  ASSERT_TRUE(shardbuild::Compact(dir).ok());
  ASSERT_EQ(::kill(daemon.pid(), SIGHUP), 0);
  bool reloaded = false;
  for (int poll = 0; poll < 100 && !reloaded; ++poll) {
    if (VarzGauge(port, "corpus.generation") >= 3) {
      reloaded = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  EXPECT_TRUE(reloaded) << "SIGHUP did not reload the compacted manifest";
  EXPECT_EQ(VarzGauge(port, "corpus.overlays"), 0);
  EXPECT_EQ(VarzGauge(port, "corpus.parts_reused"), 0);
  EXPECT_EQ(VarzGauge(port, "corpus.shards"), 4);

  // Overlay-only values survived compaction.
  ASSERT_TRUE(daemon.WriteLine(CustomRequestLine(next_id++, overlay_only)));
  ASSERT_TRUE(daemon.WriteLine("{\"cmd\":\"metrics\"}"));
  const std::string compacted_line = daemon.NextLine();
  const auto compacted = ParseJson(compacted_line);
  ASSERT_TRUE(compacted.ok()) << compacted_line;
  EXPECT_TRUE((*compacted)["ok"].AsBool(false)) << compacted_line;
  daemon.NextLine();  // metrics payload

  ASSERT_TRUE(daemon.WriteLine("{\"cmd\":\"quit\"}"));
  daemon.CloseStdin();
  EXPECT_EQ(daemon.Wait(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace tegra
