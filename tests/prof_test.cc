// Unit tests for tegra::prof — the sampling CPU profiler, histogram
// exemplars, the wide-event access log and the runtime-stats collector.
//
// The profiler tests are deliberately conservative about *what* they assert:
// SIGPROF fires on consumed CPU time, so each test burns CPU on purpose and
// asserts that samples with non-empty stacks arrive, not that any particular
// frame is hottest (symbol names depend on inlining decisions). The e2e test
// (serve_prof_e2e_test) asserts tegra frames appear under real load.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "prof/profiler.h"
#include "prof/runtime_stats.h"
#include "prof/wide_event.h"
#include "service/metrics.h"
#include "service/serve_json.h"
#include "trace/prometheus.h"
#include "trace/trace.h"

namespace tegra {
namespace prof {
namespace {

// ---- wide events -----------------------------------------------------------

WideEvent SampleEvent() {
  WideEvent event;
  event.request_id = 42;
  event.trace_id = 7;
  event.endpoint = "/v1/extract";
  event.outcome = "ok";
  event.http_status = 200;
  event.cache_hit = true;
  event.corpus_generation = 3;
  event.queue_seconds = 0.001;
  event.extract_seconds = 0.010;
  event.total_seconds = 0.012;
  event.sp_score = 0.85;
  event.bytes_in = 120;
  event.bytes_out = 480;
  return event;
}

TEST(WideEventTest, ToJsonRoundTripsThroughParser) {
  const WideEvent event = SampleEvent();
  const auto parsed = serve::ParseJson(event.ToJson());
  ASSERT_TRUE(parsed.ok()) << event.ToJson();
  const serve::JsonValue& v = *parsed;
  EXPECT_EQ(v["request_id"].AsNumber(0), 42);
  EXPECT_EQ(v["trace_id"].AsNumber(0), 7);
  EXPECT_EQ(v["endpoint"].AsString(), "/v1/extract");
  EXPECT_EQ(v["outcome"].AsString(), "ok");
  EXPECT_EQ(v["status"].AsNumber(0), 200);
  EXPECT_TRUE(v["cache_hit"].AsBool(false));
  EXPECT_FALSE(v["batch"].AsBool(true));
  EXPECT_EQ(v["corpus_generation"].AsNumber(0), 3);
  EXPECT_NEAR(v["total_ms"].AsNumber(0), 12.0, 1e-9);
  EXPECT_EQ(v["bytes_out"].AsNumber(0), 480);
}

TEST(WideEventTest, ToJsonEscapesStrings) {
  WideEvent event = SampleEvent();
  event.outcome = "bad\"quote\nnewline";
  const auto parsed = serve::ParseJson(event.ToJson());
  ASSERT_TRUE(parsed.ok()) << event.ToJson();
  EXPECT_EQ((*parsed)["outcome"].AsString(), "bad\"quote\nnewline");
}

TEST(WideEventLogTest, TailSamplingKeepsErrorsAndSlowRequests) {
  WideEventLog log;
  WideEventLog::Options options;
  options.sample = 0.0;  // Drop every ordinary request...
  options.slow_ms = 100.0;
  log.SetSink(stderr, options);

  WideEvent ordinary = SampleEvent();
  EXPECT_FALSE(log.WouldKeep(ordinary));

  WideEvent error = SampleEvent();
  error.http_status = 503;
  error.outcome = "rejected";
  EXPECT_TRUE(log.WouldKeep(error));  // ...but never an error...

  WideEvent failed = SampleEvent();
  failed.outcome = "failed";
  EXPECT_TRUE(log.WouldKeep(failed));

  WideEvent slow = SampleEvent();
  slow.total_seconds = 0.250;
  EXPECT_TRUE(log.WouldKeep(slow));  // ...or a slow request.
}

TEST(WideEventLogTest, SampleOneKeepsEverything) {
  WideEventLog log;
  WideEventLog::Options options;
  options.sample = 1.0;
  log.SetSink(stderr, options);
  for (uint64_t id = 1; id <= 100; ++id) {
    WideEvent event = SampleEvent();
    event.request_id = id;
    EXPECT_TRUE(log.WouldKeep(event));
  }
}

TEST(WideEventLogTest, FractionalSamplingIsDeterministicPerRequestId) {
  WideEventLog log;
  WideEventLog::Options options;
  options.sample = 0.5;
  options.slow_ms = 1e9;  // Nothing qualifies as slow.
  log.SetSink(stderr, options);
  int kept = 0;
  for (uint64_t id = 1; id <= 1000; ++id) {
    WideEvent event = SampleEvent();
    event.request_id = id;
    event.total_seconds = 0;
    const bool keep = log.WouldKeep(event);
    // Deterministic: the same id always decides the same way.
    EXPECT_EQ(keep, log.WouldKeep(event));
    if (keep) ++kept;
  }
  // Mixing is good enough that 50% +- 10% holds over 1000 ids.
  EXPECT_GT(kept, 400);
  EXPECT_LT(kept, 600);
}

TEST(WideEventLogTest, RecordWritesOneLinePerKeptEvent) {
  const std::string path = testing::TempDir() + "wide_event_test_" +
                           std::to_string(::getpid()) + ".jsonl";
  {
    WideEventLog log;
    WideEventLog::Options options;
    options.sample = 1.0;
    ASSERT_TRUE(log.Open(path, options).ok());
    ASSERT_TRUE(log.enabled());
    for (uint64_t id = 1; id <= 5; ++id) {
      WideEvent event = SampleEvent();
      event.request_id = id;
      EXPECT_TRUE(log.Record(event));
    }
    EXPECT_EQ(log.written(), 5u);
    log.Flush();
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    contents.append(chunk, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  int lines = 0;
  for (const char c : contents) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5);
  // Every line parses back as a JSON object.
  size_t start = 0, pos;
  while ((pos = contents.find('\n', start)) != std::string::npos) {
    const std::string line = contents.substr(start, pos - start);
    start = pos + 1;
    EXPECT_TRUE(serve::ParseJson(line).ok()) << line;
  }
}

TEST(WideEventLogTest, RecordWithoutSinkDropsSilently) {
  WideEventLog log;
  EXPECT_FALSE(log.enabled());
  EXPECT_FALSE(log.Record(SampleEvent()));
  EXPECT_EQ(log.written(), 0u);
}

// ---- histogram exemplars ---------------------------------------------------

bool FixedExemplarSource(uint64_t* trace_id, uint64_t* request_id) {
  *trace_id = 1234;
  *request_id = 5678;
  return true;
}

class ExemplarSourceGuard {
 public:
  ~ExemplarSourceGuard() { Histogram::SetExemplarSource(nullptr); }
};

TEST(ExemplarTest, ObservationRecordsExemplarNextToItsBucket) {
  ExemplarSourceGuard guard;
  MetricsRegistry registry;
  Histogram* hist =
      registry.GetHistogram("test.latency", {0.01, 0.1, 1.0});
  Histogram::SetExemplarSource(&FixedExemplarSource);
  hist->Observe(0.05);  // Second bucket (0.01, 0.1].

  const MetricsSnapshot snap = registry.Snapshot();
  const auto it = snap.histograms.find("test.latency");
  ASSERT_NE(it, snap.histograms.end());
  const HistogramSnapshot& h = it->second;
  ASSERT_EQ(h.exemplars.size(), h.bucket_counts.size());
  ASSERT_GE(h.exemplars.size(), 2u);
  EXPECT_EQ(h.exemplars[1].trace_id, 1234u);
  EXPECT_EQ(h.exemplars[1].request_id, 5678u);
  EXPECT_NEAR(h.exemplars[1].value, 0.05, 1e-12);
  // The untouched buckets carry no exemplar.
  EXPECT_EQ(h.exemplars[0].trace_id, 0u);
}

TEST(ExemplarTest, NoSourceMeansNoExemplars) {
  ExemplarSourceGuard guard;
  Histogram::SetExemplarSource(nullptr);
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.latency", {0.01, 0.1, 1.0});
  hist->Observe(0.05);
  const MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot& h = snap.histograms.at("test.latency");
  for (const Exemplar& ex : h.exemplars) {
    EXPECT_EQ(ex.trace_id, 0u);
  }
}

TEST(ExemplarTest, OpenMetricsExpositionCarriesExemplars) {
  ExemplarSourceGuard guard;
  MetricsRegistry registry;
  registry.GetCounter("test.requests_total")->Increment();
  Histogram* hist = registry.GetHistogram("test.latency", {0.01, 0.1, 1.0});
  Histogram::SetExemplarSource(&FixedExemplarSource);
  hist->Observe(0.05);

  const std::string text = trace::ToOpenMetricsText(registry.Snapshot());
  // Counter families get exactly one _total suffix.
  EXPECT_NE(text.find("tegra_test_requests_total 1"), std::string::npos)
      << text;
  EXPECT_EQ(text.find("_total_total"), std::string::npos) << text;
  // The exemplar rides the bucket line in OpenMetrics syntax, decimal ids.
  EXPECT_NE(text.find("# {trace_id=\"1234\",request_id=\"5678\"} 0.05"),
            std::string::npos)
      << text;
  // OpenMetrics requires the EOF trailer.
  EXPECT_NE(text.find("# EOF\n"), std::string::npos);
}

TEST(ExemplarTest, InstalledSourceReadsTraceContextAndRequestId) {
  ExemplarSourceGuard guard;
  InstallExemplarSource();
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.latency", {0.01, 0.1, 1.0});

  if (trace::kCompiledIn) {
    trace::Tracer::Global().SetEnabled(true);
    ScopedRequestId request_scope(99);
    TEGRA_TRACE_CONTEXT(ctx, "prof.test");
    hist->Observe(0.05);
    const MetricsSnapshot snap = registry.Snapshot();
    const HistogramSnapshot& h = snap.histograms.at("test.latency");
    EXPECT_EQ(h.exemplars[1].trace_id, ctx.trace_id());
    EXPECT_EQ(h.exemplars[1].request_id, 99u);
  } else {
    // Spans compiled out: no context installs itself, so the source finds
    // no trace id and exemplars never fire — the documented interaction.
    ScopedRequestId request_scope(99);
    hist->Observe(0.05);
    const MetricsSnapshot snap = registry.Snapshot();
    const HistogramSnapshot& h = snap.histograms.at("test.latency");
    for (const Exemplar& ex : h.exemplars) {
      EXPECT_EQ(ex.trace_id, 0u);
    }
  }
}

// ---- request-id scope ------------------------------------------------------

TEST(ScopedRequestIdTest, NestsAndRestores) {
  EXPECT_EQ(CurrentRequestId(), 0u);
  {
    ScopedRequestId outer(10);
    EXPECT_EQ(CurrentRequestId(), 10u);
    {
      ScopedRequestId inner(20);
      EXPECT_EQ(CurrentRequestId(), 20u);
    }
    EXPECT_EQ(CurrentRequestId(), 10u);
  }
  EXPECT_EQ(CurrentRequestId(), 0u);
}

// ---- the sampling profiler -------------------------------------------------

/// Burns CPU until `stop` is raised; the noinline + volatile sink keep the
/// loop from being optimized into nothing.
__attribute__((noinline)) void BurnCpu(const std::atomic<bool>& stop) {
  volatile double sink = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    for (int i = 1; i < 1000; ++i) sink = sink + 1.0 / i;
  }
}

TEST(CpuProfilerTest, CaptureSeesSamplesFromBusyRegisteredThread) {
  std::atomic<bool> stop{false};
  std::thread burner([&stop] {
    EnsureThreadRegistered("burner");
    BurnCpu(stop);
  });

  Result<Profile> profile = CpuProfiler::Global().Capture(0.5);
  stop.store(true);
  burner.join();

  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  const Profile& p = profile.value();
  EXPECT_GT(p.total_samples, 0u);
  EXPECT_FALSE(p.folded.empty());
  // Folded output renders one "stack count" line per entry.
  const std::string folded = p.ToFolded();
  EXPECT_FALSE(folded.empty());
  EXPECT_NE(folded.find(' '), std::string::npos);
  // At least one sampled stack has real depth (a ';'-joined chain), proving
  // the frame-pointer walk went past the leaf.
  bool has_chain = false;
  for (const auto& [stack, count] : p.folded) {
    if (stack.find(';') != std::string::npos && count > 0) has_chain = true;
  }
  EXPECT_TRUE(has_chain) << folded;
}

TEST(CpuProfilerTest, StartIsIdempotentAndStopDisarms) {
  CpuProfiler& profiler = CpuProfiler::Global();
  ASSERT_TRUE(profiler.Start(99).ok());
  EXPECT_TRUE(profiler.running());
  EXPECT_EQ(profiler.hz(), 99);
  EXPECT_TRUE(profiler.Start(50).ok());  // Idempotent: keeps running at 99.
  EXPECT_EQ(profiler.hz(), 99);
  profiler.Stop();
  EXPECT_FALSE(profiler.running());
}

TEST(CpuProfilerTest, ThreadRegistrationIsIdempotentAndNamed) {
  EnsureThreadRegistered("prof-test-main");
  EnsureThreadRegistered("prof-test-main");  // No second slot.
  const std::vector<RegisteredThread> threads = RegisteredThreads();
  int matches = 0;
  for (const RegisteredThread& t : threads) {
    if (t.name == "prof-test-main") {
      ++matches;
      EXPECT_GT(t.tid, 0);
    }
  }
  EXPECT_EQ(matches, 1);
}

TEST(CpuProfilerTest, ThreadPoolStartHookRegistersWorkers) {
  std::atomic<int> hook_calls{0};
  ThreadPool::SetThreadStartHook([&hook_calls](size_t) {
    ++hook_calls;
  });
  {
    ThreadPool pool(3);
    pool.ParallelFor(8, [](size_t) {});
  }
  ThreadPool::SetThreadStartHook(nullptr);
  EXPECT_EQ(hook_calls.load(), 3);
}

// ---- runtime stats ---------------------------------------------------------

TEST(RuntimeStatsTest, SampleOncePopulatesProcessGauges) {
  MetricsRegistry registry;
  RuntimeStatsCollector collector(&registry);
  collector.SampleOnce();
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_GT(snap.gauges.at("process.rss_bytes"), 0.0);
  EXPECT_GT(snap.gauges.at("process.vsz_bytes"), 0.0);
  EXPECT_GE(snap.gauges.at("process.threads"), 1.0);
  EXPECT_GT(snap.gauges.at("process.open_fds"), 0.0);
  EXPECT_GE(snap.gauges.at("process.cpu_user_seconds"), 0.0);
}

TEST(RuntimeStatsTest, RegisteredThreadsGetPerThreadCpuGauges) {
  EnsureThreadRegistered("prof-test-main");
  MetricsRegistry registry;
  RuntimeStatsCollector collector(&registry);
  collector.SampleOnce();
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_NE(snap.gauges.find("process.thread.prof-test-main.cpu_seconds"),
            snap.gauges.end());
}

TEST(RuntimeStatsTest, StartStopIsCleanAndIdempotent) {
  MetricsRegistry registry;
  RuntimeStatsCollector collector(&registry, /*period_seconds=*/0.05);
  collector.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  collector.Stop();
  collector.Stop();  // Idempotent.
  EXPECT_GT(registry.Snapshot().gauges.at("process.rss_bytes"), 0.0);
}

}  // namespace
}  // namespace prof
}  // namespace tegra
