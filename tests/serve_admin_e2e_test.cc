// End-to-end test of the tegra_serve admin plane: starts the real daemon
// binary with `--admin-port 0`, discovers the ephemeral port from the
// {"event":"admin_ready","port":N} stdout line, fetches every zPage over real
// sockets, drives extractions through stdin and checks they appear in a real
// Prometheus scrape, and saturates the (deliberately tiny) queue to observe
// /readyz flip to 503.
//
// The binary path is injected at compile time via TEGRA_SERVE_BINARY.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve_process_util.h"
#include "service/http_admin.h"
#include "service/serve_json.h"

namespace tegra {
namespace serve {
namespace {

TEST(ServeAdminE2eTest, FullAdminPlaneAgainstRealDaemon) {
  ServeProcess daemon;
  // Tiny corpus for startup speed; one worker and a 2-deep queue so the
  // saturation phase below can actually fill it.
  ASSERT_TRUE(daemon.Start({"--build-corpus", "web:300:7", "--admin-port", "0",
                            "--workers", "1", "--queue-depth", "2",
                            "--slowlog", "4"}));

  // 1. The first stdout line announces the admin plane and its bound port.
  const std::string ready_line = daemon.NextLine();
  ASSERT_FALSE(ready_line.empty()) << "daemon produced no output";
  const auto ready = ParseJson(ready_line);
  ASSERT_TRUE(ready.ok()) << ready_line;
  ASSERT_EQ((*ready)["event"].AsString(), "admin_ready") << ready_line;
  const int port = static_cast<int>((*ready)["port"].AsNumber(0));
  ASSERT_GT(port, 0) << ready_line;

  // 2. Drive one extraction through stdin so the telemetry has content. The
  //    daemon pipelines responses, so chase the request with a control
  //    command — control commands flush everything in flight first.
  ASSERT_TRUE(daemon.WriteLine(ExtractionRequestLine(1, 8, 0)));
  ASSERT_TRUE(daemon.WriteLine("{\"cmd\":\"metrics\"}"));
  const std::string response_line = daemon.NextLine();
  const auto response = ParseJson(response_line);
  ASSERT_TRUE(response.ok()) << response_line;
  EXPECT_TRUE((*response)["ok"].AsBool(false)) << response_line;
  (void)daemon.NextLine();  // Discard the metrics snapshot used as a flush.

  // 3. Every endpoint answers 200 with plausible content.
  struct Endpoint {
    const char* path;
    const char* must_contain;
  };
  const std::vector<Endpoint> endpoints = {
      {"/", "tegra admin"},
      {"/healthz", "ok"},
      {"/readyz", "ok"},
      {"/metrics", "tegra_service_requests_total"},
      {"/statusz", "extraction quality"},
      {"/tracez", "traceEvents"},
      {"/slowlogz", "trace"},
      {"/varz", "\"build\""},
  };
  for (const Endpoint& endpoint : endpoints) {
    const auto result = HttpGet(port, endpoint.path);
    ASSERT_TRUE(result.ok())
        << endpoint.path << ": " << result.status().ToString();
    EXPECT_EQ(result->status, 200) << endpoint.path << "\n" << result->body;
    EXPECT_NE(result->body.find(endpoint.must_contain), std::string::npos)
        << endpoint.path << " missing \"" << endpoint.must_contain << "\":\n"
        << result->body;
  }

  // 4. The quality histogram and build info appear in a real scrape, with
  //    the extraction from step 2 counted.
  const auto scrape = HttpGet(port, "/metrics");
  ASSERT_TRUE(scrape.ok());
  const auto scrape_ct = scrape->headers.find("content-type");
  ASSERT_NE(scrape_ct, scrape->headers.end());
  EXPECT_NE(scrape_ct->second.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(scrape->body.find("tegra_extract_sp_score_bucket"),
            std::string::npos);
  EXPECT_NE(scrape->body.find("tegra_extract_sp_score_count 1"),
            std::string::npos)
      << scrape->body;
  EXPECT_NE(scrape->body.find("tegra_build_info{git_sha="),
            std::string::npos);

  // 5. /slowlogz?format=json carries the per-request sp score.
  const auto slowlog = HttpGet(port, "/slowlogz?format=json");
  ASSERT_TRUE(slowlog.ok());
  const auto slow_json = ParseJson(slowlog->body);
  ASSERT_TRUE(slow_json.ok()) << slowlog->body;
  const auto& records = (*slow_json)["records"].AsArray();
  ASSERT_GE(records.size(), 1u);
  EXPECT_GE(records[0]["sp"].AsNumber(-1), 0) << slowlog->body;

  // 6. Saturate the queue (1 worker, depth 2, large bypass-cache requests)
  //    and watch /readyz flip to 503. Refill between polls so the window is
  //    not a one-shot race; bounded so a fast machine cannot hang the test.
  bool saw_unready = false;
  std::string last_readyz;
  int id = 100;
  for (int round = 0; round < 40 && !saw_unready; ++round) {
    for (int i = 0; i < 6; ++i) {
      const int request_id = id++;
      ASSERT_TRUE(daemon.WriteLine(
          ExtractionRequestLine(request_id, 64, request_id % 8)));
    }
    for (int poll = 0; poll < 20 && !saw_unready; ++poll) {
      const auto readyz = HttpGet(port, "/readyz");
      if (!readyz.ok()) break;
      last_readyz = readyz->body;
      if (readyz->status == 503) {
        saw_unready = true;
        EXPECT_NE(readyz->body.find("queue saturated"), std::string::npos)
            << readyz->body;
      }
    }
  }
  EXPECT_TRUE(saw_unready)
      << "never observed 503 from /readyz; last body: " << last_readyz;

  // Drain whatever the saturation phase produced, then quit cleanly.
  ASSERT_TRUE(daemon.WriteLine("{\"cmd\":\"quit\"}"));
  daemon.CloseStdin();
  EXPECT_EQ(daemon.Wait(), 0);

  // 7. After shutdown the admin plane is gone: probes fail at connect.
  const auto after = HttpGet(port, "/healthz", /*timeout_ms=*/1000);
  EXPECT_FALSE(after.ok() && after->status == 200);
}

TEST(ServeAdminE2eTest, AdminDisabledByDefault) {
  ServeProcess daemon;
  ASSERT_TRUE(daemon.Start({"--build-corpus", "web:200:3"}));
  // No admin plane: the first output must be a response to our request, not
  // an admin_ready event. Quit immediately — EOF of the control channel
  // flushes the pipelined response before the daemon exits.
  ASSERT_TRUE(daemon.WriteLine(ExtractionRequestLine(1, 6, 0)));
  ASSERT_TRUE(daemon.WriteLine("{\"cmd\":\"quit\"}"));
  daemon.CloseStdin();
  const std::string first = daemon.NextLine();
  const auto parsed = ParseJson(first);
  ASSERT_TRUE(parsed.ok()) << first;
  EXPECT_FALSE((*parsed).Has("event")) << first;
  EXPECT_TRUE((*parsed)["ok"].AsBool(false)) << first;
  EXPECT_EQ(daemon.Wait(), 0);
}

TEST(ServeAdminE2eTest, UnwritableDumpFileCountsAsBadRequest) {
  ServeProcess daemon;
  ASSERT_TRUE(daemon.Start({"--build-corpus", "web:200:3", "--admin-port",
                            "0"}));
  ASSERT_FALSE(daemon.NextLine().empty());  // admin_ready

  // A control command with a valid cmd but an unwritable file path must fail
  // with a structured IOError...
  ASSERT_TRUE(daemon.WriteLine(
      "{\"id\":9,\"cmd\":\"metrics_prom\",\"file\":"
      "\"/nonexistent-dir/metrics.prom\"}"));
  const std::string line = daemon.NextLine();
  const auto parsed = ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_FALSE((*parsed)["ok"].AsBool(true)) << line;
  EXPECT_EQ((*parsed)["code"].AsString(), "IOError") << line;
  EXPECT_EQ((*parsed)["id"].AsNumber(0), 9) << line;

  // ...and the failure must be visible in serve.bad_request.
  ASSERT_TRUE(daemon.WriteLine("{\"cmd\":\"metrics\"}"));
  const std::string metrics_line = daemon.NextLine();
  const auto metrics = ParseJson(metrics_line);
  ASSERT_TRUE(metrics.ok()) << metrics_line;
  EXPECT_EQ((*metrics)["counters"]["serve.bad_request"].AsNumber(0), 1)
      << metrics_line;

  ASSERT_TRUE(daemon.WriteLine("{\"cmd\":\"quit\"}"));
  daemon.CloseStdin();
  EXPECT_EQ(daemon.Wait(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace tegra
