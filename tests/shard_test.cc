// tegra::shardbuild + store::ShardedCorpus: sharded construction, delta
// overlays, compaction, O(delta) reload reuse and the bit-identity
// guarantee against monolithic snapshots.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "common/thread_pool.h"
#include "corpus/column_index.h"
#include "shard/shard_builder.h"
#include "store/corpus_loader.h"
#include "store/corpus_manager.h"
#include "store/manifest.h"
#include "store/sharded_corpus.h"
#include "store/snapshot_writer.h"
#include "synth/corpus_gen.h"

namespace tegra {
namespace {

std::vector<Table> MakeTables(size_t n, uint64_t seed) {
  synth::TableGenerator gen(synth::CorpusProfile::kWeb, seed);
  return gen.GenerateMany(n);
}

ColumnIndex BuildMonolithic(const std::vector<std::vector<Table>>& batches) {
  ColumnIndex index;
  for (const auto& batch : batches) {
    for (const Table& t : batch) index.AddTable(t);
  }
  index.Finalize();
  return index;
}

std::string NewTempDir(const std::string& tag) {
  static int counter = 0;
  const std::string dir = ::testing::TempDir() + "shard_test_" +
                          std::to_string(::getpid()) + "_" + tag + "_" +
                          std::to_string(counter++);
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  return dir;
}

/// Builds `tables` into `dir` as a sharded corpus and returns build stats.
shardbuild::ShardBuildStats BuildSharded(const std::string& dir,
                                         const std::vector<Table>& tables,
                                         uint32_t num_shards,
                                         size_t budget_bytes) {
  shardbuild::ShardBuildOptions options;
  options.num_shards = num_shards;
  options.memory_budget_bytes = budget_bytes;
  shardbuild::ShardBuilder builder(dir, options);
  for (const Table& t : tables) builder.AddTable(t);
  auto stats = builder.Finish();
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return stats.ok() ? stats.value() : shardbuild::ShardBuildStats{};
}

std::shared_ptr<const store::ShardedCorpus> OpenSharded(
    const std::string& dir,
    const std::shared_ptr<const CorpusView>& previous = nullptr) {
  auto opened =
      store::ShardedCorpus::Open(store::ManifestPathFor(dir), previous);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return opened.ok() ? opened.value() : nullptr;
}

void FlipByte(const std::string& path, size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte ^= 0x5a;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

// ---- construction ------------------------------------------------------

TEST(ShardBuilderTest, DigestMatchesMonolithicSnapshot) {
  const auto tables = MakeTables(150, 1);
  const ColumnIndex mono = BuildMonolithic({tables});

  const std::string dir = NewTempDir("digest");
  const auto stats = BuildSharded(dir, tables, 4, 256 << 20);
  EXPECT_EQ(stats.num_shards, 4u);
  EXPECT_EQ(stats.total_columns, mono.TotalColumns());

  const auto sharded = OpenSharded(dir);
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->NumValues(), mono.NumValues());
  EXPECT_EQ(sharded->TotalColumns(), mono.TotalColumns());

  const store::CorpusDigest a = store::ComputeCorpusDigest(mono);
  const store::CorpusDigest b = store::ComputeCorpusDigest(*sharded);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.num_values, b.num_values);
  EXPECT_EQ(a.total_columns, b.total_columns);
}

TEST(ShardBuilderTest, EveryStatisticMatchesTheHeapIndex) {
  const auto tables = MakeTables(80, 7);
  const ColumnIndex mono = BuildMonolithic({tables});
  const std::string dir = NewTempDir("stats");
  BuildSharded(dir, tables, 3, 256 << 20);
  const auto sharded = OpenSharded(dir);
  ASSERT_NE(sharded, nullptr);

  // Exhaustive |C(s)| + Lookup check, and a sampled pairwise check of
  // co-occurrence and union counts (ids differ between representations;
  // the statistics must not).
  std::vector<std::string> values;
  mono.ForEachValue([&](ValueId id, const std::string& value) {
    const ValueId sharded_id = sharded->Lookup(value);
    ASSERT_NE(sharded_id, kInvalidValueId) << value;
    EXPECT_EQ(sharded->ColumnCount(sharded_id), mono.ColumnCount(id));
    EXPECT_EQ(sharded->ValueString(sharded_id), value);
    values.push_back(value);
  });
  for (size_t i = 0; i < values.size(); i += 37) {
    for (size_t j = i; j < values.size(); j += 101) {
      const ValueId ma = mono.Lookup(values[i]);
      const ValueId mb = mono.Lookup(values[j]);
      const ValueId sa = sharded->Lookup(values[i]);
      const ValueId sb = sharded->Lookup(values[j]);
      EXPECT_EQ(sharded->CoOccurrenceCount(sa, sb),
                mono.CoOccurrenceCount(ma, mb));
      EXPECT_EQ(sharded->UnionCount(sa, sb), mono.UnionCount(ma, mb));
    }
  }
  EXPECT_EQ(sharded->Lookup("value that never occurs anywhere"),
            kInvalidValueId);
}

TEST(ShardBuilderTest, SpillingProducesByteIdenticalShards) {
  const auto tables = MakeTables(60, 3);
  const std::string big = NewTempDir("big_budget");
  const std::string tiny = NewTempDir("tiny_budget");
  BuildSharded(big, tables, 4, 256 << 20);
  // Budget 0: every column triggers a spill — maximal external-memory path.
  const auto stats = BuildSharded(tiny, tables, 4, 0);
  EXPECT_GT(stats.spill_epochs, 1u);
  EXPECT_GT(stats.run_files, 4u);

  for (uint32_t s = 0; s < 4; ++s) {
    const std::string name = store::ShardFileName(s, 4, 1);
    auto a = ReadFileToString(big + "/" + name);
    auto b = ReadFileToString(tiny + "/" + name);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value(), b.value()) << name;
  }
  // Run files are cleaned up after a successful build.
  const auto manifest = store::LoadManifest(tiny + "/MANIFEST.tgrs");
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->entries.size(), 4u);
}

TEST(ShardBuilderTest, EmptyCorpusBuildsAndOpens) {
  const std::string dir = NewTempDir("empty");
  BuildSharded(dir, {}, 2, 1 << 20);
  const auto sharded = OpenSharded(dir);
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->NumValues(), 0u);
  EXPECT_EQ(sharded->TotalColumns(), 0u);
  EXPECT_EQ(sharded->Lookup("anything"), kInvalidValueId);
  EXPECT_TRUE(sharded->Verify().ok());
}

// ---- overlays ----------------------------------------------------------

TEST(ShardedOverlayTest, OverlayQueriesMatchMonolithicRebuild) {
  const auto base_tables = MakeTables(120, 1);
  const auto delta_tables = MakeTables(30, 2);
  // Ground truth: everything ingested into one heap index, in order.
  const ColumnIndex mono = BuildMonolithic({base_tables, delta_tables});

  const std::string dir = NewTempDir("overlay");
  BuildSharded(dir, base_tables, 4, 256 << 20);
  const ColumnIndex delta = BuildMonolithic({delta_tables});
  ASSERT_TRUE(shardbuild::AppendOverlay(dir, delta).ok());

  const auto sharded = OpenSharded(dir);
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->num_overlays(), 1u);
  EXPECT_EQ(sharded->NumValues(), mono.NumValues());
  EXPECT_EQ(sharded->TotalColumns(), mono.TotalColumns());

  const store::CorpusDigest a = store::ComputeCorpusDigest(mono);
  const store::CorpusDigest b = store::ComputeCorpusDigest(*sharded);
  EXPECT_EQ(a.digest, b.digest);

  // Values that exist only in the delta must resolve; values in both parts
  // must sum their counts exactly as the monolithic rebuild does.
  size_t overlay_only = 0;
  size_t in_both = 0;
  mono.ForEachValue([&](ValueId id, const std::string& value) {
    const ValueId sid = sharded->Lookup(value);
    ASSERT_NE(sid, kInvalidValueId) << value;
    EXPECT_EQ(sharded->ColumnCount(sid), mono.ColumnCount(id)) << value;
  });
  const ColumnIndex base_only = BuildMonolithic({base_tables});
  delta.ForEachValue([&](ValueId, const std::string& value) {
    if (base_only.Lookup(value) == kInvalidValueId) {
      ++overlay_only;
    } else {
      ++in_both;
    }
  });
  EXPECT_GT(overlay_only, 0u);
  EXPECT_GT(in_both, 0u);
}

TEST(ShardedOverlayTest, SecondOverlayStacksAndStillMatches) {
  const auto base_tables = MakeTables(90, 1);
  const auto delta1 = MakeTables(20, 2);
  const auto delta2 = MakeTables(20, 5);
  const ColumnIndex mono = BuildMonolithic({base_tables, delta1, delta2});

  const std::string dir = NewTempDir("overlay2");
  BuildSharded(dir, base_tables, 4, 256 << 20);
  ASSERT_TRUE(shardbuild::AppendOverlay(dir, BuildMonolithic({delta1})).ok());
  ASSERT_TRUE(shardbuild::AppendOverlay(dir, BuildMonolithic({delta2})).ok());

  const auto sharded = OpenSharded(dir);
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->num_overlays(), 2u);
  EXPECT_EQ(store::ComputeCorpusDigest(*sharded).digest,
            store::ComputeCorpusDigest(mono).digest);
}

TEST(ShardedOverlayTest, CompactFoldsOverlaysAndPrunesOldFiles) {
  const auto base_tables = MakeTables(100, 1);
  const auto delta_tables = MakeTables(25, 2);
  const std::string dir = NewTempDir("compact");
  BuildSharded(dir, base_tables, 4, 256 << 20);
  ASSERT_TRUE(
      shardbuild::AppendOverlay(dir, BuildMonolithic({delta_tables})).ok());

  const auto before = OpenSharded(dir);
  ASSERT_NE(before, nullptr);
  const uint64_t digest_before = store::ComputeCorpusDigest(*before).digest;
  std::vector<std::string> old_files;
  for (const auto& e : before->manifest().entries) old_files.push_back(e.name);

  ThreadPool pool(2);
  ASSERT_TRUE(shardbuild::Compact(dir, &pool).ok());

  const auto after = OpenSharded(dir);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->num_overlays(), 0u);
  EXPECT_EQ(after->manifest().sequence, before->manifest().sequence + 1);
  EXPECT_EQ(store::ComputeCorpusDigest(*after).digest, digest_before);
  EXPECT_TRUE(after->Verify().ok());
  for (const std::string& name : old_files) {
    EXPECT_FALSE(ReadFileToString(dir + "/" + name).ok()) << name;
  }
  // Compacting an overlay-free directory is a no-op.
  ASSERT_TRUE(shardbuild::Compact(dir, &pool).ok());
  EXPECT_EQ(OpenSharded(dir)->manifest().sequence,
            after->manifest().sequence);
}

// ---- O(delta) reload ----------------------------------------------------

TEST(ShardedReloadTest, UnchangedPartsAreReusedAcrossOpen) {
  const auto tables = MakeTables(80, 1);
  const std::string dir = NewTempDir("reuse");
  BuildSharded(dir, tables, 4, 256 << 20);

  const auto gen1 = OpenSharded(dir);
  ASSERT_NE(gen1, nullptr);
  EXPECT_EQ(gen1->reused_parts(), 0u);

  // Overlay-only change: all four base shard mappings must be adopted.
  ASSERT_TRUE(
      shardbuild::AppendOverlay(dir, BuildMonolithic({MakeTables(10, 9)}))
          .ok());
  const auto gen2 = OpenSharded(dir, gen1);
  ASSERT_NE(gen2, nullptr);
  EXPECT_EQ(gen2->reused_parts(), 4u);
  EXPECT_EQ(gen2->num_overlays(), 1u);

  // No change at all: every part (4 shards + 1 overlay) is adopted.
  const auto gen3 = OpenSharded(dir, gen2);
  ASSERT_NE(gen3, nullptr);
  EXPECT_EQ(gen3->reused_parts(), 5u);

  // Compaction rewrites the shards: nothing can be reused.
  ASSERT_TRUE(shardbuild::Compact(dir).ok());
  const auto gen4 = OpenSharded(dir, gen3);
  ASSERT_NE(gen4, nullptr);
  EXPECT_EQ(gen4->reused_parts(), 0u);
}

TEST(ShardedReloadTest, CorpusManagerReloadReusesMappings) {
  const auto tables = MakeTables(60, 1);
  const std::string dir = NewTempDir("manager");
  BuildSharded(dir, tables, 2, 256 << 20);

  auto loaded = store::OpenCorpus(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  store::CorpusManager manager(loaded->view, dir, {});
  ASSERT_TRUE(
      shardbuild::AppendOverlay(dir, BuildMonolithic({MakeTables(8, 4)}))
          .ok());
  ASSERT_TRUE(manager.Reload().ok());
  const auto* sharded =
      dynamic_cast<const store::ShardedCorpus*>(manager.Current().get());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->reused_parts(), 2u);
  EXPECT_EQ(sharded->num_overlays(), 1u);
  EXPECT_EQ(manager.Generation(), 2u);
}

// ---- corruption --------------------------------------------------------

TEST(ShardedCorruptionTest, ManifestByteFlipIsDetectedAtOpen) {
  const auto tables = MakeTables(40, 1);
  const std::string dir = NewTempDir("corrupt_manifest");
  BuildSharded(dir, tables, 2, 256 << 20);
  FlipByte(dir + "/MANIFEST.tgrs", 24);
  auto opened = store::ShardedCorpus::Open(dir + "/MANIFEST.tgrs");
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

TEST(ShardedCorruptionTest, ShardBodyByteFlipIsDetectedByVerify) {
  const auto tables = MakeTables(40, 1);
  const std::string dir = NewTempDir("corrupt_shard");
  BuildSharded(dir, tables, 2, 256 << 20);
  const std::string shard_path = dir + "/" + store::ShardFileName(0, 2, 1);
  auto size = FileSize(shard_path);
  ASSERT_TRUE(size.ok());
  FlipByte(shard_path, size.value() / 2);  // Past the header: deep damage.
  const Status verified = store::VerifyCorpusFile(dir);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.code(), StatusCode::kCorruption);
}

TEST(ShardedCorruptionTest, TruncatedOverlayFailsIdentityCheck) {
  const auto tables = MakeTables(40, 1);
  const std::string dir = NewTempDir("corrupt_overlay");
  BuildSharded(dir, tables, 2, 256 << 20);
  ASSERT_TRUE(
      shardbuild::AppendOverlay(dir, BuildMonolithic({MakeTables(6, 2)}))
          .ok());
  const auto manifest = store::LoadManifest(dir + "/MANIFEST.tgrs");
  ASSERT_TRUE(manifest.ok());
  const std::string overlay_path = dir + "/" + manifest->entries.back().name;
  auto bytes = ReadFileToString(overlay_path);
  ASSERT_TRUE(bytes.ok());
  std::ofstream out(overlay_path, std::ios::binary | std::ios::trunc);
  out.write(bytes->data(), static_cast<std::streamsize>(bytes->size() / 2));
  out.close();
  auto opened = store::ShardedCorpus::Open(dir + "/MANIFEST.tgrs");
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

// ---- manifest codec ----------------------------------------------------

TEST(ManifestTest, RoundTripsAndRejectsTampering) {
  store::ShardManifest manifest;
  manifest.num_shards = 2;
  manifest.sequence = 7;
  manifest.total_base_columns = 123;
  for (uint32_t s = 0; s < 2; ++s) {
    store::ManifestEntry e;
    e.kind = store::ManifestEntry::kShard;
    e.name = store::ShardFileName(s, 2, 7);
    e.file_bytes = 1000 + s;
    e.header_crc = 0xabc0 + s;
    e.num_values = 50 + s;
    e.num_columns = 123;
    manifest.entries.push_back(e);
  }
  store::ManifestEntry overlay;
  overlay.kind = store::ManifestEntry::kOverlay;
  overlay.name = store::OverlayFileName(0, 8);
  overlay.file_bytes = 222;
  overlay.header_crc = 0xdead;
  overlay.num_values = 9;
  overlay.num_columns = 4;
  manifest.entries.push_back(overlay);
  manifest.sequence = 8;

  const std::string encoded = store::EncodeManifest(manifest);
  auto decoded = store::DecodeManifest(encoded, "test");
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_shards, 2u);
  EXPECT_EQ(decoded->sequence, 8u);
  EXPECT_EQ(decoded->total_base_columns, 123u);
  ASSERT_EQ(decoded->entries.size(), 3u);
  EXPECT_EQ(decoded->num_overlays(), 1u);
  EXPECT_EQ(decoded->TotalColumns(), 127u);
  EXPECT_EQ(decoded->entries[2].name, overlay.name);

  // Any flipped byte must be caught by the trailing CRC.
  for (size_t off = 0; off < encoded.size(); off += 7) {
    std::string tampered = encoded;
    tampered[off] = static_cast<char>(tampered[off] ^ 0x40);
    EXPECT_FALSE(store::DecodeManifest(tampered, "test").ok()) << off;
  }
  // Truncation too.
  EXPECT_FALSE(
      store::DecodeManifest(encoded.substr(0, encoded.size() - 5), "test")
          .ok());
}

}  // namespace
}  // namespace tegra
