// Tests for the generalized column-mapping precision/recall of §5.1.5,
// including the paper's worked example (Tables 2 and 3: P = R = 4/6).

#include <gtest/gtest.h>

#include "eval/mapping_metric.h"

namespace tegra::eval {
namespace {

Table T(std::vector<std::vector<std::string>> rows) {
  return Table(std::move(rows));
}

TEST(FMeasureTest, Basics) {
  EXPECT_DOUBLE_EQ(FMeasure(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(FMeasure(0.0, 0.0), 0.0);
  EXPECT_NEAR(FMeasure(0.5, 1.0), 2.0 / 3.0, 1e-12);
}

TEST(MappingMetricTest, PerfectSegmentationScoresOne) {
  Table t = T({{"Boston", "42"}, {"Toronto", "17"}});
  PrfScore s = ScoreTable(t, t);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(MappingMetricTest, PaperWorkedExample) {
  // Table 2 (ground truth): first | last | "Mon day".
  Table truth = T({{"Jenny", "Scott", "Jan 12"}, {"John", "Smith", "Nov 20"}});
  // Table 3 (output): "first last" | Mon | day.
  Table output = T({{"Jenny Scott", "Jan", "12"}, {"John Smith", "Nov", "20"}});
  PrfScore s = ScoreTable(truth, output);
  EXPECT_NEAR(s.precision, 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(s.recall, 4.0 / 6.0, 1e-12);
}

TEST(MappingMetricTest, ConsistentOverSegmentationKeepsRecall) {
  Table truth = T({{"New York City", "7"}, {"Los Angeles", "9"}});
  Table over = T({{"New York", "City", "7"}, {"Los", "Angeles", "9"}});
  // Column 1 of truth maps to columns 1-2 of output (both rows match when
  // concatenated); column 2 maps 1-1.
  PrfScore s = ScoreTable(truth, over);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_NEAR(s.precision, 4.0 / 6.0, 1e-12);
}

TEST(MappingMetricTest, ConsistentUnderSegmentationKeepsPrecision) {
  Table truth = T({{"Boston", "MA", "42"}, {"Austin", "TX", "17"}});
  Table under = T({{"Boston MA", "42"}, {"Austin TX", "17"}});
  PrfScore s = ScoreTable(truth, under);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_NEAR(s.recall, 4.0 / 6.0, 1e-12);
}

TEST(MappingMetricTest, MisalignedRowsGetNoCredit) {
  Table truth = T({{"Boston", "42"}, {"Toronto", "17"}});
  Table wrong = T({{"Boston 42", ""}, {"", "Toronto 17"}});
  // Inconsistent merge direction: each mapping can match at most one row.
  PrfScore s = ScoreTable(truth, wrong);
  EXPECT_LT(s.f1, 0.7);
  EXPECT_GT(s.f1, 0.0);  // Partial credit for single-row matches.
}

TEST(MappingMetricTest, CompletelyWrongIsZero) {
  Table truth = T({{"Boston", "42"}});
  Table junk = T({{"x", "y"}});
  PrfScore s = ScoreTable(truth, junk);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
}

TEST(MappingMetricTest, NullCellsCompareAsEmpty) {
  Table truth = T({{"Toronto", "", "Canada"}, {"Boston", "MA", "USA"}});
  PrfScore s = ScoreTable(truth, truth);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(MappingMetricTest, ScoresAreBounded) {
  // Property: P, R in [0, 1] for assorted shapes.
  const Table truth = T({{"a", "b", "c"}, {"d", "e", "f"}});
  const Table shapes[] = {
      T({{"a b c"}, {"d e f"}}),
      T({{"a", "b", "c", ""}, {"d", "e", "f", ""}}),
      T({{"a b", "c"}, {"d", "e f"}}),
      T({{"", "", ""}, {"", "", ""}}),
  };
  for (const Table& out : shapes) {
    PrfScore s = ScoreTable(truth, out);
    EXPECT_GE(s.precision, 0.0);
    EXPECT_LE(s.precision, 1.0);
    EXPECT_GE(s.recall, 0.0);
    EXPECT_LE(s.recall, 1.0);
  }
}

TEST(MappingMetricTest, BestMappingValueSymmetricRoles) {
  // |M| is defined over non-overlapping mappings in both tables; swapping
  // the argument order swaps P and R.
  Table a = T({{"x y", "1"}, {"p q", "2"}});
  Table b = T({{"x", "y", "1"}, {"p", "q", "2"}});
  PrfScore ab = ScoreTable(a, b);
  PrfScore ba = ScoreTable(b, a);
  EXPECT_DOUBLE_EQ(ab.precision, ba.recall);
  EXPECT_DOUBLE_EQ(ab.recall, ba.precision);
}

TEST(MacroAverageTest, AveragesComponentWise) {
  PrfScore a{1.0, 0.5, FMeasure(1.0, 0.5)};
  PrfScore b{0.5, 1.0, FMeasure(0.5, 1.0)};
  PrfScore avg = MacroAverage({a, b});
  EXPECT_DOUBLE_EQ(avg.precision, 0.75);
  EXPECT_DOUBLE_EQ(avg.recall, 0.75);
  EXPECT_TRUE(MacroAverage({}).f1 == 0.0);
}

}  // namespace
}  // namespace tegra::eval
