// Tests for the segmentation model, boundary enumeration, CellsToBounds and
// the ListContext working state.

#include <gtest/gtest.h>

#include <set>

#include "core/list_context.h"
#include "core/segmentation.h"

namespace tegra {
namespace {

// ---- bounds ------------------------------------------------------------------

TEST(BoundsTest, Validity) {
  EXPECT_TRUE(IsValidBounds({0, 2, 3, 5}, 5, 3));
  EXPECT_TRUE(IsValidBounds({0, 0, 5, 5}, 5, 3));  // Null columns allowed.
  EXPECT_FALSE(IsValidBounds({0, 3, 2, 5}, 5, 3));  // Decreasing.
  EXPECT_FALSE(IsValidBounds({0, 2, 5}, 5, 3));     // Wrong column count.
  EXPECT_FALSE(IsValidBounds({1, 2, 3, 5}, 5, 3));  // Does not start at 0.
  EXPECT_FALSE(IsValidBounds({0, 2, 3, 4}, 5, 3));  // Does not end at |l|.
  EXPECT_EQ(NumColumns({0, 2, 5}), 2);
}

TEST(BoundsToCellsTest, JoinsTokenRanges) {
  const std::vector<std::string> tokens = {"Los", "Angeles", "California",
                                           "United", "States"};
  EXPECT_EQ(BoundsToCells(tokens, {0, 2, 3, 5}),
            (std::vector<std::string>{"Los Angeles", "California",
                                      "United States"}));
  EXPECT_EQ(BoundsToCells(tokens, {0, 0, 5, 5}),
            (std::vector<std::string>{
                "", "Los Angeles California United States", ""}));
}

TEST(EnumerateBoundsTest, CountsMatchCombinatorics) {
  // m-column segmentations of n tokens with nulls allowed = C(n + m - 1,
  // m - 1) (stars and bars).
  EXPECT_EQ(EnumerateBounds(3, 2).size(), 4u);   // C(4,1).
  EXPECT_EQ(EnumerateBounds(4, 3).size(), 15u);  // C(6,2).
  EXPECT_EQ(EnumerateBounds(0, 2).size(), 1u);   // All-null.
  EXPECT_EQ(EnumerateBounds(5, 1).size(), 1u);   // Whole line.
}

TEST(EnumerateBoundsTest, AllResultsValidAndDistinct) {
  const auto all = EnumerateBounds(5, 3);
  std::set<Bounds> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), all.size());
  for (const Bounds& b : all) {
    EXPECT_TRUE(IsValidBounds(b, 5, 3));
  }
}

TEST(EnumerateBoundsTest, WidthCapFiltersWideColumns) {
  const auto capped = EnumerateBounds(6, 2, /*max_width=*/3);
  for (const Bounds& b : capped) {
    for (size_t k = 0; k + 1 < b.size(); ++k) {
      EXPECT_LE(b[k + 1] - b[k], 3u);
    }
  }
  // 6 tokens into 2 columns of width <= 3: only the even split.
  EXPECT_EQ(capped.size(), 1u);
}

TEST(EnumerateBoundsTest, InfeasibleCapYieldsNothing) {
  EXPECT_TRUE(EnumerateBounds(10, 2, 3).empty());
}

// ---- CellsToBounds ------------------------------------------------------------

TEST(CellsToBoundsTest, RoundTripsSegmentations) {
  Tokenizer tok;
  const std::vector<std::string> tokens = {"a", "b", "c", "d"};
  Result<Bounds> r = CellsToBounds(tokens, {"a b", "", "c d"}, tok);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (Bounds{0, 2, 2, 4}));
}

TEST(CellsToBoundsTest, RejectsMismatchedCells) {
  Tokenizer tok;
  const std::vector<std::string> tokens = {"a", "b"};
  EXPECT_FALSE(CellsToBounds(tokens, {"a", "x"}, tok).ok());
  EXPECT_FALSE(CellsToBounds(tokens, {"a"}, tok).ok());       // Undercovers.
  EXPECT_FALSE(CellsToBounds(tokens, {"a", "b", "c"}, tok).ok());
}

// ---- ListContext ---------------------------------------------------------------

TEST(ListContextTest, BasicAccessors) {
  ListContext ctx({{"a", "b", "c"}, {"x"}}, nullptr);
  EXPECT_EQ(ctx.num_lines(), 2u);
  EXPECT_EQ(ctx.line_length(0), 3u);
  EXPECT_EQ(ctx.line_length(1), 1u);
  EXPECT_EQ(ctx.max_line_length(), 3u);
}

TEST(ListContextTest, CellJoinsTokens) {
  ListContext ctx({{"New", "York", "City"}}, nullptr);
  ctx.EnsureWidth(0, 3);
  EXPECT_EQ(ctx.Cell(0, 0, 2).text, "New York");
  EXPECT_EQ(ctx.Cell(0, 0, 3).text, "New York City");
  EXPECT_EQ(ctx.Cell(0, 2, 1).text, "City");
  EXPECT_EQ(ctx.Cell(0, 0, 2).token_count, 2u);
}

TEST(ListContextTest, EnsureWidthIsIncremental) {
  ListContext ctx({{"a", "b", "c", "d"}}, nullptr);
  ctx.EnsureWidth(0, 1);
  EXPECT_EQ(ctx.Cell(0, 1, 1).text, "b");
  ctx.EnsureWidth(0, 3);
  EXPECT_EQ(ctx.Cell(0, 1, 3).text, "b c d");
  // Re-ensuring a smaller width is a no-op.
  ctx.EnsureWidth(0, 2);
  EXPECT_EQ(ctx.Cell(0, 1, 3).text, "b c d");
}

TEST(ListContextTest, EffectiveWidthRelaxesForFeasibility) {
  ListContext ctx({{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}},
                  nullptr);
  // Cap 3 but 10 tokens into 2 columns needs width 5.
  EXPECT_EQ(ctx.EffectiveWidth(0, 2, 3), 5u);
  // Cap 3 suffices for 4 columns.
  EXPECT_EQ(ctx.EffectiveWidth(0, 4, 3), 3u);
  // Cap 0 = unbounded.
  EXPECT_EQ(ctx.EffectiveWidth(0, 2, 0), 10u);
}

TEST(ListContextTest, CellsForMaterializesNulls) {
  ListContext ctx({{"a", "b"}}, nullptr);
  ctx.EnsureWidth(0, 2);
  auto cells = ctx.CellsFor(0, {0, 0, 2, 2});
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_TRUE(cells[0]->is_null());
  EXPECT_EQ(cells[1]->text, "a b");
  EXPECT_TRUE(cells[2]->is_null());
}

TEST(ListContextTest, FixedBoundsAndWeights) {
  ListContext ctx({{"a", "b"}, {"c", "d"}, {"e", "f"}, {"g", "h"}}, nullptr);
  EXPECT_DOUBLE_EQ(ctx.PairWeight(0, 1), 1.0);
  ctx.SetFixedBounds(1, {0, 1, 2});
  EXPECT_TRUE(ctx.has_examples());
  EXPECT_EQ(ctx.num_examples(), 1u);
  // w_ij = n/k = 4/1 for pairs touching the example, 1 otherwise (§4).
  EXPECT_DOUBLE_EQ(ctx.PairWeight(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(ctx.PairWeight(1, 3), 4.0);
  EXPECT_DOUBLE_EQ(ctx.PairWeight(0, 2), 1.0);
  ASSERT_TRUE(ctx.fixed_bounds(1).has_value());
  EXPECT_EQ(*ctx.fixed_bounds(1), (Bounds{0, 1, 2}));
}

TEST(ListContextTest, SetFixedBoundsRegistersCells) {
  ListContext ctx({{"a", "b", "c"}}, nullptr);
  ctx.SetFixedBounds(0, {0, 3, 3});  // Wide first column.
  auto cells = ctx.CellsFor(0, *ctx.fixed_bounds(0));
  EXPECT_EQ(cells[0]->text, "a b c");
}

}  // namespace
}  // namespace tegra
