// Unit tests for tegra::qos — the degradation ladder's hysteresis state
// machine and the per-tenant token-bucket quotas, all on synthetic clocks,
// plus the rung-0 bit-identity guarantee of the per-rung engines.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/tegra.h"
#include "health/timeseries.h"
#include "qos/degradation.h"
#include "qos/rung_engine.h"
#include "qos/rungs.h"
#include "qos/token_bucket.h"

namespace tegra {
namespace qos {
namespace {

DegradationOptions FastLadder() {
  DegradationOptions options;
  options.escalate_pressure = 1.0;
  options.recover_pressure = 0.5;
  options.escalate_hold_seconds = 1.0;
  options.recover_hold_seconds = 2.0;
  return options;
}

QosSignals QueuePressure(double pressure) {
  // target_queue_fraction defaults to 0.5, so queue_fraction = 0.5 * p
  // maps to exactly pressure p.
  QosSignals signals;
  signals.queue_fraction = 0.5 * pressure;
  return signals;
}

TEST(Pressure, IsMaxOfComponents) {
  DegradationController controller(FastLadder(), nullptr);
  QosSignals signals;
  signals.queue_fraction = 0.25;   // /0.5 -> 0.5
  signals.p99_seconds = 3.0;       // /2.0 -> 1.5
  signals.queue_p99_seconds = 0.2; // deadline off -> ignored
  EXPECT_DOUBLE_EQ(controller.Pressure(signals), 1.5);

  signals.deadline_seconds = 0.2;  // budget 0.1s; 0.2/0.1 -> 2.0
  EXPECT_DOUBLE_EQ(controller.Pressure(signals), 2.0);
}

TEST(DegradationController, EscalatesOnlyAfterSustainedPressure) {
  DegradationController controller(FastLadder(), nullptr);
  EXPECT_EQ(controller.Evaluate(QueuePressure(2.0), 0.0), 0);  // timer starts
  EXPECT_EQ(controller.Evaluate(QueuePressure(2.0), 0.5), 0);  // hold not met
  EXPECT_EQ(controller.Evaluate(QueuePressure(2.0), 1.0), 1);  // 1s held
  // The hold restarts per rung: no cascade to the floor in one tick.
  EXPECT_EQ(controller.Evaluate(QueuePressure(2.0), 1.5), 1);
  EXPECT_EQ(controller.Evaluate(QueuePressure(2.0), 2.0), 2);
}

TEST(DegradationController, DeadBandHoldsWithoutFlapping) {
  DegradationController controller(FastLadder(), nullptr);
  controller.Evaluate(QueuePressure(2.0), 0.0);
  ASSERT_EQ(controller.Evaluate(QueuePressure(2.0), 1.0), 1);
  // Pressure oscillating inside the dead band (0.5 .. 1.0): the rung must
  // hold, and every dead-band sample resets both hold timers.
  for (int i = 0; i < 20; ++i) {
    const double pressure = (i % 2 == 0) ? 0.6 : 0.95;
    EXPECT_EQ(controller.Evaluate(QueuePressure(pressure), 1.0 + 0.5 * i), 1);
  }
  const auto snapshot = controller.snapshot();
  EXPECT_EQ(snapshot.escalations, 1u);
  EXPECT_EQ(snapshot.recoveries, 0u);
}

TEST(DegradationController, BoundaryOscillationDoesNotFlap) {
  // Alternating one high and one low sample: neither hold window is ever
  // satisfied, so the rung never moves in either direction.
  DegradationController controller(FastLadder(), nullptr);
  for (int i = 0; i < 40; ++i) {
    const double pressure = (i % 2 == 0) ? 1.5 : 0.2;
    EXPECT_EQ(controller.Evaluate(QueuePressure(pressure), 0.5 * i), 0);
  }
  EXPECT_EQ(controller.snapshot().escalations, 0u);
}

TEST(DegradationController, RecoversAfterSustainedCalm) {
  DegradationController controller(FastLadder(), nullptr);
  controller.Evaluate(QueuePressure(2.0), 0.0);
  controller.Evaluate(QueuePressure(2.0), 1.0);
  controller.Evaluate(QueuePressure(2.0), 2.0);
  ASSERT_EQ(controller.rung(), 2);
  EXPECT_EQ(controller.Evaluate(QueuePressure(0.1), 3.0), 2);  // timer starts
  EXPECT_EQ(controller.Evaluate(QueuePressure(0.1), 4.0), 2);  // 1s < 2s hold
  EXPECT_EQ(controller.Evaluate(QueuePressure(0.1), 5.0), 1);  // recovered
  EXPECT_EQ(controller.Evaluate(QueuePressure(0.1), 7.0), 0);  // and again
  const auto snapshot = controller.snapshot();
  EXPECT_EQ(snapshot.escalations, 2u);
  EXPECT_EQ(snapshot.recoveries, 2u);
}

TEST(DegradationController, RespectsMaxRung) {
  DegradationOptions options = FastLadder();
  options.max_rung = 2;
  DegradationController controller(options, nullptr);
  controller.Evaluate(QueuePressure(5.0), 0.0);
  for (int i = 1; i <= 10; ++i) {
    controller.Evaluate(QueuePressure(5.0), static_cast<double>(i));
  }
  EXPECT_EQ(controller.rung(), 2);
}

TEST(DegradationController, AccountsDegradedSeconds) {
  DegradationController controller(FastLadder(), nullptr);
  controller.Evaluate(QueuePressure(2.0), 0.0);
  controller.Evaluate(QueuePressure(2.0), 1.0);  // rung 1 from t=1
  controller.Evaluate(QueuePressure(0.7), 4.0);  // 3s at rung > 0
  EXPECT_DOUBLE_EQ(controller.snapshot().degraded_seconds, 3.0);
}

TEST(DegradationController, EvaluateFromStoreUsesQueueSignal) {
  // An empty store contributes zero latency signals; the queue fraction
  // alone must still drive the ladder.
  health::TimeSeriesStore store;
  DegradationController controller(FastLadder(), nullptr);
  EXPECT_EQ(controller.EvaluateFromStore(store, 1.0, 0, 0.0), 0);
  EXPECT_EQ(controller.EvaluateFromStore(store, 1.0, 0, 1.0), 1);
}

TEST(TokenBucket, BurstThenRefill) {
  TokenBucket bucket(/*rate=*/2.0, /*burst=*/4.0);
  // The full burst is available up front.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_FALSE(bucket.TryAcquire(0.0));
  EXPECT_DOUBLE_EQ(bucket.RetryAfterSeconds(0.0), 0.5);  // 1 token / 2 per s
  // 1 second refills 2 tokens.
  EXPECT_TRUE(bucket.TryAcquire(1.0));
  EXPECT_TRUE(bucket.TryAcquire(1.0));
  EXPECT_FALSE(bucket.TryAcquire(1.0));
}

TEST(TokenBucket, RefillCapsAtBurst) {
  TokenBucket bucket(/*rate=*/10.0, /*burst=*/3.0);
  EXPECT_TRUE(bucket.TryAcquire(0.0, 3.0));
  // A long idle stretch must not bank more than `burst`.
  EXPECT_DOUBLE_EQ(bucket.tokens(100.0), 3.0);
  EXPECT_FALSE(bucket.TryAcquire(100.0, 4.0));
  EXPECT_TRUE(bucket.TryAcquire(100.0, 3.0));
}

TEST(TenantQuotas, DisabledAdmitsEverything) {
  TenantQuotas quotas(QuotaOptions{}, nullptr);
  EXPECT_FALSE(quotas.enabled());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(quotas.Check("heavy", 0.0).allowed);
  }
}

TEST(TenantQuotas, IsolatesTenants) {
  QuotaOptions options;
  options.rate = 1.0;
  options.burst = 2.0;
  TenantQuotas quotas(options, nullptr);
  // Tenant a exhausts its own bucket...
  EXPECT_TRUE(quotas.Check("a", 0.0).allowed);
  EXPECT_TRUE(quotas.Check("a", 0.0).allowed);
  const auto denied = quotas.Check("a", 0.0);
  EXPECT_FALSE(denied.allowed);
  EXPECT_GT(denied.retry_after_seconds, 0.0);
  // ...while tenant b is untouched.
  EXPECT_TRUE(quotas.Check("b", 0.0).allowed);

  const auto snapshot = quotas.Snapshot(0.0);
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].tenant, "a");
  EXPECT_EQ(snapshot[0].admitted, 2u);
  EXPECT_EQ(snapshot[0].rejected, 1u);
  EXPECT_EQ(snapshot[1].tenant, "b");
  EXPECT_EQ(snapshot[1].rejected, 0u);
}

TEST(TenantQuotas, EmptyTenantMapsToAnonymousBucket) {
  QuotaOptions options;
  options.rate = 1.0;
  options.burst = 1.0;
  TenantQuotas quotas(options, nullptr);
  EXPECT_TRUE(quotas.Check("", 0.0).allowed);
  EXPECT_FALSE(quotas.Check("", 0.0).allowed);
  const auto snapshot = quotas.Snapshot(0.0);
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].tenant, kAnonymousTenant);
}

TEST(TenantQuotas, BatchChargesPerItem) {
  QuotaOptions options;
  options.rate = 1.0;
  options.burst = 5.0;
  TenantQuotas quotas(options, nullptr);
  EXPECT_TRUE(quotas.Check("batcher", 0.0, /*tokens=*/4).allowed);
  EXPECT_FALSE(quotas.Check("batcher", 0.0, /*tokens=*/4).allowed);
  EXPECT_TRUE(quotas.Check("batcher", 0.0, /*tokens=*/1).allowed);
}

TEST(Rungs, NamesAndClamp) {
  EXPECT_STREQ(RungName(0), "full");
  EXPECT_STREQ(RungName(kNumRungs - 1), "baseline");
  EXPECT_STREQ(RungName(99), "invalid");
  EXPECT_EQ(ClampRung(-3), 0);
  EXPECT_EQ(ClampRung(99), kNumRungs - 1);
}

TEST(Rungs, RungZeroIsIdentity) {
  TegraOptions base;
  base.max_columns = 7;
  base.distance.alpha = 0.5;
  const TegraOptions rung0 = OptionsForRung(base, 0);
  EXPECT_EQ(rung0.max_columns, base.max_columns);
  EXPECT_EQ(rung0.max_anchor_nodes, base.max_anchor_nodes);
  EXPECT_EQ(rung0.slgr_width_cap, base.slgr_width_cap);
  EXPECT_EQ(rung0.max_sp_pairs, base.max_sp_pairs);
  EXPECT_DOUBLE_EQ(rung0.distance.alpha, base.distance.alpha);
}

TEST(Rungs, HigherRungsTightenBudgets) {
  TegraOptions base;
  const TegraOptions rung1 = OptionsForRung(base, 1);
  EXPECT_GT(rung1.max_anchor_nodes, 0u);  // anytime budget switched on
  const TegraOptions rung2 = OptionsForRung(base, 2);
  EXPECT_GT(rung2.slgr_width_cap, 0u);
  EXPECT_GT(rung2.max_sp_pairs, 0u);
  const TegraOptions rung3 = OptionsForRung(base, 3);
  EXPECT_DOUBLE_EQ(rung3.distance.alpha, 1.0);  // syntactic-only
}

std::vector<std::string> CityLines() {
  return {
      "Boston Massachusetts 645,966",
      "Worcester Massachusetts 182,544",
      "Providence Rhode Island 178,042",
      "Hartford Connecticut 124,775",
      "Springfield Massachusetts 153,060",
  };
}

TEST(RungEngine, RungZeroMatchesDirectExtractor) {
  TegraOptions base;
  RungEngine engine(/*stats=*/nullptr, base);
  TegraExtractor direct(/*stats=*/nullptr, base);

  const auto via_engine = engine.Extract(0, CityLines(), 3);
  const auto via_direct = direct.ExtractWithColumns(CityLines(), 3);
  ASSERT_TRUE(via_engine.ok()) << via_engine.status().ToString();
  ASSERT_TRUE(via_direct.ok()) << via_direct.status().ToString();
  EXPECT_TRUE(via_engine.value().table == via_direct.value().table);
  EXPECT_DOUBLE_EQ(via_engine.value().sp, via_direct.value().sp);
}

TEST(RungEngine, EveryRungExtracts) {
  TegraOptions base;
  RungEngine engine(/*stats=*/nullptr, base);
  for (int rung = 0; rung < kNumRungs; ++rung) {
    const auto result = engine.Extract(rung, CityLines(), 3);
    ASSERT_TRUE(result.ok()) << "rung " << rung << ": "
                             << result.status().ToString();
    EXPECT_EQ(result.value().num_columns, 3) << "rung " << rung;
    EXPECT_EQ(result.value().table.NumRows(), CityLines().size())
        << "rung " << rung;
  }
}

}  // namespace
}  // namespace qos
}  // namespace tegra
