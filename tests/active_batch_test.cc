// Tests for the active example-selection extension and the batch extractor.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#include "core/active.h"
#include "core/batch.h"
#include "service/metrics.h"
#include "synth/corpus_gen.h"
#include "synth/list_gen.h"
#include "corpus/column_index.h"

namespace tegra {
namespace {

class ActiveBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    index_ = new ColumnIndex(synth::BuildBackgroundIndex(
        synth::CorpusProfile::kWeb, /*num_tables=*/1200, /*seed=*/303));
    stats_ = new CorpusStats(index_);
  }
  static void TearDownTestSuite() {
    delete stats_;
    delete index_;
  }
  static ColumnIndex* index_;
  static CorpusStats* stats_;
};

ColumnIndex* ActiveBatchTest::index_ = nullptr;
CorpusStats* ActiveBatchTest::stats_ = nullptr;

TEST_F(ActiveBatchTest, RanksEveryUnlabeledRow) {
  const std::vector<std::string> lines = {
      "Boston Massachusetts 645,966",
      "Worcester Massachusetts 182,544",
      "Providence Rhode Island 178,042",
      "Hartford Connecticut 124,775",
  };
  TegraExtractor extractor(stats_);
  auto result = extractor.Extract(lines);
  ASSERT_TRUE(result.ok());
  auto ranked = RankRowsByUncertainty(extractor, lines, *result);
  ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();
  EXPECT_EQ(ranked->size(), 4u);
  // Sorted most-uncertain first.
  for (size_t i = 1; i < ranked->size(); ++i) {
    EXPECT_GE((*ranked)[i - 1].mean_distance, (*ranked)[i].mean_distance);
  }
}

TEST_F(ActiveBatchTest, ExcludesLabeledRows) {
  const std::vector<std::string> lines = {
      "Boston Massachusetts 1", "Chicago Illinois 2", "Houston Texas 3"};
  TegraExtractor extractor(stats_);
  auto result = extractor.Extract(lines);
  ASSERT_TRUE(result.ok());
  auto ranked = RankRowsByUncertainty(extractor, lines, *result, {1});
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked->size(), 2u);
  for (const auto& r : *ranked) EXPECT_NE(r.line_index, 1u);
}

TEST_F(ActiveBatchTest, SuggestsTheOddRowOut) {
  // Rows 0-3 are clean city/state/number; row 4 is a misfit the aligner
  // struggles with — the suggestion should be row 4.
  const std::vector<std::string> lines = {
      "Boston Massachusetts 645,966",
      "Worcester Massachusetts 182,544",
      "Providence Rhode Island 178,042",
      "Hartford Connecticut 124,775",
      "zqx wvv kjh ploo mnwte",
  };
  TegraExtractor extractor(stats_);
  auto suggestion = SuggestNextExample(extractor, lines, {});
  ASSERT_TRUE(suggestion.ok()) << suggestion.status().ToString();
  EXPECT_EQ(*suggestion, 4u);
}

TEST_F(ActiveBatchTest, SuggestNextExampleExhausts) {
  const std::vector<std::string> lines = {"a 1", "b 2"};
  TegraExtractor extractor(stats_);
  std::vector<SegmentationExample> examples = {
      {0, {"a", "1"}},
      {1, {"b", "2"}},
  };
  auto suggestion = SuggestNextExample(extractor, lines, examples);
  EXPECT_FALSE(suggestion.ok());
  EXPECT_TRUE(suggestion.status().IsNotFound());
}

TEST_F(ActiveBatchTest, ActiveLoopConverges) {
  // Labeling the suggested row (from ground truth) must never crash and
  // should keep or improve the extraction.
  auto instances = synth::MakeBenchmark(synth::CorpusProfile::kWeb, 1, 42);
  const auto& inst = instances[0];
  TegraExtractor extractor(stats_);
  std::vector<SegmentationExample> examples;
  for (int round = 0; round < 2; ++round) {
    auto suggestion = SuggestNextExample(extractor, inst.lines, examples);
    ASSERT_TRUE(suggestion.ok());
    SegmentationExample ex;
    ex.line_index = *suggestion;
    ex.cells = inst.ground_truth.Row(*suggestion);
    examples.push_back(std::move(ex));
  }
  auto result = extractor.ExtractWithExamples(inst.lines, examples);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumCols(), inst.ground_truth.NumCols());
}

// ---- batch ----------------------------------------------------------------

TEST_F(ActiveBatchTest, BatchMatchesSequentialResults) {
  auto instances = synth::MakeBenchmark(synth::CorpusProfile::kWeb, 6, 77);
  std::vector<std::vector<std::string>> lists;
  for (const auto& inst : instances) lists.push_back(inst.lines);

  TegraExtractor extractor(stats_);
  BatchOptions opts;
  opts.num_threads = 4;
  BatchExtractor batch(&extractor, opts);
  const auto items = batch.ExtractAll(lists);
  ASSERT_EQ(items.size(), lists.size());
  for (size_t i = 0; i < lists.size(); ++i) {
    ASSERT_EQ(items[i].disposition, BatchItem::Disposition::kExtracted);
    auto sequential = extractor.Extract(lists[i]);
    ASSERT_TRUE(sequential.ok());
    EXPECT_EQ(items[i].result.table.rows(), sequential->table.rows())
        << "list " << i;
  }
}

TEST_F(ActiveBatchTest, BatchFiltersShortAndLowQualityLists) {
  std::vector<std::vector<std::string>> lists = {
      {"only one row"},
      {"Boston Massachusetts 1", "Chicago Illinois 2", "Houston Texas 3",
       "Phoenix Arizona 4", "Seattle Washington 5"},
  };
  TegraExtractor extractor(stats_);
  BatchOptions opts;
  opts.num_threads = 1;
  opts.min_rows = 2;
  BatchExtractor batch(&extractor, opts);
  const auto items = batch.ExtractAll(lists);
  EXPECT_EQ(items[0].disposition, BatchItem::Disposition::kFiltered);
  EXPECT_EQ(items[1].disposition, BatchItem::Disposition::kExtracted);
  EXPECT_EQ(BatchExtractor::Count(items, BatchItem::Disposition::kExtracted),
            1u);
}

TEST_F(ActiveBatchTest, BatchQualityGate) {
  std::vector<std::vector<std::string>> lists = {
      // Incoherent junk should trip a tight objective gate.
      {"zz qq ww", "mm kk jj pp", "aa", "yy tt rr ee ww qq"},
  };
  TegraExtractor extractor(stats_);
  BatchOptions opts;
  opts.num_threads = 1;
  opts.max_per_pair_objective = 0.05;  // Unachievably strict.
  BatchExtractor batch(&extractor, opts);
  const auto items = batch.ExtractAll(lists);
  EXPECT_EQ(items[0].disposition, BatchItem::Disposition::kFiltered);
}

TEST_F(ActiveBatchTest, BatchProgressCallbackFires) {
  auto instances = synth::MakeBenchmark(synth::CorpusProfile::kWeb, 4, 99);
  std::vector<std::vector<std::string>> lists;
  for (const auto& inst : instances) lists.push_back(inst.lines);
  TegraExtractor extractor(stats_);
  BatchExtractor batch(&extractor, {.num_threads = 2});
  std::atomic<size_t> calls{0};
  batch.ExtractAll(lists, [&](size_t done, size_t total) {
    EXPECT_LE(done, total);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 4u);
}

TEST_F(ActiveBatchTest, ProgressCallbackIsThreadSafeUnderManyWorkers) {
  // A counting callback driven from many worker threads at once: every list
  // must be reported exactly once, `done` must be a positive value <= total,
  // and the *final* values seen must cover the full range 1..total (each
  // fetch_add(1)+1 in the extractor is unique).
  auto instances = synth::MakeBenchmark(synth::CorpusProfile::kWeb, 12, 41);
  std::vector<std::vector<std::string>> lists;
  for (const auto& inst : instances) lists.push_back(inst.lines);
  TegraExtractor extractor(stats_);
  BatchExtractor batch(&extractor, {.num_threads = 8});

  std::mutex mu;
  std::vector<size_t> seen_done;
  std::atomic<size_t> bad_totals{0};
  const auto items = batch.ExtractAll(lists, [&](size_t done, size_t total) {
    if (total != lists.size() || done == 0 || done > total) {
      bad_totals.fetch_add(1);
    }
    std::lock_guard<std::mutex> lock(mu);
    seen_done.push_back(done);
  });
  EXPECT_EQ(items.size(), lists.size());
  EXPECT_EQ(bad_totals.load(), 0u);
  ASSERT_EQ(seen_done.size(), lists.size());
  // Every completion rank 1..N appears exactly once.
  std::sort(seen_done.begin(), seen_done.end());
  for (size_t i = 0; i < seen_done.size(); ++i) {
    EXPECT_EQ(seen_done[i], i + 1);
  }
}

TEST_F(ActiveBatchTest, CountAccountsForEveryDispositionMix) {
  // One failing list (empty tokens after min_rows pass is impossible here,
  // so craft: a too-short list -> filtered; junk gated by the objective ->
  // filtered; healthy lists -> extracted).
  auto instances = synth::MakeBenchmark(synth::CorpusProfile::kWeb, 3, 7);
  std::vector<std::vector<std::string>> lists;
  for (const auto& inst : instances) lists.push_back(inst.lines);
  lists.push_back({"lonely row"});                      // filtered: min_rows
  lists.push_back({});                                  // filtered: empty
  lists.push_back({"zz qq ww", "mm kk jj pp", "aa"});   // gated below

  TegraExtractor extractor(stats_);
  BatchOptions opts;
  opts.num_threads = 4;
  opts.min_rows = 2;
  opts.max_per_pair_objective = 0.05;  // Tight gate trips the junk list.
  BatchExtractor batch(&extractor, opts);
  const auto items = batch.ExtractAll(lists);
  ASSERT_EQ(items.size(), lists.size());

  const size_t extracted =
      BatchExtractor::Count(items, BatchItem::Disposition::kExtracted);
  const size_t filtered =
      BatchExtractor::Count(items, BatchItem::Disposition::kFiltered);
  const size_t failed =
      BatchExtractor::Count(items, BatchItem::Disposition::kFailed);
  // Disposition accounting must partition the batch exactly.
  EXPECT_EQ(extracted + filtered + failed, items.size());
  EXPECT_GE(filtered, 2u);  // The short and empty lists at minimum.
  // Count on an empty vector is zero for every disposition.
  EXPECT_EQ(BatchExtractor::Count({}, BatchItem::Disposition::kFailed), 0u);
}

TEST_F(ActiveBatchTest, BatchReportsIntoMetricsRegistry) {
  auto instances = synth::MakeBenchmark(synth::CorpusProfile::kWeb, 5, 13);
  std::vector<std::vector<std::string>> lists;
  for (const auto& inst : instances) lists.push_back(inst.lines);
  lists.push_back({"short"});  // One filtered item.

  MetricsRegistry registry;
  TegraExtractor extractor(stats_);
  BatchOptions opts;
  opts.num_threads = 4;
  opts.metrics = &registry;
  BatchExtractor batch(&extractor, opts);
  const auto items = batch.ExtractAll(lists);

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("batch.lists_total"), lists.size());
  EXPECT_EQ(snap.counters.at("batch.extracted_total"),
            BatchExtractor::Count(items, BatchItem::Disposition::kExtracted));
  EXPECT_EQ(snap.counters.at("batch.filtered_total"),
            BatchExtractor::Count(items, BatchItem::Disposition::kFiltered));
  EXPECT_EQ(snap.counters.at("batch.failed_total"),
            BatchExtractor::Count(items, BatchItem::Disposition::kFailed));
  EXPECT_EQ(snap.histograms.at("batch.extract_seconds").count, lists.size());
}

}  // namespace
}  // namespace tegra
