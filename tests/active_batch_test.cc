// Tests for the active example-selection extension and the batch extractor.

#include <gtest/gtest.h>

#include <atomic>

#include "core/active.h"
#include "core/batch.h"
#include "synth/corpus_gen.h"
#include "synth/list_gen.h"

namespace tegra {
namespace {

class ActiveBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    index_ = new ColumnIndex(synth::BuildBackgroundIndex(
        synth::CorpusProfile::kWeb, /*num_tables=*/1200, /*seed=*/303));
    stats_ = new CorpusStats(index_);
  }
  static void TearDownTestSuite() {
    delete stats_;
    delete index_;
  }
  static ColumnIndex* index_;
  static CorpusStats* stats_;
};

ColumnIndex* ActiveBatchTest::index_ = nullptr;
CorpusStats* ActiveBatchTest::stats_ = nullptr;

TEST_F(ActiveBatchTest, RanksEveryUnlabeledRow) {
  const std::vector<std::string> lines = {
      "Boston Massachusetts 645,966",
      "Worcester Massachusetts 182,544",
      "Providence Rhode Island 178,042",
      "Hartford Connecticut 124,775",
  };
  TegraExtractor extractor(stats_);
  auto result = extractor.Extract(lines);
  ASSERT_TRUE(result.ok());
  auto ranked = RankRowsByUncertainty(extractor, lines, *result);
  ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();
  EXPECT_EQ(ranked->size(), 4u);
  // Sorted most-uncertain first.
  for (size_t i = 1; i < ranked->size(); ++i) {
    EXPECT_GE((*ranked)[i - 1].mean_distance, (*ranked)[i].mean_distance);
  }
}

TEST_F(ActiveBatchTest, ExcludesLabeledRows) {
  const std::vector<std::string> lines = {
      "Boston Massachusetts 1", "Chicago Illinois 2", "Houston Texas 3"};
  TegraExtractor extractor(stats_);
  auto result = extractor.Extract(lines);
  ASSERT_TRUE(result.ok());
  auto ranked = RankRowsByUncertainty(extractor, lines, *result, {1});
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked->size(), 2u);
  for (const auto& r : *ranked) EXPECT_NE(r.line_index, 1u);
}

TEST_F(ActiveBatchTest, SuggestsTheOddRowOut) {
  // Rows 0-3 are clean city/state/number; row 4 is a misfit the aligner
  // struggles with — the suggestion should be row 4.
  const std::vector<std::string> lines = {
      "Boston Massachusetts 645,966",
      "Worcester Massachusetts 182,544",
      "Providence Rhode Island 178,042",
      "Hartford Connecticut 124,775",
      "zqx wvv kjh ploo mnwte",
  };
  TegraExtractor extractor(stats_);
  auto suggestion = SuggestNextExample(extractor, lines, {});
  ASSERT_TRUE(suggestion.ok()) << suggestion.status().ToString();
  EXPECT_EQ(*suggestion, 4u);
}

TEST_F(ActiveBatchTest, SuggestNextExampleExhausts) {
  const std::vector<std::string> lines = {"a 1", "b 2"};
  TegraExtractor extractor(stats_);
  std::vector<SegmentationExample> examples = {
      {0, {"a", "1"}},
      {1, {"b", "2"}},
  };
  auto suggestion = SuggestNextExample(extractor, lines, examples);
  EXPECT_FALSE(suggestion.ok());
  EXPECT_TRUE(suggestion.status().IsNotFound());
}

TEST_F(ActiveBatchTest, ActiveLoopConverges) {
  // Labeling the suggested row (from ground truth) must never crash and
  // should keep or improve the extraction.
  auto instances = synth::MakeBenchmark(synth::CorpusProfile::kWeb, 1, 42);
  const auto& inst = instances[0];
  TegraExtractor extractor(stats_);
  std::vector<SegmentationExample> examples;
  for (int round = 0; round < 2; ++round) {
    auto suggestion = SuggestNextExample(extractor, inst.lines, examples);
    ASSERT_TRUE(suggestion.ok());
    SegmentationExample ex;
    ex.line_index = *suggestion;
    ex.cells = inst.ground_truth.Row(*suggestion);
    examples.push_back(std::move(ex));
  }
  auto result = extractor.ExtractWithExamples(inst.lines, examples);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumCols(), inst.ground_truth.NumCols());
}

// ---- batch ----------------------------------------------------------------

TEST_F(ActiveBatchTest, BatchMatchesSequentialResults) {
  auto instances = synth::MakeBenchmark(synth::CorpusProfile::kWeb, 6, 77);
  std::vector<std::vector<std::string>> lists;
  for (const auto& inst : instances) lists.push_back(inst.lines);

  TegraExtractor extractor(stats_);
  BatchOptions opts;
  opts.num_threads = 4;
  BatchExtractor batch(&extractor, opts);
  const auto items = batch.ExtractAll(lists);
  ASSERT_EQ(items.size(), lists.size());
  for (size_t i = 0; i < lists.size(); ++i) {
    ASSERT_EQ(items[i].disposition, BatchItem::Disposition::kExtracted);
    auto sequential = extractor.Extract(lists[i]);
    ASSERT_TRUE(sequential.ok());
    EXPECT_EQ(items[i].result.table.rows(), sequential->table.rows())
        << "list " << i;
  }
}

TEST_F(ActiveBatchTest, BatchFiltersShortAndLowQualityLists) {
  std::vector<std::vector<std::string>> lists = {
      {"only one row"},
      {"Boston Massachusetts 1", "Chicago Illinois 2", "Houston Texas 3",
       "Phoenix Arizona 4", "Seattle Washington 5"},
  };
  TegraExtractor extractor(stats_);
  BatchOptions opts;
  opts.num_threads = 1;
  opts.min_rows = 2;
  BatchExtractor batch(&extractor, opts);
  const auto items = batch.ExtractAll(lists);
  EXPECT_EQ(items[0].disposition, BatchItem::Disposition::kFiltered);
  EXPECT_EQ(items[1].disposition, BatchItem::Disposition::kExtracted);
  EXPECT_EQ(BatchExtractor::Count(items, BatchItem::Disposition::kExtracted),
            1u);
}

TEST_F(ActiveBatchTest, BatchQualityGate) {
  std::vector<std::vector<std::string>> lists = {
      // Incoherent junk should trip a tight objective gate.
      {"zz qq ww", "mm kk jj pp", "aa", "yy tt rr ee ww qq"},
  };
  TegraExtractor extractor(stats_);
  BatchOptions opts;
  opts.num_threads = 1;
  opts.max_per_pair_objective = 0.05;  // Unachievably strict.
  BatchExtractor batch(&extractor, opts);
  const auto items = batch.ExtractAll(lists);
  EXPECT_EQ(items[0].disposition, BatchItem::Disposition::kFiltered);
}

TEST_F(ActiveBatchTest, BatchProgressCallbackFires) {
  auto instances = synth::MakeBenchmark(synth::CorpusProfile::kWeb, 4, 99);
  std::vector<std::vector<std::string>> lists;
  for (const auto& inst : instances) lists.push_back(inst.lines);
  TegraExtractor extractor(stats_);
  BatchExtractor batch(&extractor, {.num_threads = 2});
  std::atomic<size_t> calls{0};
  batch.ExtractAll(lists, [&](size_t done, size_t total) {
    EXPECT_LE(done, total);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 4u);
}

}  // namespace
}  // namespace tegra
