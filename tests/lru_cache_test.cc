// Tests for the sharded LRU cache that bounds the serving layer's memory.

#include "service/lru_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace tegra {
namespace {

TEST(ShardedLruCacheTest, PutGetRoundTrip) {
  ShardedLruCache<int, std::string> cache(/*capacity=*/8, /*num_shards=*/2);
  EXPECT_FALSE(cache.Get(1).has_value());
  cache.Put(1, "one");
  cache.Put(2, "two");
  ASSERT_TRUE(cache.Get(1).has_value());
  EXPECT_EQ(*cache.Get(1), "one");
  EXPECT_EQ(*cache.Get(2), "two");
  EXPECT_EQ(cache.Size(), 2u);
}

TEST(ShardedLruCacheTest, PutOverwritesExistingKey) {
  ShardedLruCache<int, int> cache(4);
  cache.Put(7, 1);
  cache.Put(7, 2);
  EXPECT_EQ(*cache.Get(7), 2);
  EXPECT_EQ(cache.Size(), 1u);
}

TEST(ShardedLruCacheTest, EvictsLeastRecentlyUsedWithinShard) {
  // Single shard makes the eviction order deterministic.
  ShardedLruCache<int, int> cache(/*capacity=*/3, /*num_shards=*/1);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  // Touch 1 so that 2 becomes the LRU entry.
  EXPECT_TRUE(cache.Get(1).has_value());
  cache.Put(4, 40);  // Evicts 2.
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
  EXPECT_TRUE(cache.Get(4).has_value());
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ShardedLruCacheTest, SizeNeverExceedsCapacityPlusShardRounding) {
  const size_t capacity = 64;
  const size_t shards = 8;
  ShardedLruCache<int, int> cache(capacity, shards);
  for (int i = 0; i < 10000; ++i) cache.Put(i, i);
  // Per-shard budget is ceil(64/8) = 8, so the hard bound is 64 exactly.
  EXPECT_LE(cache.Size(), capacity);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(ShardedLruCacheTest, ZeroCapacityDisablesCaching) {
  ShardedLruCache<int, int> cache(0);
  cache.Put(1, 1);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.Size(), 0u);
  int computes = 0;
  EXPECT_EQ(cache.GetOrCompute(1, [&] {
    ++computes;
    return 42;
  }),
            42);
  EXPECT_EQ(cache.GetOrCompute(1, [&] {
    ++computes;
    return 42;
  }),
            42);
  EXPECT_EQ(computes, 2);  // Every call recomputes.
}

TEST(ShardedLruCacheTest, GetOrComputeCachesTheFirstResult) {
  ShardedLruCache<int, int> cache(16);
  std::atomic<int> computes{0};
  auto compute = [&] {
    computes.fetch_add(1);
    return 99;
  };
  EXPECT_EQ(cache.GetOrCompute(5, compute), 99);
  EXPECT_EQ(cache.GetOrCompute(5, compute), 99);
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ShardedLruCacheTest, StatsSnapshotReflectsCounters) {
  ShardedLruCache<int, int> cache(2, 1);
  cache.Put(1, 1);
  (void)cache.Get(1);  // hit
  (void)cache.Get(9);  // miss
  const LruCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(ShardedLruCacheTest, ShardCountIsClampedToCapacity) {
  ShardedLruCache<int, int> cache(/*capacity=*/2, /*num_shards=*/64);
  EXPECT_LE(cache.num_shards(), 2u);
  for (int i = 0; i < 100; ++i) cache.Put(i, i);
  EXPECT_LE(cache.Size(), 2u);
}

TEST(ShardedLruCacheTest, ClearEmptiesEveryShard) {
  ShardedLruCache<int, int> cache(32, 4);
  for (int i = 0; i < 20; ++i) cache.Put(i, i);
  cache.Clear();
  EXPECT_EQ(cache.Size(), 0u);
  EXPECT_FALSE(cache.Get(3).has_value());
}

TEST(ShardedLruCacheTest, ConcurrentMixedWorkloadStaysBoundedAndConsistent) {
  const size_t capacity = 256;
  ShardedLruCache<int, int> cache(capacity, 8);
  std::vector<std::thread> threads;
  std::atomic<bool> wrong_value{false};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 5000; ++i) {
        const int key = (t * 131 + i) % 1024;
        const int got = cache.GetOrCompute(key, [&] { return key * 3; });
        if (got != key * 3) wrong_value.store(true);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(wrong_value.load());
  EXPECT_LE(cache.Size(), capacity);
  EXPECT_EQ(cache.hits() + cache.misses(), 8u * 5000u);
}

}  // namespace
}  // namespace tegra
