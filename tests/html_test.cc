// Tests for the HTML list-extraction substrate.

#include <gtest/gtest.h>

#include "html/html_lists.h"

namespace tegra::html {
namespace {

TEST(StripMarkupTest, RemovesTagsAndCollapsesWhitespace) {
  EXPECT_EQ(StripMarkup("<b>Boston</b>,   <i>MA</i>"), "Boston, MA");
  EXPECT_EQ(StripMarkup("plain text"), "plain text");
  EXPECT_EQ(StripMarkup(""), "");
}

TEST(StripMarkupTest, DecodesEntities) {
  EXPECT_EQ(StripMarkup("Johnson &amp; Johnson"), "Johnson & Johnson");
  EXPECT_EQ(StripMarkup("a&lt;b&gt;c"), "a<b>c");
  EXPECT_EQ(StripMarkup("x&nbsp;y"), "x y");
  EXPECT_EQ(StripMarkup("it&#39;s"), "it's");
  EXPECT_EQ(StripMarkup("A&#66;C"), "ABC");
}

TEST(StripMarkupTest, UnknownEntityKeptLiteral) {
  EXPECT_EQ(StripMarkup("AT&T"), "AT&T");
  EXPECT_EQ(StripMarkup("a &unknownentityname; b"), "a &unknownentityname; b");
}

TEST(StripMarkupTest, DropsScriptStyleAndComments) {
  EXPECT_EQ(StripMarkup("a<script>var x = '<b>';</script>b"), "ab");
  EXPECT_EQ(StripMarkup("a<style>.x{}</style>b"), "ab");
  EXPECT_EQ(StripMarkup("a<!-- hidden <li> -->b"), "ab");
  EXPECT_EQ(StripMarkup("645,966<sup>[1]</sup>"), "645,966");
}

TEST(StripMarkupTest, BlockTagsSeparateWords) {
  EXPECT_EQ(StripMarkup("line1<br>line2"), "line1 line2");
  EXPECT_EQ(StripMarkup("<p>a</p><p>b</p>"), "a b");
}

TEST(StripMarkupTest, QuotedAngleBracketInAttribute) {
  EXPECT_EQ(StripMarkup(R"(<a href="x>y">link</a>)"), "link");
}

TEST(ExtractHtmlListsTest, SimpleList) {
  const auto lists = ExtractHtmlLists(
      "<ul><li>Boston, MA: 645,966</li><li>Worcester, MA: 182,544</li></ul>");
  ASSERT_EQ(lists.size(), 1u);
  EXPECT_EQ(lists[0].tag, "ul");
  EXPECT_EQ(lists[0].items,
            (std::vector<std::string>{"Boston, MA: 645,966",
                                      "Worcester, MA: 182,544"}));
}

TEST(ExtractHtmlListsTest, OrderedListAndAttributes) {
  const auto lists = ExtractHtmlLists(
      R"(<ol class="rank"><li value="1">first</li><li>second</li></ol>)");
  ASSERT_EQ(lists.size(), 1u);
  EXPECT_EQ(lists[0].tag, "ol");
  EXPECT_EQ(lists[0].items[0], "first");
}

TEST(ExtractHtmlListsTest, InlineMarkupInsideItems) {
  const auto lists = ExtractHtmlLists(
      "<ul><li><b>Boston</b> <a href='/ma'>Massachusetts</a> 645,966</li></ul>");
  ASSERT_EQ(lists.size(), 1u);
  EXPECT_EQ(lists[0].items[0], "Boston Massachusetts 645,966");
}

TEST(ExtractHtmlListsTest, ImpliedLiClose) {
  // Real-world HTML frequently omits </li>.
  const auto lists =
      ExtractHtmlLists("<ul><li>one<li>two<li>three</ul>");
  ASSERT_EQ(lists.size(), 1u);
  EXPECT_EQ(lists[0].items,
            (std::vector<std::string>{"one", "two", "three"}));
}

TEST(ExtractHtmlListsTest, NestedListsSeparated) {
  const auto lists = ExtractHtmlLists(
      "<ul><li>outer1</li><li>outer2<ul><li>inner1</li><li>inner2</li></ul>"
      "</li><li>outer3</li></ul>");
  ASSERT_EQ(lists.size(), 2u);
  // Inner list closes (and is emitted) first.
  EXPECT_EQ(lists[0].items, (std::vector<std::string>{"inner1", "inner2"}));
  EXPECT_EQ(lists[1].items,
            (std::vector<std::string>{"outer1", "outer2", "outer3"}));
}

TEST(ExtractHtmlListsTest, MultipleListsInDocumentOrder) {
  const auto lists = ExtractHtmlLists(
      "<html><body><ul><li>a</li></ul><p>x</p><ol><li>b</li></ol></body>");
  ASSERT_EQ(lists.size(), 2u);
  EXPECT_EQ(lists[0].items[0], "a");
  EXPECT_EQ(lists[1].items[0], "b");
}

TEST(ExtractHtmlListsTest, UnclosedListTerminatedAtEof) {
  const auto lists = ExtractHtmlLists("<ul><li>a</li><li>b");
  ASSERT_EQ(lists.size(), 1u);
  EXPECT_EQ(lists[0].items, (std::vector<std::string>{"a", "b"}));
}

TEST(ExtractHtmlListsTest, EmptyItemsDropped) {
  const auto lists =
      ExtractHtmlLists("<ul><li>  </li><li>x</li><li></li></ul>");
  ASSERT_EQ(lists.size(), 1u);
  EXPECT_EQ(lists[0].items, (std::vector<std::string>{"x"}));
}

TEST(ExtractHtmlListsTest, AllEmptyListOmitted) {
  EXPECT_TRUE(ExtractHtmlLists("<ul><li> </li></ul>").empty());
  EXPECT_TRUE(ExtractHtmlLists("no lists here").empty());
}

TEST(ExtractHtmlListsTest, TextOutsideItemsIgnored) {
  const auto lists =
      ExtractHtmlLists("<ul>stray text<li>kept</li>more stray</ul>");
  ASSERT_EQ(lists.size(), 1u);
  EXPECT_EQ(lists[0].items, (std::vector<std::string>{"kept"}));
}

TEST(ExtractHtmlListsTest, ScriptInsideItemSkipped) {
  const auto lists = ExtractHtmlLists(
      "<ul><li>a<script>document.write('<li>fake</li>')</script>b</li></ul>");
  ASSERT_EQ(lists.size(), 1u);
  EXPECT_EQ(lists[0].items, (std::vector<std::string>{"ab"}));
}

TEST(ExtractHtmlListsTest, EntitiesInsideItems) {
  const auto lists =
      ExtractHtmlLists("<ul><li>Barnes &amp; Noble &#45; 1971</li></ul>");
  ASSERT_EQ(lists.size(), 1u);
  EXPECT_EQ(lists[0].items[0], "Barnes & Noble - 1971");
}

TEST(ExtractHtmlListsTest, RealisticWikipediaFragment) {
  const char* html = R"(
    <div id="content">
      <h1>List of cities by population in New England</h1>
      <ul>
        <li>1. <a href="/wiki/Boston">Boston</a>, Massachusetts: 645,966<sup>[1]</sup></li>
        <li>2. <a href="/wiki/Worcester">Worcester</a>, Massachusetts: 182,544</li>
        <li>3. Providence, Rhode Island: 178,042</li>
      </ul>
    </div>)";
  const auto lists = ExtractHtmlLists(html);
  ASSERT_EQ(lists.size(), 1u);
  ASSERT_EQ(lists[0].items.size(), 3u);
  EXPECT_EQ(lists[0].items[0], "1. Boston, Massachusetts: 645,966");
  EXPECT_EQ(lists[0].items[2], "3. Providence, Rhode Island: 178,042");
}

}  // namespace
}  // namespace tegra::html
