// Tests for tegra::trace: span nesting and cross-thread context handoff,
// ring-buffer overflow accounting, Chrome trace / Prometheus export
// well-formedness, the slow-request log, the structured logger, and the
// end-to-end guarantee that one extraction populates the per-phase
// histograms.
//
// The same binary builds under TEGRA_TRACE=OFF: recording assertions are
// gated on trace::kCompiledIn, and the OFF build instead asserts that the
// instrumented pipeline records nothing.

#include "trace/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/tegra.h"
#include "corpus/corpus_stats.h"
#include "service/extraction_service.h"
#include "service/serve_json.h"
#include "service/slowlog.h"
#include "synth/corpus_gen.h"
#include "trace/chrome_trace.h"
#include "trace/log.h"
#include "trace/prometheus.h"
#include "corpus/column_index.h"

namespace tegra {
namespace trace {
namespace {

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer tracer(64);
  ASSERT_FALSE(tracer.enabled());
  tracer.RecordManual("x", "test", 0, 10);
  { Span span(&tracer, "y", "test"); }
  EXPECT_EQ(tracer.spans_recorded(), 0u);
  EXPECT_TRUE(tracer.RingSnapshot().empty());
}

TEST(TracerTest, RecordManualLandsInRing) {
  Tracer tracer(64);
  tracer.SetEnabled(true);
  tracer.RecordManual("manual", "test", 5, 10);
  const auto events = tracer.RingSnapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "manual");
  EXPECT_EQ(events[0].start_us, 5u);
  EXPECT_EQ(events[0].duration_us, 10u);
  EXPECT_EQ(tracer.spans_recorded(), 1u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, RingOverflowDropsOldestAndCounts) {
  Tracer tracer(4);
  ASSERT_EQ(tracer.ring_capacity(), 4u);
  tracer.SetEnabled(true);
  for (int i = 0; i < 10; ++i) {
    tracer.RecordManual("e", "test", static_cast<uint64_t>(i) * 100, 1);
  }
  EXPECT_EQ(tracer.spans_recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto events = tracer.RingSnapshot();
  ASSERT_EQ(events.size(), 4u);
  // Drop-oldest: exactly the last four records remain, in start order.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].start_us, (6 + i) * 100) << "slot " << i;
  }
}

TEST(TracerTest, DroppedCounterFeedsMetrics) {
  Tracer tracer(2);
  tracer.SetEnabled(true);
  for (int i = 0; i < 5; ++i) tracer.RecordManual("e", "test", 0, 1);
  MetricsSnapshot snap = tracer.metrics()->Snapshot();
  EXPECT_EQ(snap.counters["trace.dropped"], 3u);
  EXPECT_EQ(snap.counters["trace.spans_total"], 5u);
}

TEST(TracerTest, ResetClearsRingAndCounters) {
  Tracer tracer(8);
  tracer.SetEnabled(true);
  for (int i = 0; i < 20; ++i) tracer.RecordManual("e", "test", 0, 1);
  tracer.Reset();
  EXPECT_EQ(tracer.spans_recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(tracer.RingSnapshot().empty());
}

TEST(TracerTest, RingSnapshotSortedByStartTime) {
  Tracer tracer(16);
  tracer.SetEnabled(true);
  tracer.RecordManual("late", "test", 300, 1);
  tracer.RecordManual("early", "test", 100, 1);
  tracer.RecordManual("mid", "test", 200, 1);
  const auto events = tracer.RingSnapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "early");
  EXPECT_STREQ(events[1].name, "mid");
  EXPECT_STREQ(events[2].name, "late");
}

TEST(SpanTest, RecordsDurationAndFeedsMetric) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  Tracer tracer(64);
  tracer.SetEnabled(true);
  { Span span(&tracer, "timed", "test", "test.phase_seconds"); }
  const auto events = tracer.RingSnapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "timed");
  const MetricsSnapshot snap = tracer.metrics()->Snapshot();
  ASSERT_TRUE(snap.histograms.count("test.phase_seconds"));
  EXPECT_EQ(snap.histograms.at("test.phase_seconds").count, 1u);
}

TEST(SpanTest, NestingTracksParentAndDepth) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  Tracer tracer(64);
  tracer.SetEnabled(true);
  {
    Span outer(&tracer, "outer", "test");
    {
      Span inner(&tracer, "inner", "test");
    }
  }
  auto events = tracer.RingSnapshot();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const auto& e : events) {
    if (std::string(e.name) == "outer") outer = &e;
    if (std::string(e.name) == "inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->parent_id, outer->span_id);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(outer->thread_id, inner->thread_id);
}

TEST(SpanTest, EndIsIdempotent) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  Tracer tracer(64);
  tracer.SetEnabled(true);
  Span span(&tracer, "once", "test");
  span.End();
  span.End();
  EXPECT_EQ(tracer.spans_recorded(), 1u);
}

TEST(TraceContextTest, CollectsSpansCompletedWhileCurrent) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  Tracer tracer(64);
  tracer.SetEnabled(true);
  {
    TraceContext ctx(&tracer, "request");
    EXPECT_NE(ctx.trace_id(), 0u);
    { Span span(&tracer, "inside", "test"); }
    const auto collected = ctx.Events();
    ASSERT_EQ(collected.size(), 1u);
    EXPECT_STREQ(collected[0].name, "inside");
    EXPECT_EQ(collected[0].trace_id, ctx.trace_id());
  }
  // After the context ended, new spans are untagged.
  { Span span(&tracer, "outside", "test"); }
  const auto events = tracer.RingSnapshot();
  for (const auto& e : events) {
    if (std::string(e.name) == "outside") {
      EXPECT_EQ(e.trace_id, 0u);
    }
  }
}

TEST(TraceContextTest, ThreadPoolWorkersInheritViaScopedContext) {
  if (!kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  Tracer tracer(256);
  tracer.SetEnabled(true);
  constexpr size_t kTasks = 16;
  TraceContext ctx(&tracer, "fanout");
  {
    ThreadPool pool(4);
    // Rendezvous: every task waits until a second task has entered. A
    // spinning worker cannot start another queued task, so the second entry
    // must come from a different pool thread — this forces >= 2 threads to
    // participate even on a single-CPU machine where one worker could
    // otherwise drain the whole queue.
    std::atomic<size_t> entered{0};
    pool.ParallelFor(kTasks, [&](size_t) {
      ScopedContext scoped(&ctx);
      Span span(&tracer, "worker_task", "test");
      entered.fetch_add(1, std::memory_order_acq_rel);
      while (entered.load(std::memory_order_acquire) < 2) {
        std::this_thread::yield();
      }
    });
  }
  const auto collected = ctx.Events();
  ASSERT_EQ(collected.size(), kTasks);
  std::set<uint32_t> worker_threads;
  for (const auto& e : collected) {
    EXPECT_STREQ(e.name, "worker_task");
    EXPECT_EQ(e.trace_id, ctx.trace_id());
    worker_threads.insert(e.thread_id);
  }
  // The pool really did spread the spans over multiple threads.
  EXPECT_GE(worker_threads.size(), 2u);
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

TEST(ChromeTraceTest, EmitsWellFormedJson) {
  Tracer tracer(64);
  tracer.SetEnabled(true);
  tracer.RecordManual("alpha", "test", 10, 5);
  tracer.RecordManual("beta", "test", 20, 7);
  const std::string json = ToChromeTraceJson(tracer.RingSnapshot());

  auto parsed = serve::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const serve::JsonValue& root = *parsed;
  EXPECT_EQ(root["displayTimeUnit"].AsString(), "ms");
  const auto& events = root["traceEvents"].AsArray();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0]["name"].AsString(), "alpha");
  EXPECT_EQ(events[0]["ph"].AsString(), "X");
  EXPECT_DOUBLE_EQ(events[0]["ts"].AsNumber(), 10);
  EXPECT_DOUBLE_EQ(events[0]["dur"].AsNumber(), 5);
  EXPECT_DOUBLE_EQ(events[1]["ts"].AsNumber(), 20);
  // Per-event args carry the tree structure.
  EXPECT_TRUE(events[0].Has("args"));
}

TEST(ChromeTraceTest, EmptyRingStillValid) {
  const std::string json = ToChromeTraceJson({});
  auto parsed = serve::ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE((*parsed)["traceEvents"].AsArray().empty());
}

// ---------------------------------------------------------------------------
// Prometheus export
// ---------------------------------------------------------------------------

TEST(PrometheusTest, SanitizesNames) {
  EXPECT_EQ(PrometheusName("service.queue_seconds"),
            "tegra_service_queue_seconds");
  EXPECT_EQ(PrometheusName("weird-name with spaces"),
            "tegra_weird_name_with_spaces");
  EXPECT_EQ(PrometheusName("x", ""), "x");
}

TEST(PrometheusTest, RendersCountersGaugesHistograms) {
  MetricsRegistry registry;
  registry.GetCounter("serve.requests_total")->Increment(7);
  registry.GetGauge("serve.queue_depth")->Set(3);
  Histogram* h = registry.GetHistogram("extract.phase.total");
  h->Observe(0.002);
  h->Observe(0.004);

  const std::string text = ToPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE tegra_serve_requests_total counter\n"
                      "tegra_serve_requests_total 7\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE tegra_serve_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tegra_extract_phase_total histogram"),
            std::string::npos);
  // Cumulative buckets must close with +Inf == _count.
  EXPECT_NE(text.find("tegra_extract_phase_total_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tegra_extract_phase_total_count 2"),
            std::string::npos);
}

TEST(PrometheusTest, EscapesLabelValues) {
  // The three characters the text formats require escaping — anything else
  // passes through byte-for-byte (label values are free-form UTF-8).
  EXPECT_EQ(EscapeLabelValue("plain-value_1.2"), "plain-value_1.2");
  EXPECT_EQ(EscapeLabelValue("back\\slash"), "back\\\\slash");
  EXPECT_EQ(EscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapeLabelValue("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(EscapeLabelValue("all\\three\"at\nonce"),
            "all\\\\three\\\"at\\nonce");
  EXPECT_EQ(EscapeLabelValue(""), "");
}

TEST(PrometheusTest, BuildInfoExpositionIsWellFormed) {
  // Compiler banners carry quotes/backslashes on some toolchains; whatever
  // this build's strings are, the rendered line must keep exactly one
  // balanced quote pair per label and no raw newlines inside the braces.
  const std::string text = BuildInfoPrometheusText();
  const size_t open = text.find('{');
  const size_t close = text.find('}');
  ASSERT_NE(open, std::string::npos) << text;
  ASSERT_NE(close, std::string::npos) << text;
  const std::string labels = text.substr(open + 1, close - open - 1);
  EXPECT_EQ(labels.find('\n'), std::string::npos) << text;
  size_t unescaped_quotes = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == '"' && (i == 0 || labels[i - 1] != '\\')) {
      ++unescaped_quotes;
    }
  }
  // 4 labels (git_sha, build_type, trace, compiler), 2 quotes each.
  EXPECT_EQ(unescaped_quotes, 8u) << text;
  EXPECT_NE(text.find("git_sha=\""), std::string::npos);
  EXPECT_NE(text.find("compiler=\""), std::string::npos);
  EXPECT_NE(text.find("} 1\n"), std::string::npos);
}

TEST(PrometheusTest, BucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat");
  // Many small + one large observation: every bucket count must be
  // monotonically non-decreasing down the exposition.
  for (int i = 0; i < 10; ++i) h->Observe(1e-6);
  h->Observe(100.0);
  const std::string text = ToPrometheusText(registry.Snapshot());
  uint64_t prev = 0;
  size_t buckets_seen = 0;
  size_t pos = 0;
  while ((pos = text.find("tegra_lat_bucket{le=", pos)) != std::string::npos) {
    const size_t space = text.find(' ', pos);
    const size_t eol = text.find('\n', space);
    const uint64_t value = std::stoull(text.substr(space + 1, eol - space - 1));
    EXPECT_GE(value, prev);
    prev = value;
    ++buckets_seen;
    pos = eol;
  }
  EXPECT_GT(buckets_seen, 2u);
  EXPECT_EQ(prev, 11u);  // +Inf bucket equals the total count.
}

// ---------------------------------------------------------------------------
// Slow-request log
// ---------------------------------------------------------------------------

serve::SlowRequestRecord MakeRecord(uint64_t id, double total) {
  serve::SlowRequestRecord rec;
  rec.trace_id = id;
  rec.total_seconds = total;
  rec.outcome = "ok";
  return rec;
}

TEST(SlowRequestLogTest, RetainsSlowestInDescendingOrder) {
  serve::SlowRequestLog log(3);
  EXPECT_TRUE(log.Add(MakeRecord(1, 0.010)));
  EXPECT_TRUE(log.Add(MakeRecord(2, 0.050)));
  EXPECT_TRUE(log.Add(MakeRecord(3, 0.001)));
  EXPECT_TRUE(log.Add(MakeRecord(4, 0.030)));   // evicts 0.001
  EXPECT_FALSE(log.Add(MakeRecord(5, 0.0001)));  // too fast, rejected
  const auto records = log.Snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].trace_id, 2u);
  EXPECT_EQ(records[1].trace_id, 4u);
  EXPECT_EQ(records[2].trace_id, 1u);
  EXPECT_GE(records[0].total_seconds, records[1].total_seconds);
  EXPECT_GE(records[1].total_seconds, records[2].total_seconds);
}

TEST(SlowRequestLogTest, ZeroCapacityRejectsEverything) {
  serve::SlowRequestLog log(0);
  EXPECT_FALSE(log.Add(MakeRecord(1, 99.0)));
  EXPECT_EQ(log.size(), 0u);
}

TEST(SlowRequestLogTest, ClearEmptiesButKeepsCapacity) {
  serve::SlowRequestLog log(2);
  log.Add(MakeRecord(1, 1.0));
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.capacity(), 2u);
  EXPECT_TRUE(log.Add(MakeRecord(2, 0.5)));
}

// ---------------------------------------------------------------------------
// Structured logger
// ---------------------------------------------------------------------------

TEST(LoggerTest, MinLevelSuppresses) {
  Logger logger;
  std::vector<std::string> lines;
  logger.SetCallback([&](LogLevel, const std::string& line) {
    lines.push_back(line);
  });
  logger.SetMinLevel(LogLevel::kWarn);
  logger.Log(LogLevel::kDebug, "nope");
  logger.Log(LogLevel::kInfo, "nope");
  logger.Log(LogLevel::kWarn, "yes");
  logger.Log(LogLevel::kError, "also");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("yes"), std::string::npos);
  EXPECT_NE(lines[1].find("also"), std::string::npos);
}

TEST(LoggerTest, TextFormatRendersFields) {
  Logger logger;
  const std::string line =
      logger.Render(LogLevel::kInfo, "ready",
                    {{"workers", 4}, {"mode", "fast path"}});
  EXPECT_NE(line.find("INFO"), std::string::npos);
  EXPECT_NE(line.find("ready"), std::string::npos);
  EXPECT_NE(line.find("workers=4"), std::string::npos);
  // Values with spaces are quoted.
  EXPECT_NE(line.find("mode=\"fast path\""), std::string::npos) << line;
}

TEST(LoggerTest, JsonFormatIsParseable) {
  Logger logger;
  logger.SetFormat(Logger::Format::kJson);
  const std::string line = logger.Render(
      LogLevel::kWarn, "bad \"request\"",
      {{"count", 3}, {"ok", false}, {"detail", "line\n2"}});
  auto parsed = serve::ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << line;
  const serve::JsonValue& root = *parsed;
  EXPECT_EQ(root["level"].AsString(), "warn");
  EXPECT_EQ(root["msg"].AsString(), "bad \"request\"");
  EXPECT_DOUBLE_EQ(root["count"].AsNumber(), 3);
  EXPECT_FALSE(root["ok"].AsBool(true));
  EXPECT_EQ(root["detail"].AsString(), "line\n2");
}

// ---------------------------------------------------------------------------
// End-to-end: the instrumented pipeline
// ---------------------------------------------------------------------------

class PipelineTraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    index_ = new ColumnIndex(synth::BuildBackgroundIndex(
        synth::CorpusProfile::kWeb, /*num_tables=*/800, /*seed=*/77));
  }
  static void TearDownTestSuite() {
    delete index_;
    index_ = nullptr;
  }
  static std::vector<std::string> Lines() {
    return {"Boston Massachusetts 645,966",
            "Worcester Massachusetts 182,544",
            "Providence Rhode Island 178,042",
            "Springfield Massachusetts 153,060"};
  }
  static ColumnIndex* index_;
};

ColumnIndex* PipelineTraceTest::index_ = nullptr;

TEST_F(PipelineTraceTest, OneExtractionPopulatesPhaseHistograms) {
  MetricsRegistry registry;
  Tracer& tracer = Tracer::Global();
  tracer.BindMetrics(&registry);
  tracer.SetEnabled(true);
  tracer.Reset();

  CorpusStats stats(index_);
  TegraExtractor extractor(&stats);
  auto result = extractor.Extract(Lines());
  ASSERT_TRUE(result.ok());

  tracer.SetEnabled(false);
  const MetricsSnapshot snap = registry.Snapshot();
  tracer.BindMetrics(nullptr);

  if (kCompiledIn) {
    // Acceptance criterion: extract.phase.* histograms are non-empty after a
    // single extraction.
    for (const char* phase :
         {"extract.phase.total", "extract.phase.tokenize",
          "extract.phase.list_context", "extract.phase.segmentation",
          "extract.phase.anchor_search", "extract.phase.slgr_dp",
          "extract.phase.materialize"}) {
      ASSERT_TRUE(snap.histograms.count(phase)) << phase;
      EXPECT_GE(snap.histograms.at(phase).count, 1u) << phase;
    }
    EXPECT_GE(snap.counters.at("extract.requests_total"), 1u);
    EXPECT_GT(snap.counters.at("extract.nodes_expanded_total"), 0u);
    EXPECT_GT(snap.counters.at("extract.distance_calls_total"), 0u);
    EXPECT_GT(snap.counters.at("extract.anchors_total"), 0u);
    EXPECT_GT(tracer.spans_recorded(), 0u);
  } else {
    // TEGRA_TRACE=OFF: instrumented call sites compile to nothing.
    EXPECT_EQ(tracer.spans_recorded(), 0u);
    EXPECT_EQ(snap.histograms.count("extract.phase.total"), 0u);
  }
}

TEST_F(PipelineTraceTest, ServiceRequestsLandInSlowlogWithSpans) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(true);
  tracer.Reset();

  CorpusStats stats(index_);
  TegraExtractor extractor(&stats);
  serve::ServiceOptions options;
  options.num_workers = 2;
  options.slowlog_capacity = 4;
  {
    serve::ExtractionService service(&extractor, options);
    for (int i = 0; i < 3; ++i) {
      serve::ExtractionRequest request;
      request.lines = Lines();
      request.bypass_cache = true;
      auto response = service.SubmitAndWait(std::move(request));
      ASSERT_TRUE(response.ok());
    }
    const auto records = service.slowlog().Snapshot();
    ASSERT_GE(records.size(), 1u);
    ASSERT_LE(records.size(), 3u);
    // Slowest-first ordering.
    for (size_t i = 1; i < records.size(); ++i) {
      EXPECT_GE(records[i - 1].total_seconds, records[i].total_seconds);
    }
    for (const auto& rec : records) {
      EXPECT_EQ(rec.outcome, "ok");
      EXPECT_EQ(rec.num_lines, Lines().size());
      if (kCompiledIn) {
        EXPECT_NE(rec.trace_id, 0u);
        EXPECT_FALSE(rec.spans.empty());
        // Every request tree contains the manually-recorded queue wait.
        const bool has_queue_wait = std::any_of(
            rec.spans.begin(), rec.spans.end(), [](const TraceEvent& e) {
              return std::string(e.name) == "queue_wait";
            });
        EXPECT_TRUE(has_queue_wait);
      }
    }
  }
  tracer.SetEnabled(false);
}

}  // namespace
}  // namespace trace
}  // namespace tegra
