// tegra::net::HttpServer — the event-loop data-plane transport, exercised
// over real sockets through tegra::net::HttpClient, and under BOTH poller
// backends (epoll and poll) so the portable path cannot rot: keep-alive
// reuse, asynchronous completions from foreign threads, read deadlines
// (408), idle-connection reaping, shed-at-accept (503 + Retry-After),
// malformed-request rejection and graceful drain with an in-flight request.

#include "net/http_server.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "gtest/gtest.h"
#include "net/http_client.h"
#include "service/metrics.h"

namespace tegra {
namespace net {
namespace {

/// Echo handler: answers 200 with method, path and body, completing inline
/// on the event loop (the simplest legal handler).
AsyncHandler EchoHandler() {
  return [](const HttpRequest& request, ResponseCallback done) {
    done(HttpResponse::Text(
        200, request.method + " " + request.path + " " + request.body));
  };
}

class HttpServerTest : public ::testing::TestWithParam<PollerBackend> {
 protected:
  HttpServerOptions BaseOptions() {
    HttpServerOptions options;
    options.port = 0;  // Ephemeral.
    options.backend = GetParam();
    return options;
  }
};

TEST_P(HttpServerTest, StartServesStop) {
  HttpServer server(BaseOptions());
  server.set_handler(EchoHandler());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  HttpClient client("127.0.0.1", server.port());
  auto response = client.Post("/v1/extract", "hello");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(response.value().body, "POST /v1/extract hello");

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // Idempotent.
}

TEST_P(HttpServerTest, KeepAliveReusesOneConnection) {
  HttpServer server(BaseOptions());
  server.set_handler(EchoHandler());
  ASSERT_TRUE(server.Start().ok());

  HttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 10; ++i) {
    auto response = client.Get("/ping/" + std::to_string(i));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status, 200);
  }
  // All ten requests rode a single dial.
  EXPECT_EQ(client.connects(), 1u);

  const HttpServerStats stats = server.Stats();
  EXPECT_EQ(stats.connections_total, 1u);
  EXPECT_EQ(stats.requests_total, 10u);
  server.Stop();
}

TEST_P(HttpServerTest, CompletionFromForeignThread) {
  // The data plane completes requests from worker threads; the callback
  // must marshal the response back to the loop safely.
  HttpServer server(BaseOptions());
  server.set_handler([](const HttpRequest& request, ResponseCallback done) {
    std::thread([body = request.body, done = std::move(done)]() mutable {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      done(HttpResponse::Text(200, "deferred:" + body));
    }).detach();
  });
  ASSERT_TRUE(server.Start().ok());

  HttpClient client("127.0.0.1", server.port());
  auto response = client.Post("/x", "abc");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().body, "deferred:abc");
  server.Stop();
}

TEST_P(HttpServerTest, StalledMidRequestGets408) {
  HttpServerOptions options = BaseOptions();
  options.io_timeout_ms = 150;
  HttpServer server(options);
  server.set_handler(EchoHandler());
  ASSERT_TRUE(server.Start().ok());

  // Declare a 100-byte body, send 7, stall. The read deadline must answer
  // 408 instead of waiting forever for the rest.
  HttpClient client("127.0.0.1", server.port(), /*timeout_ms=*/5000);
  auto response = client.RoundTrip(
      "POST /v1/extract HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 408);
  EXPECT_GE(server.Stats().read_timeouts_total, 1u);
  server.Stop();
}

TEST_P(HttpServerTest, IdleKeepAliveConnectionIsReaped) {
  HttpServerOptions options = BaseOptions();
  options.io_timeout_ms = 100;
  HttpServer server(options);
  server.set_handler(EchoHandler());
  ASSERT_TRUE(server.Start().ok());

  HttpClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.Get("/a").ok());
  EXPECT_EQ(server.active_connections(), 1u);

  // Idle past the deadline: the server closes silently (no 408 — there is
  // no half-received request to answer).
  for (int i = 0; i < 50 && server.active_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server.active_connections(), 0u);

  // The client's next request transparently redials.
  auto response = client.Get("/b");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(client.connects(), 2u);
  server.Stop();
}

TEST_P(HttpServerTest, ShedBeyondMaxConnections) {
  HttpServerOptions options = BaseOptions();
  options.max_connections = 1;
  HttpServer server(options);
  server.set_handler(EchoHandler());
  ASSERT_TRUE(server.Start().ok());

  HttpClient first("127.0.0.1", server.port());
  ASSERT_TRUE(first.Get("/hold").ok());  // Keep-alive holds the one slot.
  EXPECT_TRUE(server.saturated());

  // The second client is shed with an explicit 503, not a reset.
  HttpClient second("127.0.0.1", server.port());
  auto shed = second.Get("/shed");
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed.value().status, 503);
  EXPECT_EQ(shed.value().Header("retry-after"), "1");
  EXPECT_GE(server.Stats().shed_connections_total, 1u);

  // Freeing the slot restores service.
  first.Close();
  for (int i = 0; i < 50 && server.active_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  auto ok = second.Get("/after");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().status, 200);
  server.Stop();
}

TEST_P(HttpServerTest, MalformedRequestRejectedAndClosed) {
  HttpServer server(BaseOptions());
  server.set_handler(EchoHandler());
  ASSERT_TRUE(server.Start().ok());

  HttpClient client("127.0.0.1", server.port());
  auto response = client.RoundTrip("NONSENSE\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 400);
  EXPECT_GE(server.Stats().bad_requests_total, 1u);
  server.Stop();
}

TEST_P(HttpServerTest, PipelinedRequestsAnsweredInOrder) {
  HttpServer server(BaseOptions());
  server.set_handler(EchoHandler());
  ASSERT_TRUE(server.Start().ok());

  // Two requests in one write; responses must come back in order on the
  // same connection.
  HttpClient client("127.0.0.1", server.port());
  auto first = client.RoundTrip(
      "GET /one HTTP/1.1\r\n\r\nGET /two HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().body, "GET /one ");
  auto second = client.RoundTrip("");  // Just read the second response.
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().body, "GET /two ");
  server.Stop();
}

TEST_P(HttpServerTest, GracefulDrainFinishesInFlightRequest) {
  HttpServer server(BaseOptions());
  std::atomic<bool> handler_entered{false};
  server.set_handler([&](const HttpRequest&, ResponseCallback done) {
    handler_entered.store(true);
    std::thread([done = std::move(done)]() mutable {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      done(HttpResponse::Text(200, "finished"));
    }).detach();
  });
  ASSERT_TRUE(server.Start().ok());

  HttpClient client("127.0.0.1", server.port());
  std::thread requester([&] {
    auto response = client.Post("/slow", "x");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status, 200);
    EXPECT_EQ(response.value().body, "finished");
    // Draining turns keep-alive off so the client does not re-use a dying
    // connection.
    EXPECT_EQ(response.value().Header("connection"), "close");
  });
  while (!handler_entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.Stop();  // Must wait for the in-flight response, then tear down.
  requester.join();
}

TEST_P(HttpServerTest, MaxRequestsPerConnectionForcesClose) {
  HttpServerOptions options = BaseOptions();
  options.max_requests_per_connection = 2;
  HttpServer server(options);
  server.set_handler(EchoHandler());
  ASSERT_TRUE(server.Start().ok());

  HttpClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.Get("/1").ok());
  auto second = client.Get("/2");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().Header("connection"), "close");
  auto third = client.Get("/3");  // Redials transparently.
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(client.connects(), 2u);
  server.Stop();
}

TEST_P(HttpServerTest, MetricsRegistered) {
  MetricsRegistry registry;
  HttpServer server(BaseOptions(), &registry);
  server.set_handler(EchoHandler());
  ASSERT_TRUE(server.Start().ok());

  HttpClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.Get("/x").ok());
  server.Stop();

  const auto snapshot = registry.Snapshot();
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("net.requests_total"), std::string::npos);
  EXPECT_NE(json.find("net.connections_total"), std::string::npos);
  EXPECT_NE(json.find("net.responses_2xx_total"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Backends, HttpServerTest,
                         ::testing::Values(PollerBackend::kEpoll,
                                           PollerBackend::kPoll),
                         [](const auto& info) {
                           return info.param == PollerBackend::kEpoll
                                      ? "epoll"
                                      : "poll";
                         });

}  // namespace
}  // namespace net
}  // namespace tegra
