// Integration tests: full pipeline (corpus -> index -> extraction ->
// scoring) on small generated datasets, TEGRA configuration axes
// (threading, anchor sampling, A* vs naive, Jaccard), and the disk cache.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/tegra.h"
#include "corpus/corpus_io.h"
#include "eval/experiment.h"
#include "synth/corpus_gen.h"
#include "synth/list_gen.h"

namespace tegra {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    index_ = new ColumnIndex(synth::BuildBackgroundIndex(
        synth::CorpusProfile::kWeb, /*num_tables=*/1500, /*seed=*/101));
    stats_ = new CorpusStats(index_);
  }
  static void TearDownTestSuite() {
    delete stats_;
    delete index_;
    stats_ = nullptr;
    index_ = nullptr;
  }

  static std::vector<eval::EvalInstance> Instances(size_t n) {
    auto raw = synth::MakeBenchmark(synth::CorpusProfile::kWeb, n, 1001);
    std::vector<eval::EvalInstance> out;
    for (auto& r : raw) {
      eval::EvalInstance inst;
      inst.index = out.size();
      inst.lines = std::move(r.lines);
      inst.truth = std::move(r.ground_truth);
      out.push_back(std::move(inst));
    }
    return out;
  }

  static ColumnIndex* index_;
  static CorpusStats* stats_;
};

ColumnIndex* PipelineTest::index_ = nullptr;
CorpusStats* PipelineTest::stats_ = nullptr;

TEST_F(PipelineTest, UnsupervisedQualityAboveThreshold) {
  const auto instances = Instances(8);
  const auto eval =
      eval::EvaluateAlgorithm(instances, eval::TegraFn(stats_));
  EXPECT_EQ(eval.failures, 0u);
  EXPECT_GT(eval.mean.f1, 0.75) << "end-to-end quality regressed";
}

TEST_F(PipelineTest, ColumnCountGivenBeatsOrMatchesUnsupervised) {
  const auto instances = Instances(8);
  const auto unsup =
      eval::EvaluateAlgorithm(instances, eval::TegraFn(stats_));
  const auto given =
      eval::EvaluateAlgorithm(instances, eval::TegraSupervisedFn(stats_, 0));
  EXPECT_GE(given.mean.f1, unsup.mean.f1 - 0.02);
}

TEST_F(PipelineTest, SupervisionImprovesQuality) {
  const auto instances = Instances(8);
  const auto unsup =
      eval::EvaluateAlgorithm(instances, eval::TegraFn(stats_));
  const auto sup =
      eval::EvaluateAlgorithm(instances, eval::TegraSupervisedFn(stats_, 2));
  EXPECT_GE(sup.mean.f1, unsup.mean.f1 - 0.02);
  EXPECT_GT(sup.mean.f1, 0.85);
}

TEST_F(PipelineTest, ParallelMatchesSequential) {
  const auto instances = Instances(4);
  TegraOptions sequential;
  TegraOptions parallel;
  parallel.num_threads = 4;
  for (const auto& inst : instances) {
    TegraExtractor seq(stats_, sequential);
    TegraExtractor par(stats_, parallel);
    auto a = seq.Extract(inst.lines);
    auto b = par.Extract(inst.lines);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->num_columns, b->num_columns);
    EXPECT_NEAR(a->anchor_distance, b->anchor_distance, 1e-9);
    EXPECT_EQ(a->table.rows(), b->table.rows());
  }
}

TEST_F(PipelineTest, AStarMatchesNaiveEndToEnd) {
  // Small shapes so exhaustive enumeration stays cheap.
  synth::TableGenOptions shape =
      synth::DefaultTableGenOptions(synth::CorpusProfile::kWeb);
  shape.min_rows = 4;
  shape.max_rows = 4;
  shape.min_cols = 3;
  shape.max_cols = 3;
  synth::TableGenerator gen(synth::CorpusProfile::kWeb, shape, 555);
  for (int i = 0; i < 4; ++i) {
    const auto instance = synth::MakeBenchmarkInstance(gen.Generate());
    TegraOptions astar_opts;
    astar_opts.final_anchor_sample = 0;
    TegraOptions naive_opts = astar_opts;
    naive_opts.use_astar = false;
    TegraExtractor astar(stats_, astar_opts);
    TegraExtractor naive(stats_, naive_opts);
    auto a = astar.ExtractWithColumns(instance.lines, 3);
    auto b = naive.ExtractWithColumns(instance.lines, 3);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NEAR(a->anchor_distance, b->anchor_distance, 1e-9);
    EXPECT_LE(a->nodes_expanded, b->nodes_expanded);
  }
}

TEST_F(PipelineTest, AnchorSamplingTradesQualityForSpeed) {
  const auto instances = Instances(6);
  TegraOptions sampled;
  sampled.final_anchor_sample = 1;
  const auto full = eval::EvaluateAlgorithm(
      instances, eval::TegraFn(stats_));
  const auto fast = eval::EvaluateAlgorithm(
      instances, eval::TegraFn(stats_, sampled));
  // Sampling one anchor must still produce valid, decent tables.
  EXPECT_EQ(fast.failures, 0u);
  EXPECT_GT(fast.mean.f1, 0.5);
  EXPECT_GE(full.mean.f1 + 1e-9, 0.0);
}

TEST_F(PipelineTest, JaccardMeasureWorksEndToEnd) {
  const auto instances = Instances(6);
  TegraOptions jaccard;
  jaccard.distance.measure = SemanticMeasure::kJaccard;
  const auto eval =
      eval::EvaluateAlgorithm(instances, eval::TegraFn(stats_, jaccard));
  EXPECT_EQ(eval.failures, 0u);
  EXPECT_GT(eval.mean.f1, 0.6) << "Appendix H: Jaccard is decent";
}

TEST_F(PipelineTest, SerializedCorpusGivesIdenticalResults) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tegra_integ.idx").string();
  ASSERT_TRUE(SaveColumnIndex(*index_, path).ok());
  Result<ColumnIndex> loaded = LoadColumnIndex(path);
  ASSERT_TRUE(loaded.ok());
  CorpusStats loaded_stats(&loaded.value());

  const auto instances = Instances(3);
  for (const auto& inst : instances) {
    TegraExtractor original(stats_);
    TegraExtractor reloaded(&loaded_stats);
    auto a = original.Extract(inst.lines);
    auto b = reloaded.Extract(inst.lines);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->table.rows(), b->table.rows());
    EXPECT_NEAR(a->sp, b->sp, 1e-9);
  }
  std::filesystem::remove(path);
}

TEST_F(PipelineTest, ExtractionIsDeterministic) {
  const auto instances = Instances(3);
  for (const auto& inst : instances) {
    TegraExtractor tegra(stats_);
    auto a = tegra.Extract(inst.lines);
    auto b = tegra.Extract(inst.lines);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->table.rows(), b->table.rows());
  }
}

TEST_F(PipelineTest, AllThreeAlgorithmsProduceRectangularTables) {
  const auto instances = Instances(4);
  const synth::KnowledgeBase kb = synth::KnowledgeBase::BuildGeneral();
  const eval::SegmentFn fns[] = {
      eval::TegraFn(stats_),
      eval::ListExtractFn(stats_),
      eval::JudieFn(&kb),
  };
  for (const auto& fn : fns) {
    for (const auto& inst : instances) {
      Result<Table> table = fn(inst);
      ASSERT_TRUE(table.ok());
      EXPECT_EQ(table->NumRows(), inst.lines.size());
      EXPECT_GE(table->NumCols(), 1u);
    }
  }
}

}  // namespace
}  // namespace tegra
