// End-to-end tests of the TEGRA extractor on small hand-built corpora,
// including the paper's running example (Figures 2-4).

#include "core/tegra.h"

#include <gtest/gtest.h>

#include "corpus/column_index.h"
#include "corpus/corpus_stats.h"

namespace tegra {
namespace {

/// Builds a small background corpus where cities, regions and countries each
/// co-occur heavily, mimicking web-table statistics for the running example.
ColumnIndex BuildToyCorpus() {
  ColumnIndex index;
  const std::vector<std::vector<std::string>> city_columns = {
      {"Los Angeles", "Toronto", "New York City", "Chicago"},
      {"Toronto", "New York City", "Montreal"},
      {"Los Angeles", "New York City", "Houston"},
      {"Toronto", "Los Angeles", "Vancouver"},
      {"New York City", "Boston", "Los Angeles"},
      {"Toronto", "Chicago", "Seattle", "Los Angeles"},
  };
  const std::vector<std::vector<std::string>> region_columns = {
      {"California", "New York", "Texas"},
      {"New York", "California", "Ontario"},
      {"California", "Ontario", "Quebec"},
      {"New York", "Washington", "California"},
      {"Ontario", "California", "New York"},
  };
  const std::vector<std::vector<std::string>> country_columns = {
      {"United States", "Canada", "USA"},
      {"Canada", "USA", "Mexico"},
      {"United States", "Canada", "France"},
      {"USA", "United States", "Canada"},
      {"Canada", "United States", "USA"},
      {"USA", "Canada", "Germany"},
  };
  for (const auto& col : city_columns) index.AddColumn(col);
  for (const auto& col : region_columns) index.AddColumn(col);
  for (const auto& col : country_columns) index.AddColumn(col);
  // Unrelated filler columns so probabilities are not degenerate.
  for (int i = 0; i < 40; ++i) {
    index.AddColumn({"filler" + std::to_string(i),
                     "filler" + std::to_string(i + 1),
                     "filler" + std::to_string(i + 2)});
  }
  index.Finalize();
  return index;
}

class RunningExampleTest : public ::testing::Test {
 protected:
  RunningExampleTest() : index_(BuildToyCorpus()), stats_(&index_) {}

  ColumnIndex index_;
  CorpusStats stats_;
  const std::vector<std::string> lines_ = {
      "Los Angeles California United States",
      "Toronto Canada",
      "New York City New York USA",
  };
};

TEST_F(RunningExampleTest, GivenThreeColumnsRecoversFigure3) {
  TegraExtractor tegra(&stats_);
  auto result = tegra.ExtractWithColumns(lines_, 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& t = result->table;
  ASSERT_EQ(t.NumCols(), 3u);
  ASSERT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.Cell(0, 0), "Los Angeles");
  EXPECT_EQ(t.Cell(0, 1), "California");
  EXPECT_EQ(t.Cell(0, 2), "United States");
  EXPECT_EQ(t.Cell(1, 0), "Toronto");
  EXPECT_EQ(t.Cell(1, 1), "");
  EXPECT_EQ(t.Cell(1, 2), "Canada");
  EXPECT_EQ(t.Cell(2, 0), "New York City");
  EXPECT_EQ(t.Cell(2, 1), "New York");
  EXPECT_EQ(t.Cell(2, 2), "USA");
}

TEST_F(RunningExampleTest, UnsupervisedPicksThreeColumns) {
  TegraExtractor tegra(&stats_);
  auto result = tegra.Extract(lines_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_columns, 3);
  EXPECT_EQ(result->table.Cell(2, 0), "New York City");
}

TEST_F(RunningExampleTest, NaiveAndAStarAgree) {
  TegraOptions astar_opts;
  TegraOptions naive_opts;
  naive_opts.use_astar = false;
  TegraExtractor astar(&stats_, astar_opts);
  TegraExtractor naive(&stats_, naive_opts);
  auto a = astar.ExtractWithColumns(lines_, 3);
  auto b = naive.ExtractWithColumns(lines_, 3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->anchor_distance, b->anchor_distance);
  EXPECT_EQ(a->table.rows(), b->table.rows());
  // A* should do no more work than exhaustive enumeration.
  EXPECT_LE(a->nodes_expanded, b->nodes_expanded);
}

TEST_F(RunningExampleTest, SupervisedExamplePinsSegmentation) {
  TegraExtractor tegra(&stats_);
  std::vector<SegmentationExample> examples = {
      {0, {"Los Angeles", "California", "United States"}},
  };
  auto result = tegra.ExtractWithExamples(lines_, examples);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_columns, 3);
  EXPECT_EQ(result->table.Cell(0, 0), "Los Angeles");
  EXPECT_EQ(result->table.Cell(2, 0), "New York City");
}

TEST_F(RunningExampleTest, BadExampleIsRejected) {
  TegraExtractor tegra(&stats_);
  std::vector<SegmentationExample> examples = {
      {0, {"Los Angeles", "California"}},  // Does not cover all tokens.
  };
  auto result = tegra.ExtractWithExamples(lines_, examples);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(TegraEdgeCases, EmptyListRejected) {
  TegraExtractor tegra(nullptr);
  auto result = tegra.Extract({});
  EXPECT_FALSE(result.ok());
}

TEST(TegraEdgeCases, SingleLineDoesNotCrash) {
  TegraExtractor tegra(nullptr);
  auto result = tegra.ExtractWithColumns({"a b c"}, 2);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.NumRows(), 1u);
  EXPECT_EQ(result->table.NumCols(), 2u);
}

TEST(TegraEdgeCases, LineWithoutTokens) {
  TegraExtractor tegra(nullptr);
  auto result = tegra.ExtractWithColumns({"a b", "   "}, 2);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.NumRows(), 2u);
  EXPECT_EQ(result->table.Cell(1, 0), "");
  EXPECT_EQ(result->table.Cell(1, 1), "");
}

TEST(TegraEdgeCases, MoreColumnsThanTokens) {
  TegraExtractor tegra(nullptr);
  auto result = tegra.ExtractWithColumns({"a b", "c d"}, 4);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.NumCols(), 4u);
}

}  // namespace
}  // namespace tegra
