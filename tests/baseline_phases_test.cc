// Behavioural tests for the baseline phases that Table 4's quality gaps
// hinge on, plus adapter plumbing (per-instance tokenizers reaching the
// algorithms).

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "eval/lists_data.h"
#include "synth/corpus_gen.h"
#include "corpus/column_index.h"

namespace tegra {
namespace {

// ---- ListExtract phase behaviour ---------------------------------------

/// Corpus where every true cell is frequent but a 1-token prefix of the
/// multi-token entity is even more frequent (the §1 trap), and where one
/// column's values are absent entirely.
ColumnIndex PhasesCorpus() {
  ColumnIndex index;
  for (int i = 0; i < 300; ++i) {
    index.AddColumn({"Green", "Red", "Blue"});             // Colors.
    if (i % 6 == 0) {
      index.AddColumn({"Green Bay Packers", "Chicago Bears"});
    }
    index.AddColumn({"filler" + std::to_string(i)});
  }
  index.Finalize();
  return index;
}

TEST(ListExtractPhasesTest, MajorityVoteSetsColumnCount) {
  ColumnIndex index = PhasesCorpus();
  CorpusStats stats(&index);
  ListExtract algo(&stats);
  // Four rows with a clean 2-field structure; one ragged row.
  auto result = algo.Extract({
      "Green 42",
      "Red 17",
      "Blue 99",
      "Green 3",
      "Red 5 stray",
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_columns, 2);
  // The ragged row was re-split to exactly 2 columns.
  EXPECT_EQ(result->table.Row(4).size(), 2u);
}

TEST(ListExtractPhasesTest, NullPaddingForShortRows) {
  ColumnIndex index = PhasesCorpus();
  CorpusStats stats(&index);
  ListExtract algo(&stats);
  auto result = algo.Extract({
      "Green 42 7.5",
      "Red 17 9.1",
      "Blue 99 3.3",
      "Red",  // Short row: must be padded with nulls, not crash.
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_columns, 3);
  size_t nulls = 0;
  for (const auto& cell : result->table.Row(3)) nulls += cell.empty();
  EXPECT_EQ(nulls, 2u);
  // The surviving value is one of the row's tokens.
  bool found = false;
  for (const auto& cell : result->table.Row(3)) found |= (cell == "Red");
  EXPECT_TRUE(found);
}

TEST(ListExtractPhasesTest, TrapSplitsConsistently) {
  // Every row carries the trap entity; phase 1 over-segments it the same
  // way in each row, so the majority vote bakes the error in — the exact
  // mechanism behind the paper's precision gap.
  ColumnIndex index = PhasesCorpus();
  CorpusStats stats(&index);
  ListExtract algo(&stats);
  auto result = algo.Extract({
      "Green Bay Packers 1919",
      "Green Bay Packers 1921",
      "Green Bay Packers 1923",
  });
  ASSERT_TRUE(result.ok());
  // "Green" (a very popular color cell) is carved out of the team name.
  EXPECT_GT(result->num_columns, 2);
}

// ---- Judie cost-model edges ------------------------------------------------

TEST(JudieCostTest, LongestKbMatchPreferred) {
  synth::KnowledgeBase kb;
  kb.AddEntity("Green Bay", "city");
  kb.AddEntity("Green Bay Packers", "team");
  Judie algo(&kb);
  auto result = algo.Extract({
      "Green Bay Packers 1919",
      "Green Bay Packers 1921",
  });
  ASSERT_TRUE(result.ok());
  // The full-entity match is cheaper than entity + stray token.
  EXPECT_EQ(result->table.Cell(0, 0), "Green Bay Packers");
}

TEST(JudieCostTest, NullsUsedWhenColumnsExceedContent) {
  synth::KnowledgeBase kb;
  kb.AddEntity("Boston", "city");
  JudieOptions opts;
  opts.fixed_columns = 3;
  Judie algo(&kb, opts);
  auto result = algo.Extract({"Boston 42", "Boston 17"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_columns, 3);
  size_t nulls = 0;
  for (const auto& cell : result->table.Row(0)) nulls += cell.empty();
  EXPECT_EQ(nulls, 1u);
}

// ---- adapter plumbing --------------------------------------------------------

TEST(AdapterTest, PerInstanceTokenizerReachesAllAlgorithms) {
  // The Lists dataset carries per-list delimiters; every adapter must
  // tokenize with them (a plain whitespace tokenizer would leave ";" glued
  // to cells and score ~0).
  eval::EvalInstance inst;
  inst.index = 0;
  inst.lines = {"a;1", "b;2", "c;3", "d;4"};
  inst.truth = Table({{"a", "1"}, {"b", "2"}, {"c", "3"}, {"d", "4"}});
  inst.tokenizer.punctuation_delimiters = ";";

  const synth::KnowledgeBase kb;
  const eval::SegmentFn fns[] = {
      eval::TegraFn(nullptr),
      eval::ListExtractFn(nullptr),
      eval::JudieFn(&kb),
  };
  for (const auto& fn : fns) {
    Result<Table> table = fn(inst);
    ASSERT_TRUE(table.ok());
    bool has_semicolon = false;
    for (size_t r = 0; r < table->NumRows(); ++r) {
      for (size_t c = 0; c < table->NumCols(); ++c) {
        has_semicolon |=
            table->Cell(r, c).find(';') != std::string::npos;
      }
    }
    EXPECT_FALSE(has_semicolon) << "delimiters leaked into cells";
  }
}

TEST(AdapterTest, SupervisedAdaptersShareExamplePicks) {
  const auto instances = eval::BuildDataset(eval::DatasetId::kWeb, 1);
  const auto a = eval::PickExamples(instances[0], 2, 7);
  const auto b = eval::PickExamples(instances[0], 2, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].line_index, b[i].line_index);
    EXPECT_EQ(a[i].cells, b[i].cells);
  }
}

}  // namespace
}  // namespace tegra
