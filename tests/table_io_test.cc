// Tests for table import/export (CSV, TSV, Markdown).

#include <gtest/gtest.h>

#include "corpus/table_io.h"

namespace tegra {
namespace {

Table Simple() {
  return Table({{"Boston", "645,966"}, {"New Haven", "129,779"}});
}

TEST(TableToCsvTest, QuotesCommasAndQuotes) {
  const std::string csv = TableToCsv(Simple());
  EXPECT_EQ(csv, "Boston,\"645,966\"\nNew Haven,\"129,779\"\n");
}

TEST(TableToCsvTest, EscapesEmbeddedQuotes) {
  Table t(std::vector<std::vector<std::string>>{{"say \"hi\"", "x"}});
  EXPECT_EQ(TableToCsv(t), "\"say \"\"hi\"\"\",x\n");
}

TEST(TableToCsvTest, EmptyCellsStayEmpty) {
  Table t(std::vector<std::vector<std::string>>{{"", "a"}});
  EXPECT_EQ(TableToCsv(t), ",a\n");
}

TEST(TableToTsvTest, ReplacesControlCharacters) {
  Table t(std::vector<std::vector<std::string>>{{"a\tb", "c\nd"}});
  EXPECT_EQ(TableToTsv(t), "a b\tc d\n");
}

TEST(TableToMarkdownTest, DefaultHeaderAndEscaping) {
  Table t(std::vector<std::vector<std::string>>{{"a|b", "c"}});
  const std::string md = TableToMarkdown(t);
  EXPECT_NE(md.find("| col1 | col2 |"), std::string::npos);
  EXPECT_NE(md.find("| --- | --- |"), std::string::npos);
  EXPECT_NE(md.find("a\\|b"), std::string::npos);
}

TEST(TableToMarkdownTest, CustomHeader) {
  const std::string md = TableToMarkdown(Simple(), {"City", "Population"});
  EXPECT_NE(md.find("| City | Population |"), std::string::npos);
}

TEST(CsvToTableTest, RoundTripsArbitraryCells) {
  Table original(std::vector<std::vector<std::string>>{
      {"plain", "with,comma", "with \"quote\""},
      {"", "multi word", "line\nbreak"},
  });
  Result<Table> parsed = CsvToTable(TableToCsv(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->rows(), original.rows());
}

TEST(CsvToTableTest, HandlesCrlfAndMissingTrailingNewline) {
  Result<Table> t = CsvToTable("a,b\r\nc,d");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 2u);
  EXPECT_EQ(t->Cell(1, 1), "d");
}

TEST(CsvToTableTest, RejectsRaggedRows) {
  Result<Table> t = CsvToTable("a,b\nc\n");
  EXPECT_FALSE(t.ok());
  EXPECT_TRUE(t.status().IsInvalidArgument());
}

TEST(CsvToTableTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(CsvToTable("\"abc").ok());
}

TEST(CsvToTableTest, EmptyInputIsEmptyTable) {
  Result<Table> t = CsvToTable("");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 0u);
}

TEST(CsvToTableTest, QuotedFieldWithEmbeddedNewline) {
  Result<Table> t = CsvToTable("\"a\nb\",c\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->Cell(0, 0), "a\nb");
}

TEST(WriteFileTest, WritesAndFailsGracefully) {
  const std::string path = "/tmp/tegra_table_io_test.csv";
  ASSERT_TRUE(WriteFile(path, "a,b\n").ok());
  Result<Table> t = CsvToTable("a,b\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(WriteFile("/nonexistent-dir/x.csv", "x").IsIOError());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tegra
