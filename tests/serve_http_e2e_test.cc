// End-to-end test of the HTTP data plane in the real tegra_serve binary:
// fork/exec the daemon with --port 0, discover the port from the
// {"event":"data_ready"} line, then drive POST /v1/extract over real
// sockets. Covers the acceptance bar of the subsystem:
//
//  * 64 concurrent keep-alive clients with ZERO failed in-flight requests
//    while SIGHUP hot-reloads the corpus underneath them,
//  * batch bodies ({"requests":[...]}) answered in order with ids echoed,
//  * queue saturation surfacing as HTTP 503 + Retry-After (never a reset),
//  * transport deadlines (stalled mid-request -> 408) and queue deadlines
//    (expired deadline_ms -> 408),
//  * /readyz turning 503 with a data-plane reason while the listener sheds.
//
// The binary path is injected at compile time via TEGRA_SERVE_BINARY.

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/http_client.h"
#include "serve_process_util.h"
#include "service/http_admin.h"
#include "service/serve_json.h"
#include "store/snapshot_writer.h"
#include "synth/corpus_gen.h"

namespace tegra {
namespace serve {
namespace {

/// Ports announced by the daemon's ready events, in any order.
struct ReadyPorts {
  int admin = -1;
  int data = -1;
};

ReadyPorts ReadReadyEvents(ServeProcess* daemon, bool expect_admin) {
  ReadyPorts ports;
  const int expected = expect_admin ? 2 : 1;
  for (int i = 0; i < expected; ++i) {
    const std::string line = daemon->NextLine();
    const auto parsed = ParseJson(line);
    EXPECT_TRUE(parsed.ok()) << line;
    if (!parsed.ok()) return ports;
    const std::string event = (*parsed)["event"].AsString();
    const int port = static_cast<int>((*parsed)["port"].AsNumber(0));
    if (event == "admin_ready") {
      ports.admin = port;
    } else if (event == "data_ready") {
      ports.data = port;
    } else {
      ADD_FAILURE() << "unexpected event line: " << line;
    }
  }
  return ports;
}

void Quit(ServeProcess* daemon) {
  ASSERT_TRUE(daemon->WriteLine("{\"cmd\":\"quit\"}"));
  daemon->CloseStdin();
  EXPECT_EQ(daemon->Wait(), 0);
}

TEST(ServeHttpE2eTest, ConcurrentKeepAliveClientsSurviveCorpusReload) {
  const std::string path = testing::TempDir() + "serve_http_e2e_" +
                           std::to_string(::getpid()) + ".idx2";
  {
    const ColumnIndex index =
        synth::BuildBackgroundIndex(synth::CorpusProfile::kWeb, 300, 7);
    const Status written = store::WriteSnapshot(index, path);
    ASSERT_TRUE(written.ok()) << written.ToString();
  }

  ServeProcess daemon;
  ASSERT_TRUE(daemon.Start({"--corpus", path, "--port", "0", "--admin-port",
                            "0", "--workers", "4", "--queue-depth", "256"}));
  const ReadyPorts ports = ReadReadyEvents(&daemon, /*expect_admin=*/true);
  ASSERT_GT(ports.data, 0);
  ASSERT_GT(ports.admin, 0);

  // 64 clients, each holding ONE keep-alive connection across 8 extraction
  // requests, while the main thread SIGHUPs a corpus swap into the middle
  // of the traffic. The acceptance bar: zero failed in-flight requests.
  constexpr int kClients = 64;
  constexpr int kRequestsPerClient = 8;
  std::atomic<int> http_ok{0};
  std::atomic<int> body_ok{0};
  std::atomic<int> failures{0};
  std::atomic<int> extra_connects{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      net::HttpClient client("127.0.0.1", ports.data, /*timeout_ms=*/30000);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const std::string body =
            ExtractionRequestLine(c * 1000 + i, 8, (c + i) % 8);
        auto response = client.Post("/v1/extract", body);
        if (!response.ok()) {
          ++failures;
          ADD_FAILURE() << "client " << c << " request " << i << ": "
                        << response.status().ToString();
          continue;
        }
        if (response.value().status == 200) ++http_ok;
        const auto parsed = ParseJson(response.value().body);
        if (parsed.ok() && (*parsed)["ok"].AsBool(false)) ++body_ok;
      }
      // Keep-alive must hold: every request rode the first dial.
      if (client.connects() != 1) ++extra_connects;
    });
  }

  // Two hot reloads while the fleet is mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(::kill(daemon.pid(), SIGHUP), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(::kill(daemon.pid(), SIGHUP), 0);

  for (auto& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(http_ok.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(body_ok.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(extra_connects.load(), 0)
      << extra_connects.load() << " clients needed a reconnect";

  // The reloads actually happened (generation climbed past the initial 1).
  const auto varz = HttpGet(ports.admin, "/varz");
  ASSERT_TRUE(varz.ok()) << varz.status().ToString();
  const auto parsed = ParseJson(varz->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_GE((*parsed)["gauges"]["corpus.generation"].AsNumber(0), 2);
  // The data plane's own gauges are in the same registry.
  EXPECT_GE((*parsed)["counters"]["net.requests_total"].AsNumber(0),
            kClients * kRequestsPerClient);

  Quit(&daemon);
  std::remove(path.c_str());
}

TEST(ServeHttpE2eTest, BatchBodiesAndErrorMapping) {
  ServeProcess daemon;
  ASSERT_TRUE(daemon.Start(
      {"--build-corpus", "web:200:1", "--port", "0", "--workers", "2"}));
  const ReadyPorts ports = ReadReadyEvents(&daemon, /*expect_admin=*/false);
  ASSERT_GT(ports.data, 0);

  net::HttpClient client("127.0.0.1", ports.data, /*timeout_ms=*/30000);

  // Batch of three: one response per item, ids echoed, order preserved.
  std::string batch = "{\"requests\":[";
  for (int i = 0; i < 3; ++i) {
    if (i > 0) batch += ",";
    batch += ExtractionRequestLine(100 + i, 8, i);
  }
  batch += "]}";
  auto response = client.Post("/v1/extract", batch);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 200);
  const auto parsed = ParseJson(response.value().body);
  ASSERT_TRUE(parsed.ok()) << response.value().body;
  EXPECT_TRUE((*parsed)["ok"].AsBool(false));
  const auto& responses = (*parsed)["responses"].AsArray();
  ASSERT_EQ(responses.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(responses[i]["ok"].AsBool(false)) << responses[i].Dump();
    EXPECT_EQ(responses[i]["id"].AsNumber(0), 100 + i);
  }

  // Error mapping, all on the same keep-alive connection.
  auto bad_json = client.Post("/v1/extract", "{not json");
  ASSERT_TRUE(bad_json.ok());
  EXPECT_EQ(bad_json.value().status, 400);

  auto no_lines = client.Post("/v1/extract", "{\"lines\":[]}");
  ASSERT_TRUE(no_lines.ok());
  EXPECT_EQ(no_lines.value().status, 400);

  auto bad_item = client.Post("/v1/extract",
                              "{\"requests\":[{\"lines\":[\"a b c\"]},{}]}");
  ASSERT_TRUE(bad_item.ok());
  EXPECT_EQ(bad_item.value().status, 400);  // All-or-nothing admission.

  auto empty_batch = client.Post("/v1/extract", "{\"requests\":[]}");
  ASSERT_TRUE(empty_batch.ok());
  EXPECT_EQ(empty_batch.value().status, 400);

  auto wrong_method = client.Get("/v1/extract");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method.value().status, 405);

  auto wrong_path = client.Post("/v2/nope", "{}");
  ASSERT_TRUE(wrong_path.ok());
  EXPECT_EQ(wrong_path.value().status, 404);

  EXPECT_EQ(client.connects(), 1u);
  Quit(&daemon);
}

TEST(ServeHttpE2eTest, QueueSaturationSurfacesAs503NotResets) {
  // One worker, a one-deep queue: a burst of concurrent extractions MUST
  // split into 200s and explicit 503+Retry-After rejections — transport
  // errors (resets, dropped connections) are the failure mode this
  // subsystem exists to prevent.
  ServeProcess daemon;
  ASSERT_TRUE(daemon.Start({"--build-corpus", "web:200:1", "--port", "0",
                            "--workers", "1", "--queue-depth", "1"}));
  const ReadyPorts ports = ReadReadyEvents(&daemon, /*expect_admin=*/false);
  ASSERT_GT(ports.data, 0);

  constexpr int kBurst = 24;
  std::atomic<int> ok_200{0};
  std::atomic<int> shed_503{0};
  std::atomic<int> missing_retry_after{0};
  std::atomic<int> transport_errors{0};
  std::atomic<int> other_status{0};
  std::vector<std::thread> burst;
  burst.reserve(kBurst);
  for (int c = 0; c < kBurst; ++c) {
    burst.emplace_back([&, c] {
      net::HttpClient client("127.0.0.1", ports.data, /*timeout_ms=*/30000);
      const std::string body = ExtractionRequestLine(c, 32, c % 8);
      auto response = client.Post("/v1/extract", body);
      if (!response.ok()) {
        ++transport_errors;
        return;
      }
      if (response.value().status == 200) {
        ++ok_200;
      } else if (response.value().status == 503) {
        ++shed_503;
        if (response.value().Header("retry-after").empty()) {
          ++missing_retry_after;
        }
        const auto parsed = ParseJson(response.value().body);
        if (parsed.ok()) {
          EXPECT_EQ((*parsed)["code"].AsString(), "Unavailable")
              << response.value().body;
        }
      } else {
        ++other_status;
      }
    });
  }
  for (auto& thread : burst) thread.join();

  EXPECT_EQ(transport_errors.load(), 0);
  EXPECT_EQ(other_status.load(), 0);
  EXPECT_GT(ok_200.load(), 0);
  EXPECT_GT(shed_503.load(), 0) << "burst never saturated the queue";
  EXPECT_EQ(missing_retry_after.load(), 0);
  EXPECT_EQ(ok_200.load() + shed_503.load(), kBurst);
  Quit(&daemon);
}

TEST(ServeHttpE2eTest, DeadlinesTransportAndQueue) {
  ServeProcess daemon;
  ASSERT_TRUE(daemon.Start({"--build-corpus", "web:200:1", "--port", "0",
                            "--io-timeout-ms", "200", "--workers", "1",
                            "--queue-depth", "16"}));
  const ReadyPorts ports = ReadReadyEvents(&daemon, /*expect_admin=*/false);
  ASSERT_GT(ports.data, 0);

  // Transport deadline: declare a body, stall mid-request -> 408.
  {
    net::HttpClient staller("127.0.0.1", ports.data, /*timeout_ms=*/10000);
    auto response = staller.RoundTrip(
        "POST /v1/extract HTTP/1.1\r\nContent-Length: 500\r\n\r\nstall");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status, 408);
  }

  // Queue deadline: pile a backlog of heavy extractions onto the single
  // worker, then submit one whose 1ms deadline is guaranteed to expire
  // while it waits in the admission queue; it must come back 408
  // kDeadlineExceeded, never hang and never silently run late.
  constexpr int kHeavies = 8;
  std::vector<std::thread> heavies;
  heavies.reserve(kHeavies);
  for (int i = 0; i < kHeavies; ++i) {
    heavies.emplace_back([&, i] {
      net::HttpClient client("127.0.0.1", ports.data, /*timeout_ms=*/60000);
      auto response =
          client.Post("/v1/extract", ExtractionRequestLine(i, 256, i % 8));
      EXPECT_TRUE(response.ok());
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  net::HttpClient client("127.0.0.1", ports.data, /*timeout_ms=*/60000);
  auto expired = client.Post(
      "/v1/extract",
      "{\"id\":99,\"lines\":[\"Boston Massachusetts 645,966\"],"
      "\"deadline_ms\":1,\"bypass_cache\":true}");
  for (auto& heavy : heavies) heavy.join();
  ASSERT_TRUE(expired.ok()) << expired.status().ToString();
  EXPECT_EQ(expired.value().status, 408);
  const auto parsed = ParseJson(expired.value().body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)["code"].AsString(), "DeadlineExceeded")
      << expired.value().body;
  Quit(&daemon);
}

TEST(ServeHttpE2eTest, ReadyzReportsDataPlaneSaturation) {
  ServeProcess daemon;
  ASSERT_TRUE(daemon.Start({"--build-corpus", "web:200:1", "--port", "0",
                            "--admin-port", "0", "--max-connections", "1"}));
  const ReadyPorts ports = ReadReadyEvents(&daemon, /*expect_admin=*/true);
  ASSERT_GT(ports.data, 0);
  ASSERT_GT(ports.admin, 0);

  // Ready while the one connection slot is free.
  auto ready = HttpGet(ports.admin, "/readyz");
  ASSERT_TRUE(ready.ok()) << ready.status().ToString();
  EXPECT_EQ(ready->status, 200) << ready->body;

  // Hold the slot with a keep-alive connection: the listener is saturated,
  // and /readyz must say so (load balancers drain on this).
  net::HttpClient holder("127.0.0.1", ports.data, /*timeout_ms=*/30000);
  ASSERT_TRUE(holder.Post("/v1/extract", ExtractionRequestLine(1, 4, 0)).ok());
  auto saturated = HttpGet(ports.admin, "/readyz");
  ASSERT_TRUE(saturated.ok()) << saturated.status().ToString();
  EXPECT_EQ(saturated->status, 503) << saturated->body;
  EXPECT_NE(saturated->body.find("data plane"), std::string::npos)
      << saturated->body;

  // And /statusz renders the data-plane section.
  auto statusz = HttpGet(ports.admin, "/statusz");
  ASSERT_TRUE(statusz.ok());
  EXPECT_NE(statusz->body.find("data plane"), std::string::npos);

  holder.Close();
  Quit(&daemon);
}

}  // namespace
}  // namespace serve
}  // namespace tegra
