#!/usr/bin/env bash
# Overload smoke drill: boot tegra_serve with the qos ladder armed, push the
# data plane to 2x its measured capacity with tegra_loadgen's overload mode,
# and require
#   (a) p99 latency under 2 s and >= 99% non-503 availability at 2x — the
#       ladder absorbs the overload by degrading quality, not by shedding,
#   (b) at least one response actually served from a degraded rung (the
#       per-rung columns in BENCH_overload.json are non-trivial),
#   (c) the controller's own account agrees: /qosz reports escalations > 0,
#   (d) a clean daemon shutdown via {"cmd":"quit"} (exit code 0).
# The per-rung latency / SP-score columns land in BENCH_overload.json next
# to the build dir so CI can archive them.
#
# Usage: scripts/overload_smoke.sh [build-dir]

set -euo pipefail

BUILD="${1:-build}"
BENCH="$BUILD/BENCH_overload.json"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

mkfifo "$WORK/stdin"
# Two workers and a queue deep enough to hold every in-flight client (so
# nothing 503s) but shallow enough that the queue-fraction signal fires
# well before it fills. Aggressive controller timings keep the drill short.
"$BUILD/tools/tegra_serve" --build-corpus web:300:1 --port 0 --workers 2 \
  --admin-port 0 --queue-depth 64 --health-interval-ms 100 \
  --qos on --qos-target-queue-fraction 0.1 \
  --qos-escalate-hold-ms 200 --qos-recover-hold-ms 500 \
  < "$WORK/stdin" > "$WORK/stdout.ndjson" 2> "$WORK/stderr.log" &
SERVE_PID=$!
# Hold the fifo's write end open so the daemon's stdin never sees EOF
# before we send quit.
exec 9> "$WORK/stdin"

read_port() {
  python3 -c '
import json, sys
try:
    for line in open(sys.argv[1]):
        obj = json.loads(line)
        if obj.get("event") == sys.argv[2]:
            print(obj["port"])
            break
except (FileNotFoundError, ValueError):
    pass
' "$WORK/stdout.ndjson" "$1"
}
PORT=""
ADMIN_PORT=""
for _ in $(seq 1 150); do
  PORT=$(read_port data_ready)
  ADMIN_PORT=$(read_port admin_ready)
  [[ -n "$PORT" && -n "$ADMIN_PORT" ]] && break
  sleep 0.2
done
if [[ -z "$PORT" || -z "$ADMIN_PORT" ]]; then
  echo "FAIL: no ready events from tegra_serve" >&2
  cat "$WORK/stderr.log" >&2
  exit 1
fi
echo "data plane up on port $PORT, admin on $ADMIN_PORT"

# 2x overload with a two-tenant mix; the loadgen itself enforces the p99
# and availability bars (exit 3 on violation). 16-line bodies with
# bypass_cache make every request do real extraction work (a warm cache or
# HTTP-bound tiny bodies would hide the ladder), and the probe runs at
# worker-count concurrency so it measures full-quality capacity without
# tripping the ladder itself.
"$BUILD/tools/tegra_loadgen" --port "$PORT" --overload-factor 2 \
  --probe-s 3 --probe-connections 2 --duration-s 8 --connections 32 \
  --lines 16 --bypass-cache --tenant-mix "alpha:3,beta:1" \
  --assert-p99-ms 2000 --assert-availability 0.99 --out "$BENCH"

# The per-rung columns must show the ladder actually engaged.
python3 -c '
import json, sys
bench = json.load(open(sys.argv[1]))
assert bench["bench"] == "overload", "wrong bench shape"
step = bench["steps"][-1]
assert step["http_2xx"] > 0, "no successful extractions at 2x overload"
degraded = sum(r["count"] for r in step["rungs"] if r["rung"] > 0)
assert degraded > 0, "2x overload never reached a degraded rung"
tenants = {t["tenant"]: t for t in step.get("tenants", [])}
assert set(tenants) == {"alpha", "beta"}, "tenant mix missing: %r" % tenants
for rung in step["rungs"]:
    print("  rung %d: %6d requests  p99 %8.2fms  mean_sp %.4f"
          % (rung["rung"], rung["count"], rung["p99_ms"], rung["mean_sp"]))
print("overload OK: %.1f qps capacity, %d degraded responses, "
      "availability %.4f, p99 %.1fms"
      % (bench["capacity_qps"], degraded, step["availability"],
         step["p99_ms"]))
' "$BENCH"

# The controller saw the same episode from the inside.
python3 -c '
import json, sys, urllib.request
url = "http://127.0.0.1:%s/qosz?format=json" % sys.argv[1]
with urllib.request.urlopen(url, timeout=5) as r:
    qosz = json.loads(r.read().decode())
ladder = qosz["ladder"]
assert ladder["escalations"] > 0, "controller recorded no escalations"
assert ladder["degraded_seconds"] > 0, "no time accounted at rung > 0"
print("qosz OK: %d escalations, %d recoveries, %.1fs degraded, rung now %d"
      % (ladder["escalations"], ladder["recoveries"],
         ladder["degraded_seconds"], ladder["rung"]))
' "$ADMIN_PORT"

# Clean shutdown: quit drains in-flight work and must exit 0.
echo '{"cmd":"quit"}' >&9
exec 9>&-
wait "$SERVE_PID"
SERVE_PID=""
echo "clean shutdown OK"
