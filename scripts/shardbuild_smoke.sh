#!/usr/bin/env bash
# Sharded-corpus lifecycle drill, run in CI through the *shipped binaries*:
#
#   1. build a monolithic snapshot of specs A+B and take its digest
#   2. build a sharded directory of spec A only, then `append` spec B as a
#      delta overlay — digest must now equal the monolithic build
#   3. `verify` and `stats` must accept the sharded directory
#   4. `compact` folds the overlay into the shards — digest unchanged,
#      overlay count back to zero
#
# This proves the bit-identity contract (sharded + overlays == monolithic)
# end to end through tegra_corpusctl, complementing shard_test's unit-level
# digest checks.
#
# Usage: scripts/shardbuild_smoke.sh BUILD_DIR [SPEC_A] [SPEC_B]

set -euo pipefail

BUILD_DIR="${1:?usage: shardbuild_smoke.sh BUILD_DIR [SPEC_A] [SPEC_B]}"
SPEC_A="${2:-web:300:1}"
SPEC_B="${3:-web:60:2}"
CORPUSCTL="$BUILD_DIR/tools/tegra_corpusctl"

if [[ ! -x "$CORPUSCTL" ]]; then
  echo "FATAL: $CORPUSCTL not found (build the tegra_corpusctl target first)" >&2
  exit 2
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== monolithic build ($SPEC_A,$SPEC_B) =="
"$CORPUSCTL" build "$SPEC_A,$SPEC_B" "$WORK/mono.idx2"
MONO_DIGEST="$("$CORPUSCTL" digest "$WORK/mono.idx2")"
echo "$MONO_DIGEST"

echo "== sharded build ($SPEC_A) + overlay append ($SPEC_B) =="
"$CORPUSCTL" build-sharded "$SPEC_A" "$WORK/sharded" --shards 4
"$CORPUSCTL" append "$WORK/sharded" "$SPEC_B"

echo "== verify + stats (sharded directory) =="
"$CORPUSCTL" verify "$WORK/sharded"
"$CORPUSCTL" stats "$WORK/sharded"

echo "== digest diff: sharded+overlay vs monolithic =="
SHARDED_DIGEST="$("$CORPUSCTL" digest "$WORK/sharded")"
echo "$SHARDED_DIGEST"
if [[ "$MONO_DIGEST" != "$SHARDED_DIGEST" ]]; then
  echo "FATAL: sharded+overlay digest differs from monolithic" >&2
  exit 1
fi

echo "== compact =="
"$CORPUSCTL" compact "$WORK/sharded"
if ls "$WORK/sharded" | grep -q '^overlay-'; then
  echo "FATAL: compact left overlay files behind" >&2
  exit 1
fi
COMPACT_DIGEST="$("$CORPUSCTL" digest "$WORK/sharded")"
echo "$COMPACT_DIGEST"
if [[ "$MONO_DIGEST" != "$COMPACT_DIGEST" ]]; then
  echo "FATAL: compaction changed the corpus digest" >&2
  exit 1
fi
"$CORPUSCTL" verify "$WORK/sharded"

echo "OK: sharded + overlay + compacted builds are all digest-identical to the monolithic snapshot."
