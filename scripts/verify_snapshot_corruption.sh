#!/usr/bin/env bash
# End-to-end corruption drill for the TGRAIDX2 snapshot format, run in CI:
#
#   1. build a synthetic corpus snapshot with tegra_corpusctl
#   2. `verify` must accept the pristine file
#   3. flip exactly one byte somewhere in the payload
#   4. `verify` must now FAIL and name Corruption
#
# This proves the integrity chain end to end through the *shipped binaries*,
# not just the unit tests: writer -> checksums -> verifier.
#
# Usage: scripts/verify_snapshot_corruption.sh BUILD_DIR [SPEC]
#   BUILD_DIR  a cmake build tree containing tools/tegra_corpusctl
#   SPEC       corpus spec, default web:500:1

set -euo pipefail

BUILD_DIR="${1:?usage: verify_snapshot_corruption.sh BUILD_DIR [SPEC]}"
SPEC="${2:-web:500:1}"
CORPUSCTL="$BUILD_DIR/tools/tegra_corpusctl"

if [[ ! -x "$CORPUSCTL" ]]; then
  echo "FATAL: $CORPUSCTL not found (build the tegra_corpusctl target first)" >&2
  exit 2
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
SNAP="$WORK/corpus.idx2"

echo "== build =="
"$CORPUSCTL" build "$SPEC" "$SNAP"

echo "== verify (pristine) =="
"$CORPUSCTL" verify "$SNAP"

# Flip one byte at 2/3 of the file — deep inside the section payloads, past
# the header and section table, so the failure must come from a section CRC
# or deep-decode check rather than trivial structural validation.
SIZE="$(stat -c %s "$SNAP")"
OFFSET="$((SIZE * 2 / 3))"
echo "== corrupt: flipping one byte at offset $OFFSET of $SIZE =="
ORIGINAL="$(dd if="$SNAP" bs=1 skip="$OFFSET" count=1 2>/dev/null | od -An -tu1 | tr -d ' ')"
FLIPPED="$((ORIGINAL ^ 0x40))"
printf "$(printf '\\%03o' "$FLIPPED")" |
  dd of="$SNAP" bs=1 seek="$OFFSET" count=1 conv=notrunc 2>/dev/null

echo "== verify (corrupted) must fail with Corruption =="
set +e
OUTPUT="$("$CORPUSCTL" verify "$SNAP" 2>&1)"
STATUS=$?
set -e
echo "$OUTPUT"
if [[ "$STATUS" -eq 0 ]]; then
  echo "FATAL: verifier accepted a corrupted snapshot" >&2
  exit 1
fi
if ! grep -q "Corruption" <<< "$OUTPUT"; then
  echo "FATAL: verifier failed but did not report Corruption" >&2
  exit 1
fi

echo "OK: single-byte corruption detected and reported as Corruption."
