#!/usr/bin/env bash
# End-to-end corruption drill for the TGRAIDX2 snapshot format, run in CI:
#
#   1. build a synthetic corpus snapshot with tegra_corpusctl
#   2. `verify` must accept the pristine file
#   3. flip exactly one byte somewhere in the payload
#   4. `verify` must now FAIL and name Corruption
#
# The same drill then runs against a *sharded* corpus directory (with a
# delta overlay): one flipped byte in a shard body, in the overlay body, or
# in MANIFEST.tgrs must each make `verify` fail with Corruption, and the
# restored directory must verify clean again.
#
# This proves the integrity chain end to end through the *shipped binaries*,
# not just the unit tests: writer -> checksums -> verifier.
#
# Usage: scripts/verify_snapshot_corruption.sh BUILD_DIR [SPEC]
#   BUILD_DIR  a cmake build tree containing tools/tegra_corpusctl
#   SPEC       corpus spec, default web:500:1

set -euo pipefail

BUILD_DIR="${1:?usage: verify_snapshot_corruption.sh BUILD_DIR [SPEC]}"
SPEC="${2:-web:500:1}"
CORPUSCTL="$BUILD_DIR/tools/tegra_corpusctl"

if [[ ! -x "$CORPUSCTL" ]]; then
  echo "FATAL: $CORPUSCTL not found (build the tegra_corpusctl target first)" >&2
  exit 2
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
SNAP="$WORK/corpus.idx2"

echo "== build =="
"$CORPUSCTL" build "$SPEC" "$SNAP"

echo "== verify (pristine) =="
"$CORPUSCTL" verify "$SNAP"

# Flip one byte at 2/3 of the file — deep inside the section payloads, past
# the header and section table, so the failure must come from a section CRC
# or deep-decode check rather than trivial structural validation.
SIZE="$(stat -c %s "$SNAP")"
OFFSET="$((SIZE * 2 / 3))"
echo "== corrupt: flipping one byte at offset $OFFSET of $SIZE =="
ORIGINAL="$(dd if="$SNAP" bs=1 skip="$OFFSET" count=1 2>/dev/null | od -An -tu1 | tr -d ' ')"
FLIPPED="$((ORIGINAL ^ 0x40))"
printf "$(printf '\\%03o' "$FLIPPED")" |
  dd of="$SNAP" bs=1 seek="$OFFSET" count=1 conv=notrunc 2>/dev/null

echo "== verify (corrupted) must fail with Corruption =="
set +e
OUTPUT="$("$CORPUSCTL" verify "$SNAP" 2>&1)"
STATUS=$?
set -e
echo "$OUTPUT"
if [[ "$STATUS" -eq 0 ]]; then
  echo "FATAL: verifier accepted a corrupted snapshot" >&2
  exit 1
fi
if ! grep -q "Corruption" <<< "$OUTPUT"; then
  echo "FATAL: verifier failed but did not report Corruption" >&2
  exit 1
fi

echo "OK: single-byte corruption detected and reported as Corruption."

# ---------------------------------------------------------------------------
# Sharded-directory drills: the same one-byte guarantee must hold for every
# file class in a sharded corpus (shard body, overlay body, manifest).
# ---------------------------------------------------------------------------

SHARDED="$WORK/sharded"
echo "== build sharded + overlay =="
"$CORPUSCTL" build-sharded "$SPEC" "$SHARDED" --shards 4
"$CORPUSCTL" append "$SHARDED" web:50:2

echo "== verify (pristine sharded directory) =="
"$CORPUSCTL" verify "$SHARDED"

# Flips one byte at 2/3 of FILE, requires verify to fail with Corruption,
# then restores the original bytes and requires verify to pass again.
corrupt_drill() {
  local file="$1" label="$2"
  local size offset original flipped output status
  size="$(stat -c %s "$file")"
  offset="$((size * 2 / 3))"
  echo "== corrupt ($label): flipping one byte at offset $offset of $size =="
  cp "$file" "$file.pristine"
  original="$(dd if="$file" bs=1 skip="$offset" count=1 2>/dev/null |
    od -An -tu1 | tr -d ' ')"
  flipped="$((original ^ 0x40))"
  printf "$(printf '\\%03o' "$flipped")" |
    dd of="$file" bs=1 seek="$offset" count=1 conv=notrunc 2>/dev/null
  set +e
  output="$("$CORPUSCTL" verify "$SHARDED" 2>&1)"
  status=$?
  set -e
  echo "$output"
  if [[ "$status" -eq 0 ]]; then
    echo "FATAL: verifier accepted a sharded corpus with a corrupted $label" >&2
    exit 1
  fi
  if ! grep -q "Corruption" <<< "$output"; then
    echo "FATAL: $label corruption detected but not reported as Corruption" >&2
    exit 1
  fi
  mv "$file.pristine" "$file"
  "$CORPUSCTL" verify "$SHARDED"
}

corrupt_drill "$(ls "$SHARDED"/shard-00001-*.idx2)" "shard body"
corrupt_drill "$(ls "$SHARDED"/overlay-*.idx2)" "overlay body"
corrupt_drill "$SHARDED/MANIFEST.tgrs" "manifest"

echo "OK: shard, overlay, and manifest corruption all detected and reported as Corruption."
