#!/usr/bin/env bash
# Profiling smoke drill: boot tegra_serve with both planes, the 99 Hz SIGPROF
# sampler and a wide-event access log; run a tegra_loadgen burst that
# concurrently captures GET /pprof/profile; then require
#   (a) a non-empty folded-stack profile whose frames symbolize into tegra
#       code (frame-pointer walk + dladdr working end to end),
#   (b) at least one OpenMetrics exemplar on /metrics?format=openmetrics,
#   (c) a non-empty access log with one parseable JSON object per line,
#   (d) a clean daemon shutdown via {"cmd":"quit"} (exit code 0).
# The folded profile lands in BENCH_profile.folded next to the build dir so
# CI can archive it (flamegraph.pl / speedscope ingest it directly).
#
# Usage: scripts/profile_smoke.sh [build-dir]

set -euo pipefail

BUILD="${1:-build}"
PROFILE="$BUILD/BENCH_profile.folded"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

mkfifo "$WORK/stdin"
"$BUILD/tools/tegra_serve" --build-corpus web:300:1 --port 0 --admin-port 0 \
  --workers 4 --profile-hz 99 \
  --access-log "$WORK/access.jsonl" --access-log-sample 1.0 \
  < "$WORK/stdin" > "$WORK/stdout.ndjson" 2> "$WORK/stderr.log" &
SERVE_PID=$!
# Hold the fifo's write end open so the daemon's stdin never sees EOF
# before we send quit.
exec 9> "$WORK/stdin"

# Wait for both ready announcements: data_ready and admin_ready.
PORTS=""
for _ in $(seq 1 150); do
  PORTS=$(python3 -c '
import json, sys
data = admin = None
try:
    for line in open(sys.argv[1]):
        obj = json.loads(line)
        if obj.get("event") == "data_ready":
            data = obj["port"]
        elif obj.get("event") == "admin_ready":
            admin = obj["port"]
except (FileNotFoundError, ValueError):
    pass
if data is not None and admin is not None:
    print(data, admin)
' "$WORK/stdout.ndjson")
  [[ -n "$PORTS" ]] && break
  sleep 0.2
done
if [[ -z "$PORTS" ]]; then
  echo "FAIL: no data_ready/admin_ready events from tegra_serve" >&2
  cat "$WORK/stderr.log" >&2
  exit 1
fi
DATA_PORT="${PORTS% *}"
ADMIN_PORT="${PORTS#* }"
echo "data plane on port $DATA_PORT, admin plane on port $ADMIN_PORT"

# A burst long enough to give the CPU-time-driven sampler material (cache
# bypassed so every request runs a real extraction), with a concurrent 2.5s
# profile capture through the admin plane.
"$BUILD/tools/tegra_loadgen" --port "$DATA_PORT" --qps 300 --duration-s 4 \
  --connections 8 --bypass-cache --out "$WORK/BENCH_loadgen.json" \
  --admin-port "$ADMIN_PORT" --profile-seconds 2.5 --profile-out "$PROFILE"

# (a) The folded profile must be non-empty and symbolize tegra frames. The
# corpus-statistics hot path (CoOccurrence*) should usually dominate; warn
# rather than fail on its absence since inlining can fold it away.
python3 -c '
import sys
lines = [l for l in open(sys.argv[1]).read().splitlines() if l.strip()]
assert lines, "empty folded profile"
stacks = [l for l in lines if ";" in l]
assert stacks, "no multi-frame stacks in profile"
tegra = [l for l in lines if "tegra" in l]
assert tegra, "no tegra frames symbolized in profile"
total = sum(int(l.rsplit(" ", 1)[1]) for l in lines)
print("profile OK: %d folded stacks, %d samples, %d tegra-attributed lines"
      % (len(lines), total, len(tegra)))
if not any("CoOccurrence" in l for l in lines):
    print("note: no CoOccurrence* frame (inlined or load too light)")
' "$PROFILE"

# (b) OpenMetrics exposition carries at least one exemplar.
curl -fsS "http://127.0.0.1:$ADMIN_PORT/metrics?format=openmetrics" \
  > "$WORK/openmetrics.txt"
python3 -c '
import sys
text = open(sys.argv[1]).read()
assert text.rstrip().endswith("# EOF"), "missing OpenMetrics EOF marker"
exemplars = [l for l in text.splitlines() if "# {trace_id=" in l]
assert exemplars, "no exemplars in OpenMetrics exposition"
print("exemplars OK: %d buckets carry exemplars" % len(exemplars))
' "$WORK/openmetrics.txt"

# (c) Clean shutdown: quit drains in-flight work and must exit 0.
echo '{"cmd":"quit"}' >&9
exec 9>&-
wait "$SERVE_PID"
SERVE_PID=""
echo "clean shutdown OK"

# (d) After the shutdown flush, the wide-event access log has one parseable
# JSON object per line. (Checked post-exit on purpose: libc block-buffers
# the sink, so mid-run reads can see a torn final line.)
python3 -c '
import json, sys
lines = [l for l in open(sys.argv[1]).read().splitlines() if l.strip()]
assert lines, "empty access log"
for line in lines:
    obj = json.loads(line)
    assert obj["endpoint"] == "/v1/extract", line
print("access log OK: %d wide events" % len(lines))
' "$WORK/access.jsonl"
