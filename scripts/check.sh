#!/usr/bin/env bash
# Repo-wide check harness: builds and tests every supported configuration so
# the tracing subsystem stays green both compiled-in and compiled-out, and
# the concurrency-sensitive code (histograms, trace ring, thread pool,
# serving layer) is exercised under ThreadSanitizer.
#
# Configurations:
#   1. default        — TEGRA_TRACE=ON, full ctest suite
#   2. trace-off      — TEGRA_TRACE=OFF (spans compile to no-op stubs); the
#                       full suite must still pass, proving nothing depends
#                       on tracing being compiled in
#   3. tsan           — TEGRA_SANITIZE=thread; runs the `service`, `trace`,
#                       `store`, `net`, `prof` and `qos` ctest labels plus
#                       the metrics/stress tests, the suites with real
#                       cross-thread traffic (store_test races readers
#                       against corpus hot swaps; the net suite runs the
#                       event loop against concurrent clients; the prof
#                       suite fires SIGPROF into a live thread pool; the
#                       qos suite hammers the controller and tenant
#                       buckets from concurrent admission threads)
#
# Usage:
#   scripts/check.sh            # all three configurations
#   scripts/check.sh default    # just one (default | trace-off | tsan)
#
# Each configuration gets its own build directory (build-check-*) so this
# never clobbers an existing developer `build/`.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
ONLY="${1:-all}"

run() { echo "+ $*" >&2; "$@"; }

configure_and_build() {
  local name="$1"
  shift
  local dir="$ROOT/build-check-$name"
  echo "=== [$name] configure ==="
  run cmake -B "$dir" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@" \
    > /dev/null
  echo "=== [$name] build ==="
  run cmake --build "$dir" -j "$JOBS" > /dev/null
}

if [[ "$ONLY" == "all" || "$ONLY" == "default" ]]; then
  configure_and_build default -DTEGRA_TRACE=ON
  echo "=== [default] test (full suite) ==="
  (cd "$ROOT/build-check-default" && run ctest --output-on-failure)
  echo "=== [default] OK ==="
fi

if [[ "$ONLY" == "all" || "$ONLY" == "trace-off" ]]; then
  configure_and_build trace-off -DTEGRA_TRACE=OFF
  echo "=== [trace-off] test (full suite) ==="
  (cd "$ROOT/build-check-trace-off" && run ctest --output-on-failure)
  echo "=== [trace-off] OK ==="
fi

if [[ "$ONLY" == "all" || "$ONLY" == "tsan" ]]; then
  # TSan build: run the suites with genuine multi-threaded traffic. The
  # trace label covers the span ring + cross-thread context handoff; the
  # service label covers the worker pool, caches and metrics; the store
  # label races concurrent corpus readers against hot-reload swaps; the
  # net label drives the event-loop HTTP server with concurrent clients
  # and foreign-thread completions; stress_test and metrics_test hammer
  # the histogram CAS paths; the prof label delivers SIGPROF into busy
  # worker threads while captures drain the sample rings; the qos label
  # covers the degradation controller (health tick vs request threads)
  # and the tenant bucket map under concurrent admission checks.
  configure_and_build tsan -DTEGRA_SANITIZE=thread -DTEGRA_TRACE=ON
  echo "=== [tsan] test (service/trace/store/net/prof/qos labels, metrics/stress) ==="
  (cd "$ROOT/build-check-tsan" &&
    run ctest --output-on-failure --timeout 600 -L 'service|trace|store|net|prof|qos' &&
    run ctest --output-on-failure --timeout 600 -R 'metrics_test|stress_test')
  echo "=== [tsan] OK ==="
fi

echo "All requested configurations passed."
