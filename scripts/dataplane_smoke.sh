#!/usr/bin/env bash
# Data-plane smoke drill: boot tegra_serve with an ephemeral --port, run a
# short open-loop tegra_loadgen sweep against POST /v1/extract, and require
#   (a) a non-zero count of successful (HTTP 2xx, "ok":true) extractions,
#   (b) zero transport errors (saturation must surface as 503, not resets),
#   (c) the health recorder saw the traffic: /timeseriesz carries a
#       non-empty service.requests_total series and /alertz parses,
#   (d) an injected worker stall trips the watchdog exactly once, with a
#       folded stack archived as STALL_stack.folded,
#   (e) a clean daemon shutdown via {"cmd":"quit"} (exit code 0).
# The latency curves land in BENCH_dataplane.json, the client-side
# per-second series in BENCH_dataplane_series.json, next to the build dir
# so CI can archive them.
#
# Usage: scripts/dataplane_smoke.sh [build-dir]

set -euo pipefail

BUILD="${1:-build}"
BENCH="$BUILD/BENCH_dataplane.json"
SERIES="$BUILD/BENCH_dataplane_series.json"
STALL_STACK="$BUILD/STALL_stack.folded"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

mkfifo "$WORK/stdin"
"$BUILD/tools/tegra_serve" --build-corpus web:300:1 --port 0 --workers 4 \
  --admin-port 0 --health-interval-ms 200 --stall-threshold-ms 500 \
  < "$WORK/stdin" > "$WORK/stdout.ndjson" 2> "$WORK/stderr.log" &
SERVE_PID=$!
# Hold the fifo's write end open so the daemon's stdin never sees EOF
# before we send quit.
exec 9> "$WORK/stdin"

# Wait for the data_ready / admin_ready announcements.
read_port() {
  python3 -c '
import json, sys
try:
    for line in open(sys.argv[1]):
        obj = json.loads(line)
        if obj.get("event") == sys.argv[2]:
            print(obj["port"])
            break
except (FileNotFoundError, ValueError):
    pass
' "$WORK/stdout.ndjson" "$1"
}
PORT=""
ADMIN_PORT=""
for _ in $(seq 1 150); do
  PORT=$(read_port data_ready)
  ADMIN_PORT=$(read_port admin_ready)
  [[ -n "$PORT" && -n "$ADMIN_PORT" ]] && break
  sleep 0.2
done
if [[ -z "$PORT" || -z "$ADMIN_PORT" ]]; then
  echo "FAIL: no ready events from tegra_serve" >&2
  cat "$WORK/stderr.log" >&2
  exit 1
fi
echo "data plane up on port $PORT, admin on $ADMIN_PORT"

"$BUILD/tools/tegra_loadgen" --port "$PORT" --qps 50,200 --duration-s 2 \
  --connections 8 --out "$BENCH" --series-out "$SERIES"

python3 -c '
import json, sys
bench = json.load(open(sys.argv[1]))
ok = sum(step["http_2xx"] for step in bench["steps"])
errors = sum(step["transport_errors"] for step in bench["steps"])
assert ok > 0, "no successful extractions served"
assert errors == 0, "%d transport errors (expected explicit 503s)" % errors
print("smoke OK: %d successful extractions, p99 %.2fms at %d qps"
      % (ok, bench["steps"][-1]["p99_ms"], bench["steps"][-1]["offered_qps"]))
' "$BENCH"

# The client-side per-second series must exist and cover the sweep.
python3 -c '
import json, sys
series = json.load(open(sys.argv[1]))
seconds = series["seconds"]
assert seconds, "loadgen --series-out produced an empty series"
sent = sum(s["sent"] for s in seconds)
assert sent > 0, "series recorded no arrivals"
print("series OK: %d seconds, %d arrivals" % (len(seconds), sent))
' "$SERIES"

# Health layer under load: the recorder must have folded the served traffic
# into /timeseriesz, and /alertz must parse.
python3 -c '
import json, sys, urllib.request
admin = sys.argv[1]
def get(path):
    url = "http://127.0.0.1:%s%s" % (admin, path)
    with urllib.request.urlopen(url, timeout=5) as r:
        return json.loads(r.read().decode())
index = get("/timeseriesz?format=json")
assert index["ticks"] > 0, "health recorder never ticked"
assert len(index["series"]) > 0, "no time series registered"
req = get("/timeseriesz?metric=service.requests_total&format=json")
total = sum(req["values"])
assert total > 0, "served traffic missing from service.requests_total series"
alerts = get("/alertz?format=json")
assert isinstance(alerts["alerts"], list), "/alertz json missing alerts list"
print("health OK: %d ticks, %d series, %.0f requests recorded, %d slos"
      % (index["ticks"], len(index["series"]), total, len(alerts["alerts"])))
' "$ADMIN_PORT"

# Inject a worker stall (sleep > --stall-threshold-ms) and require the
# watchdog to trip exactly once, then archive the captured folded stack.
echo '{"id":900,"cmd":"inject_stall","ms":1200}' >&9
STALLS=""
for _ in $(seq 1 100); do
  STALLS=$(python3 -c '
import json, sys, urllib.request
url = "http://127.0.0.1:%s/varz" % sys.argv[1]
with urllib.request.urlopen(url, timeout=5) as r:
    varz = json.loads(r.read().decode())
n = int(varz["counters"].get("health.stalls_total", 0))
print(n if n > 0 else "")
' "$ADMIN_PORT")
  [[ -n "$STALLS" ]] && break
  sleep 0.2
done
if [[ "$STALLS" != "1" ]]; then
  echo "FAIL: watchdog stalls_total=${STALLS:-0}, expected exactly 1" >&2
  exit 1
fi
# Let the stall episode drain; the edge trigger must not double-count it.
sleep 1
python3 -c '
import json, sys, urllib.request
admin = sys.argv[1]
def get(path):
    url = "http://127.0.0.1:%s%s" % (admin, path)
    with urllib.request.urlopen(url, timeout=5) as r:
        return json.loads(r.read().decode())
varz = get("/varz")
stalls = int(varz["counters"].get("health.stalls_total", 0))
assert stalls == 1, "watchdog double-counted one stall episode: %d" % stalls
stall = get("/alertz?format=json")["watchdog"]["last_stall"]
stack = stall["stack"]
assert stack and ";" in stack, "stall capture has no folded stack: %r" % stack
open(sys.argv[2], "w").write(stack + "\n")
print("watchdog OK: one stall on %s, stack archived (%d frames)"
      % (stall["thread"], stack.count(";") + 1))
' "$ADMIN_PORT" "$STALL_STACK"

# Clean shutdown: quit drains in-flight work and must exit 0.
echo '{"cmd":"quit"}' >&9
exec 9>&-
wait "$SERVE_PID"
SERVE_PID=""
echo "clean shutdown OK"
