#!/usr/bin/env bash
# Data-plane smoke drill: boot tegra_serve with an ephemeral --port, run a
# short open-loop tegra_loadgen sweep against POST /v1/extract, and require
#   (a) a non-zero count of successful (HTTP 2xx, "ok":true) extractions,
#   (b) zero transport errors (saturation must surface as 503, not resets),
#   (c) a clean daemon shutdown via {"cmd":"quit"} (exit code 0).
# The latency curves land in BENCH_dataplane.json next to the build dir so
# CI can archive them.
#
# Usage: scripts/dataplane_smoke.sh [build-dir]

set -euo pipefail

BUILD="${1:-build}"
BENCH="$BUILD/BENCH_dataplane.json"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

mkfifo "$WORK/stdin"
"$BUILD/tools/tegra_serve" --build-corpus web:300:1 --port 0 --workers 4 \
  < "$WORK/stdin" > "$WORK/stdout.ndjson" 2> "$WORK/stderr.log" &
SERVE_PID=$!
# Hold the fifo's write end open so the daemon's stdin never sees EOF
# before we send quit.
exec 9> "$WORK/stdin"

# Wait for the {"event":"data_ready","port":N} announcement.
PORT=""
for _ in $(seq 1 150); do
  PORT=$(python3 -c '
import json, sys
try:
    for line in open(sys.argv[1]):
        obj = json.loads(line)
        if obj.get("event") == "data_ready":
            print(obj["port"])
            break
except (FileNotFoundError, ValueError):
    pass
' "$WORK/stdout.ndjson")
  [[ -n "$PORT" ]] && break
  sleep 0.2
done
if [[ -z "$PORT" ]]; then
  echo "FAIL: no data_ready event from tegra_serve" >&2
  cat "$WORK/stderr.log" >&2
  exit 1
fi
echo "data plane up on port $PORT"

"$BUILD/tools/tegra_loadgen" --port "$PORT" --qps 50,200 --duration-s 2 \
  --connections 8 --out "$BENCH"

python3 -c '
import json, sys
bench = json.load(open(sys.argv[1]))
ok = sum(step["http_2xx"] for step in bench["steps"])
errors = sum(step["transport_errors"] for step in bench["steps"])
assert ok > 0, "no successful extractions served"
assert errors == 0, "%d transport errors (expected explicit 503s)" % errors
print("smoke OK: %d successful extractions, p99 %.2fms at %d qps"
      % (ok, bench["steps"][-1]["p99_ms"], bench["steps"][-1]["offered_qps"]))
' "$BENCH"

# Clean shutdown: quit drains in-flight work and must exit 0.
echo '{"cmd":"quit"}' >&9
exec 9>&-
wait "$SERVE_PID"
SERVE_PID=""
echo "clean shutdown OK"
