// Reproduces Table 4: unsupervised extraction quality (P/R/F) of TEGRA,
// ListExtract and Judie on the Web, Wiki, Enterprise and Lists benchmarks.
//
// Expected shape (paper): TEGRA F ~0.87-0.91 everywhere; ListExtract recall
// close to TEGRA but precision well behind (over-segmentation); Judie far
// behind due to KB coverage. Scale with TEGRA_BENCH_TABLES (default 120).

#include <cstdio>

#include "common/string_util.h"
#include "eval/experiment.h"

namespace tegra::eval {
namespace {

void Run() {
  PrintBanner("Table 4: Quality comparison (unsupervised)");
  std::printf("tables per generated dataset: %zu\n\n",
              BenchTablesPerDataset());

  TextTable table({"Dataset", "Metric", "TEGRA", "ListExtract", "Judie"});

  const DatasetId datasets[] = {DatasetId::kWeb, DatasetId::kWiki,
                                DatasetId::kEnterprise, DatasetId::kLists};
  for (DatasetId id : datasets) {
    // The paper pairs each test set with its matching background corpus
    // (B-Web for public-web content, B-Enterprise for Enterprise).
    const CorpusStats& stats = BackgroundStats(
        id == DatasetId::kEnterprise ? BackgroundId::kEnterprise
                                     : BackgroundId::kWeb);
    const auto instances = BuildDataset(id, BenchTablesPerDataset());

    const AlgoEvaluation tegra =
        EvaluateAlgorithm(instances, TegraFn(&stats));
    const AlgoEvaluation listextract =
        EvaluateAlgorithm(instances, ListExtractFn(&stats));
    const AlgoEvaluation judie =
        EvaluateAlgorithm(instances, JudieFn(&GeneralKb()));

    auto add = [&](const char* metric, double t, double l, double j) {
      table.AddRow({DatasetName(id), metric, FormatDouble(t), FormatDouble(l),
                    FormatDouble(j)});
    };
    add("P", tegra.mean.precision, listextract.mean.precision,
        judie.mean.precision);
    add("R", tegra.mean.recall, listextract.mean.recall, judie.mean.recall);
    add("F", tegra.mean.f1, listextract.mean.f1, judie.mean.f1);
  }
  table.Print();
}

}  // namespace
}  // namespace tegra::eval

int main() {
  tegra::eval::Run();
  return 0;
}
