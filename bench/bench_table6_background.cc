// Reproduces Table 6: F-measure (unsupervised) when the background corpus is
// matched, mismatched, or combined. Expected shape: the matching corpus (or
// B-Combined) wins; B-Enterprise collapses TEGRA on Web/Wiki; B-Web remains
// reasonable on Enterprise. Judie does not consume the background corpus, so
// its column is constant per test set (as in the paper).

#include <cstdio>

#include "common/string_util.h"
#include "eval/experiment.h"

namespace tegra::eval {
namespace {

void Run() {
  PrintBanner("Table 6: F-measure by background corpus (unsupervised)");
  // Half-size datasets keep the 3x3 grid affordable; scale with
  // TEGRA_BENCH_TABLES as usual.
  const size_t count = std::max<size_t>(10, BenchTablesPerDataset() / 2);
  std::printf("tables per generated dataset: %zu\n\n", count);

  TextTable table(
      {"Test-Dataset", "Background", "TEGRA", "ListExtract", "Judie"});
  for (DatasetId id :
       {DatasetId::kWeb, DatasetId::kWiki, DatasetId::kEnterprise}) {
    const auto instances = BuildDataset(id, count);
    const AlgoEvaluation judie =
        EvaluateAlgorithm(instances, JudieFn(&GeneralKb()));
    for (BackgroundId bg : {BackgroundId::kWeb, BackgroundId::kEnterprise,
                            BackgroundId::kCombined}) {
      const CorpusStats& stats = BackgroundStats(bg);
      const AlgoEvaluation tegra =
          EvaluateAlgorithm(instances, TegraFn(&stats));
      const AlgoEvaluation listextract =
          EvaluateAlgorithm(instances, ListExtractFn(&stats));
      table.AddRow({DatasetName(id), BackgroundName(bg),
                    FormatDouble(tegra.mean.f1),
                    FormatDouble(listextract.mean.f1),
                    FormatDouble(judie.mean.f1)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace tegra::eval

int main() {
  tegra::eval::Run();
  return 0;
}
