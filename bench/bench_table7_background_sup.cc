// Reproduces Table 7 (Appendix K): F-measure by background corpus in the
// supervised setting (two example rows). Same shape as Table 6, shifted up
// by supervision.

#include <cstdio>

#include "common/string_util.h"
#include "eval/experiment.h"

namespace tegra::eval {
namespace {

constexpr int kExamples = 2;

void Run() {
  PrintBanner("Table 7: F-measure by background corpus (supervised, k=2)");
  const size_t count = std::max<size_t>(10, BenchTablesPerDataset() / 2);
  std::printf("tables per generated dataset: %zu\n\n", count);

  TextTable table(
      {"Test-Dataset", "Background", "TEGRA", "ListExtract", "Judie"});
  for (DatasetId id :
       {DatasetId::kWeb, DatasetId::kWiki, DatasetId::kEnterprise}) {
    const auto instances = BuildDataset(id, count);
    const AlgoEvaluation judie = EvaluateAlgorithm(
        instances, JudieSupervisedFn(&GeneralKb(), kExamples));
    for (BackgroundId bg : {BackgroundId::kWeb, BackgroundId::kEnterprise,
                            BackgroundId::kCombined}) {
      const CorpusStats& stats = BackgroundStats(bg);
      const AlgoEvaluation tegra =
          EvaluateAlgorithm(instances, TegraSupervisedFn(&stats, kExamples));
      const AlgoEvaluation listextract = EvaluateAlgorithm(
          instances, ListExtractSupervisedFn(&stats, kExamples));
      table.AddRow({DatasetName(id), BackgroundName(bg),
                    FormatDouble(tegra.mean.f1),
                    FormatDouble(listextract.mean.f1),
                    FormatDouble(judie.mean.f1)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace tegra::eval

int main() {
  tegra::eval::Run();
  return 0;
}
