// Reproduces Figure 9: extraction latency (seconds per table, column count
// given) as a function of (a) the number of columns and (b) the number of
// rows, for TEGRA, TEGRA+4 (4 worker threads), TEGRA-naive+ (SLGR dynamic
// program but NO A* pruning), ListExtract and Judie.
//
// Expected shape: ListExtract and Judie are fastest (greedy, no guarantees);
// TEGRA costs more; TEGRA-naive+ explodes combinatorially (the paper reports
// 40+ seconds at 20 rows and "off the chart" beyond) — we likewise stop
// running it past small shapes and print "-". TEGRA+4 cuts TEGRA's latency
// by roughly the thread count.

#include <cstdio>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "eval/experiment.h"
#include "synth/corpus_gen.h"
#include "synth/list_gen.h"
#include "trace/chrome_trace.h"
#include "trace/trace.h"

namespace tegra::eval {
namespace {

/// Builds `count` benchmark instances with an exact shape.
std::vector<EvalInstance> FixedShapeInstances(int cols, int rows,
                                              size_t count) {
  synth::TableGenOptions opts =
      synth::DefaultTableGenOptions(synth::CorpusProfile::kWeb);
  opts.min_cols = cols;
  opts.max_cols = cols;
  opts.min_rows = rows;
  opts.max_rows = rows;
  synth::TableGenerator gen(synth::CorpusProfile::kWeb, opts,
                            /*seed=*/0xF19u + cols * 131 + rows);
  std::vector<EvalInstance> out;
  for (size_t i = 0; i < count; ++i) {
    auto raw = synth::MakeBenchmarkInstance(gen.Generate());
    EvalInstance inst;
    inst.index = i;
    inst.lines = std::move(raw.lines);
    inst.truth = std::move(raw.ground_truth);
    out.push_back(std::move(inst));
  }
  return out;
}

/// Mean seconds per table for a segmenter.
double TimeAlgorithm(const std::vector<EvalInstance>& instances,
                     const SegmentFn& fn) {
  Stopwatch watch;
  for (const EvalInstance& inst : instances) {
    (void)fn(inst);
  }
  return watch.ElapsedSeconds() / static_cast<double>(instances.size());
}

SegmentFn TegraGivenM(const CorpusStats* stats, TegraOptions opts) {
  return [stats, opts](const EvalInstance& inst) -> Result<Table> {
    TegraExtractor tegra(stats, opts);
    auto r = tegra.ExtractWithColumns(inst.lines,
                                      static_cast<int>(inst.truth.NumCols()));
    if (!r.ok()) return r.status();
    return std::move(r).value().table;
  };
}

std::string Fmt(double seconds) { return FormatDouble(seconds, 4); }

void RunSweep(const char* title, const std::vector<std::pair<int, int>>& shapes,
              bool label_cols) {
  const CorpusStats& stats = BackgroundStats(BackgroundId::kWeb);
  TextTable table({label_cols ? "#cols" : "#rows", "TEGRA", "TEGRA+4",
                   "TEGRA-naive+", "ListExtract", "Judie"});
  PrintBanner(title);
  for (const auto& [cols, rows] : shapes) {
    const auto instances = FixedShapeInstances(cols, rows, /*count=*/3);

    TegraOptions base;
    base.final_anchor_sample = 0;
    TegraOptions threaded = base;
    threaded.num_threads = 4;
    TegraOptions naive = base;
    naive.use_astar = false;

    const double t_tegra = TimeAlgorithm(instances, TegraGivenM(&stats, base));
    const double t_tegra4 =
        TimeAlgorithm(instances, TegraGivenM(&stats, threaded));
    // TEGRA-naive+ enumerates every anchor segmentation; past small shapes
    // it is off the chart (as in the paper), so we skip it there.
    const bool naive_feasible = cols <= 6 && rows <= 20;
    const double t_naive =
        naive_feasible
            ? TimeAlgorithm(instances, TegraGivenM(&stats, naive))
            : -1;
    const double t_le = TimeAlgorithm(instances, ListExtractFn(&stats));
    const double t_judie = TimeAlgorithm(instances, JudieFn(&GeneralKb()));

    table.AddRow({std::to_string(label_cols ? cols : rows), Fmt(t_tegra),
                  Fmt(t_tegra4), naive_feasible ? Fmt(t_naive) : "-",
                  Fmt(t_le), Fmt(t_judie)});
  }
  table.Print();
  std::printf("(seconds per table; \"-\" = off the chart, as in the paper)\n");
}

}  // namespace
}  // namespace tegra::eval

int main(int argc, char** argv) {
  using tegra::eval::RunSweep;
  // --trace-out PATH: record pipeline spans during the sweeps and dump a
  // Chrome trace — the per-phase breakdown behind the Figure 9 wall clocks.
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    }
  }
  tegra::trace::Tracer& tracer = tegra::trace::Tracer::Global();
  if (!trace_out.empty()) tracer.SetEnabled(true);

  RunSweep("Figure 9(a): latency vs number of columns (10 rows)",
           {{2, 10}, {4, 10}, {6, 10}, {8, 10}, {10, 10}},
           /*label_cols=*/true);
  RunSweep("Figure 9(b): latency vs number of rows (6 columns)",
           {{6, 5}, {6, 10}, {6, 20}, {6, 40}},
           /*label_cols=*/false);

  if (!trace_out.empty()) {
    tegra::Status s =
        tegra::trace::WriteChromeTrace(trace_out, tracer.RingSnapshot());
    if (!s.ok()) {
      std::fprintf(stderr, "trace-out: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("trace: %llu spans recorded (%llu dropped) -> %s\n",
                static_cast<unsigned long long>(tracer.spans_recorded()),
                static_cast<unsigned long long>(tracer.dropped()),
                trace_out.c_str());
  }
  return 0;
}
