// Reproduces Figure 8(a): correlation between the normalized SP objective
// and extraction quality. Extracted tables are sorted by their per-pair
// objective score and bucketized into five bins; F-measure should fall as
// the score rises (low SP distance = coherent = good table).

#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "eval/experiment.h"

namespace tegra::eval {
namespace {

void Run() {
  PrintBanner("Figure 8(a): SP objective score vs F-measure");
  std::printf("tables per generated dataset: %zu\n\n",
              BenchTablesPerDataset());

  TextTable table({"Score bucket (percentile)", "Web F", "Wiki F",
                   "Enterprise F"});
  std::vector<std::vector<double>> bucket_f(5);

  const DatasetId datasets[] = {DatasetId::kWeb, DatasetId::kWiki,
                                DatasetId::kEnterprise};
  std::vector<std::vector<double>> per_dataset(3);
  for (int d = 0; d < 3; ++d) {
    const DatasetId id = datasets[d];
    const CorpusStats& stats = BackgroundStats(
        id == DatasetId::kEnterprise ? BackgroundId::kEnterprise
                                     : BackgroundId::kWeb);
    const auto instances = BuildDataset(id, BenchTablesPerDataset());
    std::vector<double> scores;
    std::vector<PrfScore> quality;
    TegraExtractor tegra(&stats);
    for (const EvalInstance& inst : instances) {
      TegraOptions opts;
      opts.tokenizer = inst.tokenizer;
      TegraExtractor extractor(&stats, opts);
      auto result = extractor.Extract(inst.lines);
      if (!result.ok()) continue;
      scores.push_back(result->per_pair_objective);
      quality.push_back(ScoreTable(inst.truth, result->table));
    }
    const auto buckets = EqualBuckets(scores, 5);
    per_dataset[d].resize(5);
    for (int b = 0; b < 5; ++b) {
      per_dataset[d][b] = MeanF(quality, buckets[b]);
    }
  }
  for (int b = 0; b < 5; ++b) {
    table.AddRow({std::to_string(20 * (b + 1)) + "%",
                  FormatDouble(per_dataset[0][b]),
                  FormatDouble(per_dataset[1][b]),
                  FormatDouble(per_dataset[2][b])});
  }
  table.Print();
  std::printf(
      "\nExpected: F decreases down the table (higher normalized SP distance "
      "=> worse tables).\n");
}

}  // namespace
}  // namespace tegra::eval

int main() {
  tegra::eval::Run();
  return 0;
}
