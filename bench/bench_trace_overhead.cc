// Micro-benchmarks (google-benchmark) for the tracing subsystem's overhead
// budget (ISSUE 2 acceptance: spans cost <2% when runtime-disabled).
//
//  * BM_SpanDisabled / BM_SpanEnabled — raw per-span cost: one relaxed
//    atomic load + branch when disabled; clock reads + a sharded ring
//    append when enabled.
//  * BM_ExtractTrace{Off,On} — the end-to-end check: a full unsupervised
//    extraction with the global tracer runtime-disabled vs enabled. The
//    Off/On delta is the real-world overhead of shipping instrumented
//    binaries.
//  * BM_LoggerSuppressed — cost of a log statement below the minimum level
//    (the reason LogDebug can stay in hot-ish paths).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/tegra.h"
#include "corpus/column_index.h"
#include "corpus/corpus_stats.h"
#include "synth/corpus_gen.h"
#include "synth/list_gen.h"
#include "trace/log.h"
#include "trace/trace.h"

namespace tegra {
namespace {

const ColumnIndex& SmallIndex() {
  static const ColumnIndex* kIndex = [] {
    auto* index = new ColumnIndex(synth::BuildBackgroundIndex(
        synth::CorpusProfile::kWeb, /*num_tables=*/2000, /*seed=*/42));
    return index;
  }();
  return *kIndex;
}

std::vector<std::string> BenchLines() {
  synth::TableGenOptions opts =
      synth::DefaultTableGenOptions(synth::CorpusProfile::kWeb);
  opts.min_cols = 4;
  opts.max_cols = 4;
  opts.min_rows = 12;
  opts.max_rows = 12;
  synth::TableGenerator gen(synth::CorpusProfile::kWeb, opts, /*seed=*/7);
  return synth::MakeBenchmarkInstance(gen.Generate()).lines;
}

void BM_SpanDisabled(benchmark::State& state) {
  trace::Tracer tracer(1024);
  tracer.SetEnabled(false);
  for (auto _ : state) {
    trace::Span span(&tracer, "bench", "bench");
    benchmark::DoNotOptimize(span.active());
  }
  state.counters["recorded"] =
      static_cast<double>(tracer.spans_recorded());
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  trace::Tracer tracer(1024);
  tracer.SetEnabled(true);
  for (auto _ : state) {
    trace::Span span(&tracer, "bench", "bench");
    benchmark::DoNotOptimize(span.active());
  }
  state.counters["recorded"] =
      static_cast<double>(tracer.spans_recorded());
}
BENCHMARK(BM_SpanEnabled);

void BM_SpanEnabledWithMetric(benchmark::State& state) {
  trace::Tracer tracer(1024);
  tracer.SetEnabled(true);
  for (auto _ : state) {
    trace::Span span(&tracer, "bench", "bench", "bench.span_seconds");
    benchmark::DoNotOptimize(span.active());
  }
}
BENCHMARK(BM_SpanEnabledWithMetric);

// End-to-end: the instrumented extraction pipeline with the *global* tracer
// runtime-disabled. Compare against BM_ExtractTraceOn; the Off variant is
// the deployment default and must sit within the noise of an uninstrumented
// build (<2%).
void ExtractBenchmark(benchmark::State& state, bool tracing) {
  CorpusStats stats(&SmallIndex());
  TegraExtractor extractor(&stats);
  const std::vector<std::string> lines = BenchLines();
  trace::Tracer& tracer = trace::Tracer::Global();
  const bool was_enabled = tracer.enabled();
  tracer.SetEnabled(tracing);
  for (auto _ : state) {
    auto result = extractor.Extract(lines);
    benchmark::DoNotOptimize(result);
  }
  tracer.SetEnabled(was_enabled);
  state.counters["spans"] = static_cast<double>(tracer.spans_recorded());
}

void BM_ExtractTraceOff(benchmark::State& state) {
  ExtractBenchmark(state, false);
}
BENCHMARK(BM_ExtractTraceOff)->Unit(benchmark::kMillisecond);

void BM_ExtractTraceOn(benchmark::State& state) {
  ExtractBenchmark(state, true);
}
BENCHMARK(BM_ExtractTraceOn)->Unit(benchmark::kMillisecond);

void BM_LoggerSuppressed(benchmark::State& state) {
  trace::Logger logger;
  logger.SetMinLevel(trace::LogLevel::kWarn);
  logger.SetOutput(nullptr);
  for (auto _ : state) {
    logger.Log(trace::LogLevel::kDebug, "suppressed",
               {{"key", 1}, {"other", "value"}});
  }
}
BENCHMARK(BM_LoggerSuppressed);

}  // namespace
}  // namespace tegra

BENCHMARK_MAIN();
