// Reproduces Figures 8(c)-(h): F-measure sensitivity to table
// characteristics on the Web and Enterprise datasets, for all three
// algorithms. Each algorithm runs once per dataset; the same per-instance
// scores are then bucketized three ways:
//   (c,d) by average tokens per cell — the difficulty proxy. Expected:
//         ListExtract degrades sharply with more tokens per cell, TEGRA
//         stays nearly flat.
//   (e,f) by number of columns — expected: mild sensitivity only.
//   (g,h) by number of rows — expected: roughly flat for everyone.

#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "eval/experiment.h"
#include "text/tokenizer.h"

namespace tegra::eval {
namespace {

struct DatasetRun {
  std::vector<EvalInstance> instances;
  AlgoEvaluation tegra;
  AlgoEvaluation listextract;
  AlgoEvaluation judie;
};

void PrintBuckets(const char* title, const DatasetRun& run,
                  const std::vector<double>& keys, const char* key_label) {
  std::printf("\n%s\n", title);
  const auto buckets = EqualBuckets(keys, 5);
  TextTable table({key_label, "TEGRA F", "ListExtract F", "Judie F",
                   "bucket size"});
  for (const auto& bucket : buckets) {
    if (bucket.empty()) continue;
    double key_mean = 0;
    for (size_t i : bucket) key_mean += keys[i];
    key_mean /= static_cast<double>(bucket.size());
    table.AddRow({FormatDouble(key_mean),
                  FormatDouble(MeanF(run.tegra.scores, bucket)),
                  FormatDouble(MeanF(run.listextract.scores, bucket)),
                  FormatDouble(MeanF(run.judie.scores, bucket)),
                  std::to_string(bucket.size())});
  }
  table.Print();
}

void Run() {
  PrintBanner("Figures 8(c)-(h): sensitivity to table characteristics");
  std::printf("tables per generated dataset: %zu\n", BenchTablesPerDataset());

  Tokenizer tokenizer;
  const struct {
    DatasetId id;
    const char* cd;
    const char* ef;
    const char* gh;
  } specs[] = {
      {DatasetId::kWeb, "Figure 8(c): Web, by avg tokens per cell",
       "Figure 8(e): Web, by number of columns",
       "Figure 8(g): Web, by number of rows"},
      {DatasetId::kEnterprise,
       "Figure 8(d): Enterprise, by avg tokens per cell",
       "Figure 8(f): Enterprise, by number of columns",
       "Figure 8(h): Enterprise, by number of rows"},
  };

  for (const auto& spec : specs) {
    const CorpusStats& stats = BackgroundStats(
        spec.id == DatasetId::kEnterprise ? BackgroundId::kEnterprise
                                          : BackgroundId::kWeb);
    DatasetRun run;
    run.instances = BuildDataset(spec.id, BenchTablesPerDataset());
    run.tegra = EvaluateAlgorithm(run.instances, TegraFn(&stats));
    run.listextract = EvaluateAlgorithm(run.instances, ListExtractFn(&stats));
    run.judie = EvaluateAlgorithm(run.instances, JudieFn(&GeneralKb()));

    std::vector<double> tokens_per_cell;
    std::vector<double> num_cols;
    std::vector<double> num_rows;
    for (const EvalInstance& inst : run.instances) {
      tokens_per_cell.push_back(inst.truth.AvgTokensPerCell(tokenizer));
      num_cols.push_back(static_cast<double>(inst.truth.NumCols()));
      num_rows.push_back(static_cast<double>(inst.truth.NumRows()));
    }
    PrintBuckets(spec.cd, run, tokens_per_cell, "avg tokens/cell");
    PrintBuckets(spec.ef, run, num_cols, "avg #cols");
    PrintBuckets(spec.gh, run, num_rows, "avg #rows");
  }
}

}  // namespace
}  // namespace tegra::eval

int main() {
  tegra::eval::Run();
  return 0;
}
