// Reproduces Table 5: supervised extraction quality with two user-provided
// example rows per list. Expected shape: supervision helps every algorithm,
// TEGRA the most (paper: 0.94-0.97 F).

#include <cstdio>

#include "common/string_util.h"
#include "eval/experiment.h"

namespace tegra::eval {
namespace {

constexpr int kExamples = 2;

void Run() {
  PrintBanner("Table 5: Quality comparison (supervised, k=2 examples)");
  std::printf("tables per generated dataset: %zu\n\n",
              BenchTablesPerDataset());

  TextTable table({"Dataset", "Metric", "TEGRA", "ListExtract", "Judie"});
  for (DatasetId id : {DatasetId::kWeb, DatasetId::kWiki,
                       DatasetId::kEnterprise, DatasetId::kLists}) {
    const CorpusStats& stats = BackgroundStats(
        id == DatasetId::kEnterprise ? BackgroundId::kEnterprise
                                     : BackgroundId::kWeb);
    const auto instances = BuildDataset(id, BenchTablesPerDataset());
    const AlgoEvaluation tegra =
        EvaluateAlgorithm(instances, TegraSupervisedFn(&stats, kExamples));
    const AlgoEvaluation listextract = EvaluateAlgorithm(
        instances, ListExtractSupervisedFn(&stats, kExamples));
    const AlgoEvaluation judie = EvaluateAlgorithm(
        instances, JudieSupervisedFn(&GeneralKb(), kExamples));
    auto add = [&](const char* metric, double t, double l, double j) {
      table.AddRow({DatasetName(id), metric, FormatDouble(t), FormatDouble(l),
                    FormatDouble(j)});
    };
    add("P", tegra.mean.precision, listextract.mean.precision,
        judie.mean.precision);
    add("R", tegra.mean.recall, listextract.mean.recall, judie.mean.recall);
    add("F", tegra.mean.f1, listextract.mean.f1, judie.mean.f1);
  }
  table.Print();
}

}  // namespace
}  // namespace tegra::eval

int main() {
  tegra::eval::Run();
  return 0;
}
