// Ablation study over the design choices DESIGN.md §3 calls out, plus the
// NPMI-vs-Jaccard comparison of Appendix H. Each row disables exactly one
// ingredient of the distance function (or changes one algorithm knob) and
// reports unsupervised F on the Web and Enterprise datasets.
//
// Expected shape:
//   * Jaccard "also produces decent results" but trails NPMI (Appendix H).
//   * Dropping the type-coherence rule or pricing null-null pairs at 0.5
//     re-opens the column-merging / null-padding degeneracies of the
//     per-column objective.
//   * Anchor sampling trades little quality for large speedups.

#include <cstdio>

#include "common/string_util.h"
#include "eval/experiment.h"

namespace tegra::eval {
namespace {

struct Variant {
  const char* name;
  TegraOptions options;
};

void Run() {
  PrintBanner("Ablations: distance-function and search design choices");
  const size_t count = std::max<size_t>(10, BenchTablesPerDataset() / 4);
  std::printf("tables per dataset: %zu\n\n", count);

  std::vector<Variant> variants;
  {
    Variant v{"TEGRA (full)", {}};
    variants.push_back(v);
  }
  {
    Variant v{"semantic: Jaccard (App. H)", {}};
    v.options.distance.measure = SemanticMeasure::kJaccard;
    variants.push_back(v);
  }
  {
    Variant v{"no type coherence", {}};
    v.options.distance.type_coherence = false;
    variants.push_back(v);
  }
  {
    Variant v{"no known-value prior", {}};
    v.options.distance.known_value_prior = false;
    variants.push_back(v);
  }
  {
    Variant v{"d(null,null) = 0.5", {}};
    v.options.distance.null_null_distance = 0.5;
    variants.push_back(v);
  }
  {
    Variant v{"single-anchor sweep+final", {}};
    v.options.sweep_anchor_sample = 1;
    v.options.final_anchor_sample = 1;
    variants.push_back(v);
  }
  {
    Variant v{"exhaustive anchor sweep", {}};
    v.options.sweep_anchor_sample = 0;
    variants.push_back(v);
  }
  {
    Variant v{"max_cell_tokens = 4", {}};
    v.options.max_cell_tokens = 4;
    variants.push_back(v);
  }

  TextTable table({"Variant", "Web F", "Enterprise F", "Web s/table"});
  const auto web = BuildDataset(DatasetId::kWeb, count);
  const auto ent = BuildDataset(DatasetId::kEnterprise, count);
  const CorpusStats& web_stats = BackgroundStats(BackgroundId::kWeb);
  const CorpusStats& ent_stats = BackgroundStats(BackgroundId::kEnterprise);

  for (const Variant& v : variants) {
    const AlgoEvaluation web_eval =
        EvaluateAlgorithm(web, TegraFn(&web_stats, v.options));
    const AlgoEvaluation ent_eval =
        EvaluateAlgorithm(ent, TegraFn(&ent_stats, v.options));
    table.AddRow({v.name, FormatDouble(web_eval.mean.f1),
                  FormatDouble(ent_eval.mean.f1),
                  FormatDouble(web_eval.mean_seconds, 3)});
  }
  table.Print();
}

}  // namespace
}  // namespace tegra::eval

int main() {
  tegra::eval::Run();
  return 0;
}
