// Reproduces Figure 8(b): sensitivity of TEGRA to the syntactic/semantic
// mix alpha. Expected shape: Web/Wiki already decent at alpha = 0 (semantic
// only) and degrade at alpha = 1; Enterprise is weak at alpha = 0 (its
// proprietary values are missing from Background-Web) and needs syntax;
// mid-range alpha is best everywhere.

#include <cstdio>

#include "common/string_util.h"
#include "eval/experiment.h"

namespace tegra::eval {
namespace {

void Run() {
  PrintBanner("Figure 8(b): F-measure vs alpha (weight of syntactic distance)");
  const size_t count = std::max<size_t>(10, BenchTablesPerDataset() / 2);
  std::printf("tables per generated dataset: %zu\n", count);
  std::printf("background corpus: B-Web for all datasets (as in the paper)\n\n");

  const double alphas[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  TextTable table({"alpha", "Web F", "Wiki F", "Enterprise F"});

  const CorpusStats& stats = BackgroundStats(BackgroundId::kWeb);
  std::vector<std::vector<EvalInstance>> datasets;
  for (DatasetId id :
       {DatasetId::kWeb, DatasetId::kWiki, DatasetId::kEnterprise}) {
    datasets.push_back(BuildDataset(id, count));
  }

  for (double alpha : alphas) {
    TegraOptions opts;
    opts.distance.alpha = alpha;
    std::vector<std::string> row = {FormatDouble(alpha)};
    for (const auto& instances : datasets) {
      const AlgoEvaluation eval =
          EvaluateAlgorithm(instances, TegraFn(&stats, opts));
      row.push_back(FormatDouble(eval.mean.f1));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace
}  // namespace tegra::eval

int main() {
  tegra::eval::Run();
  return 0;
}
