// Reproduces Figure K.1: quality as a function of the amount of user
// feedback on the Web dataset. x = -1 is fully unsupervised; x = 0 means the
// correct column count is given; x >= 1 gives x fully segmented example
// rows. Expected shape: TEGRA jumps with a single example and saturates
// quickly; ListExtract gains less (and the paper observes that x = 0 can
// even hurt it, since constraining m cannot fix its local split decisions).

#include <cstdio>

#include "common/string_util.h"
#include "eval/experiment.h"

namespace tegra::eval {
namespace {

void Run() {
  PrintBanner("Figure K.1: F-measure vs number of user examples (Web)");
  std::printf("tables per generated dataset: %zu\n\n",
              BenchTablesPerDataset());

  const CorpusStats& stats = BackgroundStats(BackgroundId::kWeb);
  const auto instances =
      BuildDataset(DatasetId::kWeb, BenchTablesPerDataset());

  TextTable table({"#examples", "TEGRA F", "ListExtract F", "Judie F"});
  for (int x = -1; x <= 5; ++x) {
    AlgoEvaluation tegra;
    AlgoEvaluation listextract;
    AlgoEvaluation judie;
    if (x < 0) {
      tegra = EvaluateAlgorithm(instances, TegraFn(&stats));
      listextract = EvaluateAlgorithm(instances, ListExtractFn(&stats));
      judie = EvaluateAlgorithm(instances, JudieFn(&GeneralKb()));
    } else {
      tegra = EvaluateAlgorithm(instances, TegraSupervisedFn(&stats, x));
      listextract =
          EvaluateAlgorithm(instances, ListExtractSupervisedFn(&stats, x));
      judie =
          EvaluateAlgorithm(instances, JudieSupervisedFn(&GeneralKb(), x));
    }
    table.AddRow({x < 0 ? "-1 (unsupervised)"
                        : (x == 0 ? "0 (#cols given)" : std::to_string(x)),
                  FormatDouble(tegra.mean.f1),
                  FormatDouble(listextract.mean.f1),
                  FormatDouble(judie.mean.f1)});
  }
  table.Print();
}

}  // namespace
}  // namespace tegra::eval

int main() {
  tegra::eval::Run();
  return 0;
}
