// bench_admin_overhead — answers "what does the HTTP admin plane cost the
// serving path?": extraction throughput with a concurrent /metrics scraper
// vs. without one. The admin server runs its own listener + handler threads
// and shares nothing with the extraction workers except the (lock-free on
// the hot path) metrics registry, so the budget documented in
// docs/OBSERVABILITY.md is < 2% throughput delta at a 10 Hz scrape rate.
//
//   ./bench_admin_overhead [--seconds S] [--clients N] [--scrape-hz HZ]
//                          [--rounds R]
//
// Rounds alternate baseline / scraped so thermal and cache drift hit both
// arms equally; the report shows per-round and aggregate throughput.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus_stats.h"
#include "service/admin_pages.h"
#include "service/extraction_service.h"
#include "service/http_admin.h"
#include "store/corpus_manager.h"
#include "synth/corpus_gen.h"
#include "trace/trace.h"
#include "corpus/column_index.h"

namespace {

using tegra::serve::AdminPages;
using tegra::serve::ExtractionRequest;
using tegra::serve::ExtractionService;
using tegra::serve::HttpAdminServer;
using tegra::serve::HttpGet;
using tegra::serve::ServiceOptions;

struct BenchConfig {
  double seconds_per_round = 1.5;
  int clients = 2;
  double scrape_hz = 10.0;
  int rounds = 3;  // Per arm; total rounds = 2 * rounds (alternating).
};

std::vector<std::string> MakeList(size_t rotate) {
  static const std::vector<std::string> base = {
      "Boston Massachusetts 645,966",    "Worcester Massachusetts 182,544",
      "Providence Rhode Island 178,042", "Hartford Connecticut 124,775",
      "Springfield Massachusetts 153,060", "Bridgeport Connecticut 144,229",
      "New Haven Connecticut 129,779",   "Stamford Connecticut 122,643",
  };
  std::vector<std::string> lines;
  for (size_t j = 0; j < base.size(); ++j) {
    lines.push_back(base[(rotate + j) % base.size()]);
  }
  return lines;
}

/// One timed round of closed-loop extraction load; returns requests/second.
double RunRound(ExtractionService* service, const BenchConfig& config) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        ExtractionRequest request;
        request.lines = MakeList((static_cast<size_t>(c) * 131 + i++) % 8);
        request.bypass_cache = true;  // Measure extraction, not the cache.
        const auto response = service->SubmitAndWait(std::move(request));
        if (response.ok()) completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(
      std::chrono::duration<double>(config.seconds_per_round));
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(completed.load()) / elapsed;
}

double Mean(const std::vector<double>& v) {
  return v.empty() ? 0.0
                   : std::accumulate(v.begin(), v.end(), 0.0) /
                         static_cast<double>(v.size());
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--seconds") == 0) {
      config.seconds_per_round = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--clients") == 0) {
      config.clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--scrape-hz") == 0) {
      config.scrape_hz = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--rounds") == 0) {
      config.rounds = std::atoi(argv[++i]);
    }
  }

  std::fprintf(stderr, "building corpus...\n");
  tegra::ColumnIndex index = tegra::synth::BuildBackgroundIndex(
      tegra::synth::CorpusProfile::kWeb, /*num_tables=*/2000, /*seed=*/11);
  tegra::CorpusStats stats(&index);
  tegra::TegraExtractor extractor(&stats);

  tegra::MetricsRegistry registry;
  tegra::trace::Tracer::Global().BindMetrics(&registry);
  ServiceOptions service_options;
  service_options.num_workers = 2;
  service_options.result_cache_capacity = 0;
  ExtractionService service(&extractor, service_options, &registry);

  tegra::store::CorpusManager manager(
      std::shared_ptr<const tegra::CorpusView>(&index,
                                               [](const tegra::CorpusView*) {}),
      /*path=*/"");
  AdminPages pages(&service, &tegra::trace::Tracer::Global(), &manager);
  HttpAdminServer admin({}, &registry);
  pages.RegisterAll(&admin);
  if (!admin.Start().ok()) {
    std::fprintf(stderr, "failed to start admin server\n");
    return 1;
  }
  const int port = admin.port();

  // Warm-up: populate the co-occurrence cache so round 1 is not special.
  RunRound(&service, config);

  std::atomic<bool> scraper_on{false};
  std::atomic<bool> scraper_exit{false};
  std::atomic<uint64_t> scrapes{0};
  std::thread scraper([&] {
    const auto period =
        std::chrono::duration<double>(1.0 / std::max(0.1, config.scrape_hz));
    while (!scraper_exit.load(std::memory_order_acquire)) {
      if (scraper_on.load(std::memory_order_acquire)) {
        const auto result = HttpGet(port, "/metrics");
        if (result.ok() && result->status == 200) {
          scrapes.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::this_thread::sleep_for(period);
    }
  });

  std::vector<double> baseline, scraped;
  std::printf("round  arm        req/s\n");
  for (int round = 0; round < config.rounds; ++round) {
    scraper_on.store(false, std::memory_order_release);
    const double off = RunRound(&service, config);
    baseline.push_back(off);
    std::printf("%-6d baseline  %8.1f\n", round, off);

    scraper_on.store(true, std::memory_order_release);
    const double on = RunRound(&service, config);
    scraped.push_back(on);
    std::printf("%-6d scraped   %8.1f\n", round, on);
    std::fflush(stdout);
  }
  scraper_exit.store(true, std::memory_order_release);
  scraper.join();
  admin.Stop();

  const double base_mean = Mean(baseline);
  const double scraped_mean = Mean(scraped);
  const double delta_pct =
      base_mean > 0 ? 100.0 * (base_mean - scraped_mean) / base_mean : 0.0;
  std::printf(
      "\nbaseline %.1f req/s | with %.0f Hz scraper %.1f req/s | "
      "delta %.2f%% | scrapes served %llu\n",
      base_mean, config.scrape_hz, scraped_mean, delta_pct,
      static_cast<unsigned long long>(scrapes.load()));
  std::printf("budget: < 2%% throughput delta (docs/OBSERVABILITY.md)\n");
  tegra::trace::Tracer::Global().BindMetrics(nullptr);
  return 0;
}
