// Reproduces Figure H.1 (Appendix K): the Figure 8 sensitivity sweeps in the
// *supervised* setting (two example rows). Expected: the same trends as
// Figure 8, shifted up.

#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "eval/experiment.h"
#include "text/tokenizer.h"

namespace tegra::eval {
namespace {

constexpr int kExamples = 2;

void AlphaSweep() {
  const size_t count = std::max<size_t>(10, BenchTablesPerDataset() / 2);
  std::printf("\nFigure H.1 (alpha): supervised F vs alpha, B-Web\n");
  const CorpusStats& stats = BackgroundStats(BackgroundId::kWeb);
  std::vector<std::vector<EvalInstance>> datasets;
  for (DatasetId id :
       {DatasetId::kWeb, DatasetId::kWiki, DatasetId::kEnterprise}) {
    datasets.push_back(BuildDataset(id, count));
  }
  TextTable table({"alpha", "Web F", "Wiki F", "Enterprise F"});
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    TegraOptions opts;
    opts.distance.alpha = alpha;
    std::vector<std::string> row = {FormatDouble(alpha)};
    for (const auto& instances : datasets) {
      const AlgoEvaluation eval = EvaluateAlgorithm(
          instances, TegraSupervisedFn(&stats, kExamples, opts));
      row.push_back(FormatDouble(eval.mean.f1));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

void TokensPerCellSweep() {
  const size_t count = std::max<size_t>(10, BenchTablesPerDataset() / 2);
  std::printf("\nFigure H.1 (difficulty): supervised F vs avg tokens/cell\n");
  Tokenizer tokenizer;
  TextTable table({"dataset", "bucket avg tokens/cell", "TEGRA F",
                   "ListExtract F", "Judie F"});
  for (DatasetId id : {DatasetId::kWeb, DatasetId::kEnterprise}) {
    const CorpusStats& stats = BackgroundStats(
        id == DatasetId::kEnterprise ? BackgroundId::kEnterprise
                                     : BackgroundId::kWeb);
    const auto instances = BuildDataset(id, count);
    const AlgoEvaluation tegra =
        EvaluateAlgorithm(instances, TegraSupervisedFn(&stats, kExamples));
    const AlgoEvaluation listextract = EvaluateAlgorithm(
        instances, ListExtractSupervisedFn(&stats, kExamples));
    const AlgoEvaluation judie = EvaluateAlgorithm(
        instances, JudieSupervisedFn(&GeneralKb(), kExamples));
    std::vector<double> keys;
    for (const EvalInstance& inst : instances) {
      keys.push_back(inst.truth.AvgTokensPerCell(tokenizer));
    }
    for (const auto& bucket : EqualBuckets(keys, 5)) {
      if (bucket.empty()) continue;
      double key_mean = 0;
      for (size_t i : bucket) key_mean += keys[i];
      key_mean /= static_cast<double>(bucket.size());
      table.AddRow({DatasetName(id), FormatDouble(key_mean),
                    FormatDouble(MeanF(tegra.scores, bucket)),
                    FormatDouble(MeanF(listextract.scores, bucket)),
                    FormatDouble(MeanF(judie.scores, bucket))});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace tegra::eval

int main() {
  tegra::eval::PrintBanner(
      "Figure H.1: supervised sensitivity sweeps (k=2 examples)");
  tegra::eval::AlphaSweep();
  tegra::eval::TokensPerCellSweep();
  return 0;
}
