// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: tokenization, type detection, postings intersection, NPMI,
// cell distance, the SLGR dynamic program and the A* anchor search (vs the
// exhaustive TEGRA-naive oracle).

#include <benchmark/benchmark.h>

#include "core/anchor_search.h"
#include "core/list_context.h"
#include "core/slgr.h"
#include "corpus/column_index.h"
#include "corpus/corpus_stats.h"
#include "distance/distance.h"
#include "eval/benchmark_data.h"
#include "synth/corpus_gen.h"
#include "synth/list_gen.h"
#include "text/tokenizer.h"
#include "text/value_type.h"

namespace tegra {
namespace {

const ColumnIndex& SmallIndex() {
  static const ColumnIndex* kIndex = [] {
    auto* index = new ColumnIndex(synth::BuildBackgroundIndex(
        synth::CorpusProfile::kWeb, /*num_tables=*/2000, /*seed=*/42));
    return index;
  }();
  return *kIndex;
}

void BM_Tokenize(benchmark::State& state) {
  Tokenizer tokenizer;
  const std::string line =
      "12. New York City, New York: 8,336,817 people (2019 census)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(line));
  }
}
BENCHMARK(BM_Tokenize);

void BM_DetectValueType(benchmark::State& state) {
  const std::string values[] = {"645,966", "2010-05-31", "Jan 12",
                                "mary.cook@example.com", "New York City",
                                "SKU-926434"};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DetectValueType(values[i++ % 6]));
  }
}
BENCHMARK(BM_DetectValueType);

void BM_PostingsIntersection(benchmark::State& state) {
  const ColumnIndex& index = SmallIndex();
  // Pick two popular values.
  const ValueId a = index.Lookup("london");
  const ValueId b = index.Lookup("paris");
  if (a == kInvalidValueId || b == kInvalidValueId) {
    state.SkipWithError("expected vocabulary values missing from corpus");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.CoOccurrenceCount(a, b));
  }
}
BENCHMARK(BM_PostingsIntersection);

void BM_NpmiUncached(benchmark::State& state) {
  const ColumnIndex& index = SmallIndex();
  const ValueId a = index.Lookup("london");
  const ValueId b = index.Lookup("tokyo");
  for (auto _ : state) {
    CorpusStats stats(&index);  // Fresh cache every iteration.
    benchmark::DoNotOptimize(stats.Npmi(a, b));
  }
}
BENCHMARK(BM_NpmiUncached);

void BM_CellDistanceCached(benchmark::State& state) {
  const ColumnIndex& index = SmallIndex();
  CorpusStats stats(&index);
  CellDistance distance(&stats);
  CellCatalog catalog(&index);
  const CellInfo& a = catalog.Register("New York City", 3);
  const CellInfo& b = catalog.Register("Toronto", 1);
  DistanceCache cache(&distance);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache(a, b));
  }
}
BENCHMARK(BM_CellDistanceCached);

/// Shared fixture: a list of `rows` lines with `cols` columns.
ListContext MakeContext(int cols, int rows, const ColumnIndex* index) {
  synth::TableGenOptions opts =
      synth::DefaultTableGenOptions(synth::CorpusProfile::kWeb);
  opts.min_cols = cols;
  opts.max_cols = cols;
  opts.min_rows = rows;
  opts.max_rows = rows;
  synth::TableGenerator gen(synth::CorpusProfile::kWeb, opts, 7);
  auto instance = synth::MakeBenchmarkInstance(gen.Generate());
  Tokenizer tokenizer;
  std::vector<std::vector<std::string>> token_lines;
  for (const auto& line : instance.lines) {
    token_lines.push_back(tokenizer.Tokenize(line));
  }
  return ListContext(std::move(token_lines), index);
}

void BM_SlgrDp(benchmark::State& state) {
  const ColumnIndex& index = SmallIndex();
  CorpusStats stats(&index);
  CellDistance distance(&stats);
  const int m = static_cast<int>(state.range(0));
  ListContext ctx = MakeContext(m, 10, &index);
  for (size_t j = 0; j < ctx.num_lines(); ++j) {
    ctx.EnsureWidth(j, ctx.EffectiveWidth(j, m, 8));
  }
  DistanceCache cache(&distance);
  // Anchor: an even split of line 0.
  Bounds anchor(m + 1);
  for (int k = 0; k <= m; ++k) {
    anchor[k] = static_cast<uint32_t>(k * ctx.line_length(0) / m);
  }
  auto anchor_cells = ctx.CellsFor(0, anchor);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SegmentLineGivenRecord(
        ctx, 1, anchor_cells, &cache, ctx.EffectiveWidth(1, m, 8)));
  }
}
BENCHMARK(BM_SlgrDp)->Arg(3)->Arg(6)->Arg(9);

void BM_AnchorSearchAStar(benchmark::State& state) {
  const ColumnIndex& index = SmallIndex();
  CorpusStats stats(&index);
  CellDistance distance(&stats);
  const int m = static_cast<int>(state.range(0));
  ListContext ctx = MakeContext(m, 10, &index);
  for (size_t j = 0; j < ctx.num_lines(); ++j) {
    ctx.EnsureWidth(j, ctx.EffectiveWidth(j, m, 8));
  }
  for (auto _ : state) {
    DistanceCache cache(&distance);
    benchmark::DoNotOptimize(
        MinimizeAnchorDistanceAStar(ctx, 0, m, &cache, 8));
  }
}
BENCHMARK(BM_AnchorSearchAStar)->Arg(3)->Arg(5);

void BM_AnchorSearchExhaustive(benchmark::State& state) {
  const ColumnIndex& index = SmallIndex();
  CorpusStats stats(&index);
  CellDistance distance(&stats);
  const int m = static_cast<int>(state.range(0));
  ListContext ctx = MakeContext(m, 10, &index);
  for (size_t j = 0; j < ctx.num_lines(); ++j) {
    ctx.EnsureWidth(j, ctx.EffectiveWidth(j, m, 8));
  }
  for (auto _ : state) {
    DistanceCache cache(&distance);
    benchmark::DoNotOptimize(
        MinimizeAnchorDistanceExhaustive(ctx, 0, m, &cache, 8));
  }
}
BENCHMARK(BM_AnchorSearchExhaustive)->Arg(3)->Arg(5);

}  // namespace
}  // namespace tegra

BENCHMARK_MAIN();
