// Micro-benchmarks (google-benchmark) for the profiling subsystem's overhead
// budget (ISSUE 7 acceptance: 99 Hz continuous sampling + 1% wide-event
// sampling must cost <2% end-to-end).
//
//  * BM_ExtractProfiler{Off,On} — a full unsupervised extraction with the
//    global SIGPROF sampler stopped vs armed at 99 Hz. The Off/On delta is
//    the real cost of always-on profiling in production binaries.
//  * BM_ObserveNoExemplarSource / BM_ObserveWithExemplarSource — per-bucket
//    exemplar capture cost on the histogram hot path (one seqlock write per
//    observation when a source is installed, a null check when not).
//  * BM_WideEventRecordSampled — the per-request cost of the access log at
//    a production 1% tail-sampling rate (most calls decide "drop" from one
//    hash; kept lines serialize + fwrite).
//  * BM_WideEventToJson — serialization alone, for sizing the kept path.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/tegra.h"
#include "corpus/column_index.h"
#include "corpus/corpus_stats.h"
#include "prof/profiler.h"
#include "prof/wide_event.h"
#include "service/metrics.h"
#include "synth/corpus_gen.h"
#include "synth/list_gen.h"

namespace tegra {
namespace {

const ColumnIndex& SmallIndex() {
  static const ColumnIndex* kIndex = [] {
    auto* index = new ColumnIndex(synth::BuildBackgroundIndex(
        synth::CorpusProfile::kWeb, /*num_tables=*/2000, /*seed=*/42));
    return index;
  }();
  return *kIndex;
}

std::vector<std::string> BenchLines() {
  synth::TableGenOptions opts =
      synth::DefaultTableGenOptions(synth::CorpusProfile::kWeb);
  opts.min_cols = 4;
  opts.max_cols = 4;
  opts.min_rows = 12;
  opts.max_rows = 12;
  synth::TableGenerator gen(synth::CorpusProfile::kWeb, opts, /*seed=*/7);
  return synth::MakeBenchmarkInstance(gen.Generate()).lines;
}

// End-to-end: the extraction pipeline with the global sampler stopped vs
// armed at the production default of 99 Hz. The benchmark thread registers
// itself so its stacks are actually captured — an unregistered thread would
// measure only the (cheaper) overflow-ring path.
void ExtractBenchmark(benchmark::State& state, bool profiling) {
  prof::EnsureThreadRegistered("bench-main");
  CorpusStats stats(&SmallIndex());
  TegraExtractor extractor(&stats);
  const std::vector<std::string> lines = BenchLines();
  prof::CpuProfiler& profiler = prof::CpuProfiler::Global();
  if (profiling) profiler.Start(/*hz=*/99);
  for (auto _ : state) {
    auto result = extractor.Extract(lines);
    benchmark::DoNotOptimize(result);
  }
  if (profiling) {
    state.counters["samples"] =
        static_cast<double>(profiler.samples_total());
    profiler.Stop();
  }
}

void BM_ExtractProfilerOff(benchmark::State& state) {
  ExtractBenchmark(state, false);
}
BENCHMARK(BM_ExtractProfilerOff)->Unit(benchmark::kMillisecond);

void BM_ExtractProfilerOn(benchmark::State& state) {
  ExtractBenchmark(state, true);
}
BENCHMARK(BM_ExtractProfilerOn)->Unit(benchmark::kMillisecond);

void BM_ObserveNoExemplarSource(benchmark::State& state) {
  Histogram::SetExemplarSource(nullptr);
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram(
      "bench.observe_seconds", {0.001, 0.01, 0.1, 1.0});
  double value = 0.0;
  for (auto _ : state) {
    histogram->Observe(value);
    value += 1e-6;
    if (value > 1.0) value = 0.0;
  }
}
BENCHMARK(BM_ObserveNoExemplarSource);

bool BenchExemplarSource(uint64_t* trace_id, uint64_t* request_id) {
  *trace_id = 0x1234;
  *request_id = 0x5678;
  return true;
}

void BM_ObserveWithExemplarSource(benchmark::State& state) {
  Histogram::SetExemplarSource(&BenchExemplarSource);
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram(
      "bench.observe_seconds", {0.001, 0.01, 0.1, 1.0});
  double value = 0.0;
  for (auto _ : state) {
    histogram->Observe(value);
    value += 1e-6;
    if (value > 1.0) value = 0.0;
  }
  Histogram::SetExemplarSource(nullptr);
}
BENCHMARK(BM_ObserveWithExemplarSource);

// Per-request access-log cost at the production 1% sample rate. slow_ms is
// pushed out of reach so the sampling hash is the only keep reason; ~99% of
// iterations measure the drop path, ~1% serialize + fwrite to /dev/null.
void BM_WideEventRecordSampled(benchmark::State& state) {
  prof::WideEventLog log;
  std::FILE* sink = std::fopen("/dev/null", "w");
  log.SetSink(sink, {/*sample=*/0.01, /*slow_ms=*/1e12});
  prof::WideEvent event;
  event.endpoint = "/v1/extract";
  event.outcome = "ok";
  event.http_status = 200;
  event.total_seconds = 0.0035;
  event.extract_seconds = 0.0031;
  event.bytes_in = 512;
  event.bytes_out = 2048;
  uint64_t id = 1;
  for (auto _ : state) {
    event.request_id = id++;
    log.Record(event);
  }
  state.counters["kept"] = static_cast<double>(log.written());
  log.SetSink(nullptr, {});
  if (sink != nullptr) std::fclose(sink);
}
BENCHMARK(BM_WideEventRecordSampled);

void BM_WideEventToJson(benchmark::State& state) {
  prof::WideEvent event;
  event.request_id = 42;
  event.trace_id = 7;
  event.endpoint = "/v1/extract";
  event.outcome = "ok";
  event.http_status = 200;
  event.total_seconds = 0.0035;
  event.extract_seconds = 0.0031;
  event.queue_seconds = 0.0002;
  event.bytes_in = 512;
  event.bytes_out = 2048;
  for (auto _ : state) {
    std::string line = event.ToJson();
    benchmark::DoNotOptimize(line);
  }
}
BENCHMARK(BM_WideEventToJson);

}  // namespace
}  // namespace tegra

BENCHMARK_MAIN();
