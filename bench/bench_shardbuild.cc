// bench_shardbuild — the sharded-vs-monolithic corpus construction benchmark
// behind docs/STORAGE.md "Sharded corpora & delta overlays":
//
//   * build wall-time    single-pass ColumnIndex + EncodeSnapshot publish vs
//                        ShardBuilder at 1/4/8 shards (merge phase on a
//                        4-thread pool), same tables, digest cross-checked
//   * overlay append     AppendOverlay latency for a small delta — must not
//                        scale with the base corpus
//   * reload             ShardedCorpus::Open cold (previous = nullptr) vs
//                        warm (previous generation handed in) after an
//                        overlay append; the warm open remaps only the
//                        overlay, which is the O(delta) hot-reload claim
//
// Results land in BENCH_shardbuild.json (override with --out PATH) so CI can
// archive them next to the other BENCH_*.json artifacts.
//
// Usage: bench_shardbuild [--out PATH] [tables]   (default 4000 tables)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "common/thread_pool.h"
#include "corpus/column_index.h"
#include "corpus/table.h"
#include "service/serve_json.h"
#include "shard/shard_builder.h"
#include "store/corpus_loader.h"
#include "store/manifest.h"
#include "store/sharded_corpus.h"
#include "store/snapshot_writer.h"
#include "synth/corpus_gen.h"

#include <chrono>

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string TempRoot() {
  const char* env = std::getenv("TMPDIR");
  std::string root = env != nullptr ? env : "/tmp";
  return root + "/bench_shardbuild_" + std::to_string(::getpid());
}

void Die(const std::string& message) {
  std::fprintf(stderr, "FATAL: %s\n", message.c_str());
  std::abort();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_shardbuild.json";
  size_t tables = 4000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      tables = static_cast<size_t>(std::atoll(argv[i]));
    }
  }
  const size_t delta_tables = std::max<size_t>(1, tables / 40);

  std::printf("bench_shardbuild: %zu base tables, %zu delta tables\n", tables,
              delta_tables);
  tegra::synth::TableGenerator gen(tegra::synth::CorpusProfile::kWeb, 1);
  const std::vector<tegra::Table> base = gen.GenerateMany(tables);
  tegra::synth::TableGenerator delta_gen(tegra::synth::CorpusProfile::kWeb, 2);
  const std::vector<tegra::Table> delta = delta_gen.GenerateMany(delta_tables);

  const std::string root = TempRoot();
  if (!tegra::EnsureDirectory(root).ok()) Die("cannot create " + root);

  tegra::serve::JsonValue report = tegra::serve::JsonValue::Object();
  report.Set("tables", tegra::serve::JsonValue::Number(
                           static_cast<double>(tables)));
  report.Set("delta_tables", tegra::serve::JsonValue::Number(
                                 static_cast<double>(delta_tables)));

  // -- Monolithic baseline: heap build + snapshot publish. ------------------
  uint64_t mono_digest = 0;
  double mono_ms = 0;
  {
    const auto start = Clock::now();
    tegra::ColumnIndex index;
    for (const tegra::Table& t : base) index.AddTable(t);
    index.Finalize();
    auto bytes = tegra::store::EncodeSnapshot(index);
    if (!bytes.ok()) Die("encode failed");
    const std::string path = root + "/mono.idx2";
    if (!tegra::AtomicWriteFile(path, bytes.value()).ok()) {
      Die("mono publish failed");
    }
    mono_ms = MsSince(start);
    mono_digest = tegra::store::ComputeCorpusDigest(index).digest;
    std::printf("monolithic      build+publish %9.1f ms  (digest %016llx)\n",
                mono_ms, static_cast<unsigned long long>(mono_digest));
  }
  report.Set("monolithic_build_ms", tegra::serve::JsonValue::Number(mono_ms));

  // -- ShardBuilder at 1/4/8 shards, merge phase on a 4-thread pool. --------
  tegra::ThreadPool pool(4);
  tegra::serve::JsonValue sharded = tegra::serve::JsonValue::Array();
  std::string four_shard_dir;
  for (const uint32_t num_shards : {1u, 4u, 8u}) {
    const std::string dir = root + "/s" + std::to_string(num_shards);
    const auto start = Clock::now();
    tegra::shardbuild::ShardBuildOptions options;
    options.num_shards = num_shards;
    options.pool = &pool;
    tegra::shardbuild::ShardBuilder builder(dir, options);
    for (const tegra::Table& t : base) builder.AddTable(t);
    const auto stats = builder.Finish();
    if (!stats.ok()) Die("sharded build failed: " + stats.status().ToString());
    const double ms = MsSince(start);
    auto view = tegra::store::ShardedCorpus::Open(
        tegra::store::ManifestPathFor(dir), nullptr);
    if (!view.ok()) Die("sharded open failed: " + view.status().ToString());
    const uint64_t digest =
        tegra::store::ComputeCorpusDigest(**view).digest;
    if (digest != mono_digest) {
      Die("sharded digest mismatch at " + std::to_string(num_shards) +
          " shards");
    }
    std::printf("sharded x%-2u    build+publish %9.1f ms  (%1.2fx mono, "
                "digest ok)\n",
                num_shards, ms, ms / mono_ms);
    tegra::serve::JsonValue row = tegra::serve::JsonValue::Object();
    row.Set("num_shards", tegra::serve::JsonValue::Number(num_shards));
    row.Set("build_ms", tegra::serve::JsonValue::Number(ms));
    sharded.Append(std::move(row));
    if (num_shards == 4) four_shard_dir = dir;
  }
  report.Set("sharded_builds", std::move(sharded));

  // -- Overlay append + reload: cold vs O(delta) warm. ----------------------
  const std::string manifest =
      tegra::store::ManifestPathFor(four_shard_dir);
  auto gen1 = tegra::store::ShardedCorpus::Open(manifest, nullptr);
  if (!gen1.ok()) Die("gen1 open failed");

  double append_ms = 0;
  {
    tegra::ColumnIndex delta_index;
    for (const tegra::Table& t : delta) delta_index.AddTable(t);
    delta_index.Finalize();
    const auto start = Clock::now();
    const tegra::Status status =
        tegra::shardbuild::AppendOverlay(four_shard_dir, delta_index);
    append_ms = MsSince(start);
    if (!status.ok()) Die("overlay append failed: " + status.ToString());
  }
  std::printf("overlay append  %9.1f ms\n", append_ms);
  report.Set("overlay_append_ms", tegra::serve::JsonValue::Number(append_ms));

  double cold_ms = 0;
  double warm_ms = 0;
  uint64_t reused = 0;
  {
    const auto cold_start = Clock::now();
    auto cold = tegra::store::ShardedCorpus::Open(manifest, nullptr);
    cold_ms = MsSince(cold_start);
    if (!cold.ok()) Die("cold reload failed");

    const auto warm_start = Clock::now();
    auto warm = tegra::store::ShardedCorpus::Open(manifest, gen1.value());
    warm_ms = MsSince(warm_start);
    if (!warm.ok()) Die("warm reload failed");
    reused = warm.value()->reused_parts();
    if (reused != 4) Die("warm reload did not reuse all 4 base shards");
  }
  std::printf("reload          cold %7.2f ms   warm %7.2f ms  "
              "(%llu/4 shards reused)\n",
              cold_ms, warm_ms, static_cast<unsigned long long>(reused));
  report.Set("reload_cold_ms", tegra::serve::JsonValue::Number(cold_ms));
  report.Set("reload_warm_ms", tegra::serve::JsonValue::Number(warm_ms));
  report.Set("reload_parts_reused",
             tegra::serve::JsonValue::Number(static_cast<double>(reused)));

  if (!tegra::AtomicWriteFile(out_path, report.Dump() + "\n").ok()) {
    Die("cannot write " + out_path);
  }
  std::printf("wrote %s\n", out_path.c_str());
  ::system(("rm -rf " + root).c_str());
  return 0;
}
