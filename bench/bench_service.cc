// Microbenchmarks for the serving layer: end-to-end ExtractionService
// latency (cold vs. result-cache hit), submission overhead under admission
// control, and the sharded-LRU / metrics primitives that sit on the hot path.
//
//   ./bench_service --benchmark_filter=Service

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "corpus/corpus_stats.h"
#include "service/extraction_service.h"
#include "service/lru_cache.h"
#include "service/metrics.h"
#include "synth/corpus_gen.h"
#include "corpus/column_index.h"

namespace {

using tegra::serve::ExtractionRequest;
using tegra::serve::ExtractionService;
using tegra::serve::ServiceOptions;

struct ServeFixture {
  ServeFixture()
      : index(tegra::synth::BuildBackgroundIndex(
            tegra::synth::CorpusProfile::kWeb, /*num_tables=*/2000,
            /*seed=*/11)),
        stats(&index),
        extractor(&stats) {}

  static const ServeFixture& Get() {
    static const ServeFixture fixture;
    return fixture;
  }

  std::vector<std::string> List() const {
    return {
        "Boston Massachusetts 645,966",   "Worcester Massachusetts 182,544",
        "Providence Rhode Island 178,042", "Hartford Connecticut 124,775",
        "Springfield Massachusetts 153,060",
    };
  }

  tegra::ColumnIndex index;
  tegra::CorpusStats stats;
  tegra::TegraExtractor extractor;
};

void BM_ServiceColdExtraction(benchmark::State& state) {
  const ServeFixture& fixture = ServeFixture::Get();
  ServiceOptions options;
  options.num_workers = 2;
  options.result_cache_capacity = 0;  // Force a real extraction per request.
  ExtractionService service(&fixture.extractor, options);
  const auto lines = fixture.List();
  for (auto _ : state) {
    ExtractionRequest request;
    request.lines = lines;
    request.bypass_cache = true;
    auto response = service.SubmitAndWait(std::move(request));
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServiceColdExtraction)->Unit(benchmark::kMicrosecond);

void BM_ServiceCacheHit(benchmark::State& state) {
  const ServeFixture& fixture = ServeFixture::Get();
  ExtractionService service(&fixture.extractor);
  const auto lines = fixture.List();
  {
    ExtractionRequest warmup;
    warmup.lines = lines;
    service.SubmitAndWait(std::move(warmup));
  }
  for (auto _ : state) {
    ExtractionRequest request;
    request.lines = lines;
    auto response = service.SubmitAndWait(std::move(request));
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServiceCacheHit)->Unit(benchmark::kMicrosecond);

void BM_ServiceConcurrentClients(benchmark::State& state) {
  // Measures aggregate throughput with N client threads sharing one service
  // (google/benchmark re-invokes this function once per thread).
  static std::unique_ptr<ExtractionService> service;
  const ServeFixture& fixture = ServeFixture::Get();
  if (state.thread_index() == 0) {
    ServiceOptions options;
    options.num_workers = 4;
    options.max_queue_depth = 256;
    service = std::make_unique<ExtractionService>(&fixture.extractor, options);
  }
  const auto lines = fixture.List();
  for (auto _ : state) {
    ExtractionRequest request;
    request.lines = lines;
    auto response = service->SubmitAndWait(std::move(request));
    benchmark::DoNotOptimize(response);
  }
  if (state.thread_index() == 0) {
    state.SetItemsProcessed(state.iterations() * state.threads());
    service.reset();
  }
}
BENCHMARK(BM_ServiceConcurrentClients)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->Unit(benchmark::kMicrosecond);

void BM_RequestCacheKey(benchmark::State& state) {
  const auto lines = ServeFixture::Get().List();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tegra::serve::RequestCacheKey(lines, 3));
  }
}
BENCHMARK(BM_RequestCacheKey);

void BM_ShardedLruGetHit(benchmark::State& state) {
  tegra::ShardedLruCache<uint64_t, uint32_t> cache(1 << 16, 16);
  for (uint64_t i = 0; i < 1024; ++i) cache.Put(i, static_cast<uint32_t>(i));
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Get(key));
    key = (key + 1) & 1023;
  }
}
BENCHMARK(BM_ShardedLruGetHit);

void BM_HistogramObserve(benchmark::State& state) {
  tegra::Histogram histogram;
  double v = 1e-4;
  for (auto _ : state) {
    histogram.Observe(v);
    v = v < 1.0 ? v * 1.01 : 1e-4;
  }
}
BENCHMARK(BM_HistogramObserve);

}  // namespace

BENCHMARK_MAIN();
