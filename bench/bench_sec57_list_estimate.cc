// Reproduces §5.7: estimating the number of useful relational lists "on the
// Web". A simulated raw crawl of HTML lists (mostly navigation chrome, prose
// bullets and fragments, with a small relational fraction) is passed through
// the paper's funnel: a row/length pre-filter, then segmentation, keeping
// only lists whose extracted table has a good per-pair objective score.
// The funnel ratios are then extrapolated to web scale.

#include <cstdio>

#include "common/string_util.h"
#include "eval/experiment.h"
#include "synth/list_gen.h"

namespace tegra::eval {
namespace {

void Run() {
  PrintBanner("Section 5.7: estimating useful relational lists");
  const size_t crawl_size = std::max<size_t>(
      500, BenchTablesPerDataset() * 15);  // Stand-in for the 770K crawl.
  std::printf("simulated raw crawl: %zu HTML lists\n\n", crawl_size);

  const auto crawl = synth::GenerateRawCrawl(crawl_size, /*seed=*/57);
  size_t by_kind[4] = {0, 0, 0, 0};
  for (const auto& list : crawl) ++by_kind[static_cast<int>(list.kind)];
  std::printf("crawl mix: relational=%zu navigation=%zu sentences=%zu "
              "degenerate=%zu\n",
              by_kind[0], by_kind[1], by_kind[2], by_kind[3]);

  // Stage 1: row-count / line-length pre-filter.
  std::vector<const synth::RawList*> filtered;
  for (const auto& list : crawl) {
    if (synth::PassesCrawlFilter(list)) filtered.push_back(&list);
  }
  std::printf("after row/length filter: %zu lists (%.2f%%)\n", filtered.size(),
              100.0 * static_cast<double>(filtered.size()) /
                  static_cast<double>(crawl.size()));

  // Stage 2: segment and keep lists with a good per-pair objective score.
  // The threshold corresponds to the good-quality buckets of Figure 8(a).
  const double kGoodScore = 0.45;
  const CorpusStats& stats = BackgroundStats(BackgroundId::kWeb);
  TegraExtractor tegra(&stats);
  size_t good = 0;
  size_t good_relational = 0;
  for (const synth::RawList* list : filtered) {
    auto result = tegra.Extract(list->lines);
    if (!result.ok()) continue;
    if (result->num_columns >= 2 &&
        result->per_pair_objective <= kGoodScore) {
      ++good;
      if (list->kind == synth::RawListKind::kRelational) ++good_relational;
    }
  }
  std::printf("good relational tables extracted: %zu (%.2f%% of crawl; "
              "%zu truly relational)\n",
              good, 100.0 * static_cast<double>(good) /
                        static_cast<double>(crawl.size()),
              good_relational);

  // Extrapolation in the paper's style: the sampled chunk was 0.006% of the
  // index; scale our good-list rate to a hypothetical full web of 500M
  // lists.
  const double rate =
      static_cast<double>(good) / static_cast<double>(crawl.size());
  std::printf("\nExtrapolating to a 500M-list web crawl: ~%.0fM useful "
              "relational lists\n",
              rate * 500.0);
  std::printf("(paper: \"over 30 million lists with good relational "
              "content\")\n");
}

}  // namespace
}  // namespace tegra::eval

int main() {
  tegra::eval::Run();
  return 0;
}
