// bench_store — the heap-vs-mmap corpus representation benchmark behind
// docs/STORAGE.md:
//
//   * publish cost      EncodeSnapshot + atomic write, v1 vs v2 bytes
//   * open latency      LoadColumnIndex (full heap parse) vs MmapCorpus::Open
//                       (header + section-table validation only)
//   * memory            process RSS delta attributable to each open, plus
//                       the views' own HeapBytes / MappedBytes accounting
//   * query throughput  Lookup and CoOccurrenceCount over identical pair
//                       workloads, with a cross-checked hit total so the two
//                       representations provably answered the same queries
//
// Usage: bench_store [tables ...]   (default scales: 5000 28000)
//
// The 28k-table scale is the acceptance gate: MmapCorpus::Open must come in
// under 50 ms (it is usually under 1 ms — no payload is read at open).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "corpus/column_index.h"
#include "corpus/corpus_io.h"
#include "corpus/corpus_view.h"
#include "store/mmap_corpus.h"
#include "store/snapshot_writer.h"
#include "synth/corpus_gen.h"

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Current resident set size in KiB (VmRSS from /proc/self/status), or 0.
size_t RssKib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kib = static_cast<size_t>(std::atoll(line + 6));
      break;
    }
  }
  std::fclose(f);
  return kib;
}

struct PairWorkload {
  std::vector<std::pair<tegra::ValueId, tegra::ValueId>> pairs;
};

/// Same logical workload for both views: pair up popular values (long,
/// block-compressed postings) and random ones, translated per-view through
/// the value strings so relabeled snapshot ids do not change the queries.
PairWorkload BuildWorkload(const tegra::CorpusView& view,
                           const std::vector<std::string>& popular,
                           const std::vector<std::string>& random_values) {
  PairWorkload out;
  std::vector<tegra::ValueId> ids;
  for (const auto& value : popular) ids.push_back(view.Lookup(value));
  for (const auto& value : random_values) ids.push_back(view.Lookup(value));
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); j += 5) {
      out.pairs.emplace_back(ids[i], ids[j]);
    }
  }
  return out;
}

struct QueryResult {
  double co_ms = 0;
  double lookup_ms = 0;
  uint64_t hit_total = 0;  ///< Cross-representation checksum.
};

QueryResult RunQueries(const tegra::CorpusView& view,
                       const PairWorkload& workload,
                       const std::vector<std::string>& lookup_values,
                       int rounds) {
  QueryResult result;
  Clock::time_point start = Clock::now();
  for (int round = 0; round < rounds; ++round) {
    for (const auto& [a, b] : workload.pairs) {
      result.hit_total += view.CoOccurrenceCount(a, b);
    }
  }
  result.co_ms = MsSince(start);

  start = Clock::now();
  uint64_t found = 0;
  for (int round = 0; round < rounds; ++round) {
    for (const std::string& value : lookup_values) {
      found += view.Lookup(value) != tegra::kInvalidValueId ? 1 : 0;
    }
  }
  result.lookup_ms = MsSince(start);
  result.hit_total += found;
  return result;
}

void BenchScale(size_t tables) {
  std::printf("=== %zu tables ===\n", tables);
  const std::string v1_path =
      "/tmp/bench_store_" + std::to_string(tables) + ".idx";
  const std::string v2_path = v1_path + "2";

  Clock::time_point start = Clock::now();
  const tegra::ColumnIndex built = tegra::synth::BuildBackgroundIndex(
      tegra::synth::CorpusProfile::kWeb, tables, /*seed=*/1);
  std::printf("build            %8.1f ms  (%llu columns, %zu values)\n",
              MsSince(start),
              static_cast<unsigned long long>(built.TotalColumns()),
              built.NumValues());

  start = Clock::now();
  if (!tegra::SaveColumnIndex(built, v1_path).ok()) std::abort();
  const double v1_save_ms = MsSince(start);
  start = Clock::now();
  if (!tegra::store::WriteSnapshot(built, v2_path).ok()) std::abort();
  const double v2_save_ms = MsSince(start);

  // Open latency + RSS delta. v1 materializes the whole index on the heap;
  // v2 maps the file and reads only the header + section table.
  const size_t rss_before_v1 = RssKib();
  start = Clock::now();
  auto heap = tegra::LoadColumnIndex(v1_path);
  const double v1_open_ms = MsSince(start);
  if (!heap.ok()) std::abort();
  const size_t rss_after_v1 = RssKib();

  start = Clock::now();
  auto mapped = tegra::store::MmapCorpus::Open(v2_path);
  const double v2_open_ms = MsSince(start);
  if (!mapped.ok()) std::abort();
  const size_t rss_after_v2 = RssKib();

  std::printf("publish          v1 %6.1f ms   v2 %6.1f ms\n", v1_save_ms,
              v2_save_ms);
  std::printf("open             v1 %8.3f ms   v2 %8.3f ms   (speedup %.0fx)\n",
              v1_open_ms, v2_open_ms,
              v2_open_ms > 0 ? v1_open_ms / v2_open_ms : 0.0);
  std::printf("open RSS delta   v1 %6zu KiB  v2 %6zu KiB\n",
              rss_after_v1 - rss_before_v1, rss_after_v2 - rss_after_v1);
  std::printf("view accounting  v1 heap %6.1f MiB   v2 heap %zu B"
              " + mapped %.1f MiB\n",
              static_cast<double>(heap->HeapBytes()) / (1 << 20),
              (*mapped)->HeapBytes(),
              static_cast<double>((*mapped)->MappedBytes()) / (1 << 20));

  // Query throughput over an identical pair workload.
  std::vector<tegra::ValueId> by_count(heap->NumValues());
  for (size_t i = 0; i < by_count.size(); ++i) {
    by_count[i] = static_cast<tegra::ValueId>(i);
  }
  std::partial_sort(by_count.begin(),
                    by_count.begin() + std::min<size_t>(24, by_count.size()),
                    by_count.end(),
                    [&](tegra::ValueId a, tegra::ValueId b) {
                      return heap->ColumnCount(a) > heap->ColumnCount(b);
                    });
  std::vector<std::string> popular;
  for (size_t i = 0; i < std::min<size_t>(24, by_count.size()); ++i) {
    popular.push_back(heap->ValueString(by_count[i]));
  }
  std::mt19937 rng(7);
  std::uniform_int_distribution<size_t> pick(0, heap->NumValues() - 1);
  std::vector<std::string> random_values;
  for (int i = 0; i < 40; ++i) {
    random_values.push_back(
        heap->ValueString(static_cast<tegra::ValueId>(pick(rng))));
  }

  const PairWorkload heap_work =
      BuildWorkload(*heap, popular, random_values);
  const PairWorkload mmap_work =
      BuildWorkload(**mapped, popular, random_values);
  const int rounds = 200;
  const QueryResult heap_result =
      RunQueries(*heap, heap_work, random_values, rounds);
  const QueryResult mmap_result =
      RunQueries(**mapped, mmap_work, random_values, rounds);
  if (heap_result.hit_total != mmap_result.hit_total) {
    std::fprintf(stderr,
                 "FATAL: representations disagree (heap=%llu mmap=%llu)\n",
                 static_cast<unsigned long long>(heap_result.hit_total),
                 static_cast<unsigned long long>(mmap_result.hit_total));
    std::abort();
  }
  const double ops = static_cast<double>(heap_work.pairs.size()) * rounds;
  std::printf("intersections    v1 %7.2f Mops/s   v2 %7.2f Mops/s"
              "   (hit checksum %llu)\n",
              ops / heap_result.co_ms / 1e3, ops / mmap_result.co_ms / 1e3,
              static_cast<unsigned long long>(heap_result.hit_total));
  const double lookups = static_cast<double>(random_values.size()) * rounds;
  std::printf("lookups          v1 %7.2f Mops/s   v2 %7.2f Mops/s\n",
              lookups / heap_result.lookup_ms / 1e3,
              lookups / mmap_result.lookup_ms / 1e3);

  if (tables >= 28000) {
    std::printf("acceptance       mmap open %.3f ms %s 50 ms budget\n",
                v2_open_ms, v2_open_ms < 50.0 ? "<" : ">=");
    if (v2_open_ms >= 50.0) std::abort();
  }
  std::printf("\n");
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<size_t> scales;
  for (int i = 1; i < argc; ++i) {
    scales.push_back(static_cast<size_t>(std::atoll(argv[i])));
  }
  if (scales.empty()) scales = {5000, 28000};
  for (const size_t tables : scales) BenchScale(tables);
  return 0;
}
