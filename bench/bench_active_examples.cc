// Extension experiment (the paper's §7 future work): does *choosing* which
// rows the user labels beat labeling random rows? Extends Figure K.1 by
// comparing TEGRA with k random examples against TEGRA with k actively
// selected examples (most-uncertain row first).

#include <cstdio>

#include "common/string_util.h"
#include "core/active.h"
#include "eval/experiment.h"

namespace tegra::eval {
namespace {

/// Supervised adapter that picks examples with the active strategy.
SegmentFn TegraActiveFn(const CorpusStats* stats, int k) {
  return [stats, k](const EvalInstance& instance) -> Result<Table> {
    TegraOptions opts;
    opts.tokenizer = instance.tokenizer;
    TegraExtractor extractor(stats, opts);
    std::vector<SegmentationExample> examples;
    for (int round = 0; round < k; ++round) {
      Result<size_t> next =
          SuggestNextExample(extractor, instance.lines, examples);
      if (!next.ok()) break;  // Fewer rows than k.
      SegmentationExample ex;
      ex.line_index = *next;
      ex.cells = instance.truth.Row(*next);
      examples.push_back(std::move(ex));
    }
    Result<ExtractionResult> result =
        examples.empty() ? extractor.Extract(instance.lines)
                         : extractor.ExtractWithExamples(instance.lines,
                                                         examples);
    if (!result.ok()) return result.status();
    return std::move(result).value().table;
  };
}

void Run() {
  PrintBanner("Extension: active vs random example selection (Web)");
  const size_t count = std::max<size_t>(10, BenchTablesPerDataset() / 2);
  std::printf("tables: %zu\n\n", count);

  const CorpusStats& stats = BackgroundStats(BackgroundId::kWeb);
  const auto instances = BuildDataset(DatasetId::kWeb, count);

  TextTable table({"#examples", "random F", "active F"});
  for (int k = 1; k <= 3; ++k) {
    const AlgoEvaluation random =
        EvaluateAlgorithm(instances, TegraSupervisedFn(&stats, k));
    const AlgoEvaluation active =
        EvaluateAlgorithm(instances, TegraActiveFn(&stats, k));
    table.AddRow({std::to_string(k), FormatDouble(random.mean.f1),
                  FormatDouble(active.mean.f1)});
  }
  table.Print();
  std::printf(
      "\nActive selection labels the row the aligner is least sure about, so"
      "\neach label should buy at least as much quality as a random one.\n");
}

}  // namespace
}  // namespace tegra::eval

int main() {
  tegra::eval::Run();
  return 0;
}
