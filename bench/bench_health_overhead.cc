// bench_health_overhead — answers "what does the health layer cost the
// serving path?": extraction throughput with the full recorder pipeline
// (metrics snapshot -> time-series ingest -> SLO evaluation -> watchdog
// scan, plus per-task heartbeat stamps) vs. --health-interval-ms=0. The
// heartbeat stamps are two relaxed atomic stores per task and the recorder
// runs off-thread once a second, so the budget documented in
// docs/OBSERVABILITY.md is < 2% throughput delta.
//
//   ./bench_health_overhead [--seconds S] [--clients N] [--interval-ms MS]
//                           [--rounds R]
//
// Rounds alternate baseline / recorded so thermal and cache drift hit both
// arms equally; the report shows per-round and aggregate throughput.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus_stats.h"
#include "health/monitor.h"
#include "service/extraction_service.h"
#include "synth/corpus_gen.h"
#include "trace/trace.h"
#include "corpus/column_index.h"

namespace {

using tegra::serve::ExtractionRequest;
using tegra::serve::ExtractionService;
using tegra::serve::ServiceOptions;

struct BenchConfig {
  double seconds_per_round = 1.5;
  int clients = 2;
  double interval_ms = 1000.0;
  int rounds = 3;  // Per arm; total rounds = 2 * rounds (alternating).
};

std::vector<std::string> MakeList(size_t rotate) {
  static const std::vector<std::string> base = {
      "Boston Massachusetts 645,966",    "Worcester Massachusetts 182,544",
      "Providence Rhode Island 178,042", "Hartford Connecticut 124,775",
      "Springfield Massachusetts 153,060", "Bridgeport Connecticut 144,229",
      "New Haven Connecticut 129,779",   "Stamford Connecticut 122,643",
  };
  std::vector<std::string> lines;
  for (size_t j = 0; j < base.size(); ++j) {
    lines.push_back(base[(rotate + j) % base.size()]);
  }
  return lines;
}

/// One timed round of closed-loop extraction load; returns requests/second.
double RunRound(ExtractionService* service, const BenchConfig& config) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        ExtractionRequest request;
        request.lines = MakeList((static_cast<size_t>(c) * 131 + i++) % 8);
        request.bypass_cache = true;  // Measure extraction, not the cache.
        const auto response = service->SubmitAndWait(std::move(request));
        if (response.ok()) completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(
      std::chrono::duration<double>(config.seconds_per_round));
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(completed.load()) / elapsed;
}

double Mean(const std::vector<double>& v) {
  return v.empty() ? 0.0
                   : std::accumulate(v.begin(), v.end(), 0.0) /
                         static_cast<double>(v.size());
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--seconds") == 0) {
      config.seconds_per_round = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--clients") == 0) {
      config.clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--interval-ms") == 0) {
      config.interval_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--rounds") == 0) {
      config.rounds = std::atoi(argv[++i]);
    }
  }

  std::fprintf(stderr, "building corpus...\n");
  tegra::ColumnIndex index = tegra::synth::BuildBackgroundIndex(
      tegra::synth::CorpusProfile::kWeb, /*num_tables=*/2000, /*seed=*/11);
  tegra::CorpusStats stats(&index);
  tegra::TegraExtractor extractor(&stats);

  // Both arms run the same service construction: heartbeats registered,
  // ScopedWork stamping every task. The treatment arm adds the recorder
  // thread; the baseline leaves it stopped (interval 0, the daemon's
  // --health-interval-ms=0 shape). This isolates exactly what the flag
  // toggles in production.
  tegra::MetricsRegistry registry;
  tegra::trace::Tracer::Global().BindMetrics(&registry);

  tegra::health::HealthOptions health_options;
  health_options.interval_seconds = config.interval_ms / 1e3;
  tegra::health::HealthMonitor monitor(&registry, std::move(health_options));

  ServiceOptions service_options;
  service_options.num_workers = 2;
  service_options.result_cache_capacity = 0;
  service_options.heartbeats = monitor.heartbeats();
  ExtractionService service(&extractor, service_options, &registry);

  // Warm-up: populate the co-occurrence cache so round 1 is not special.
  RunRound(&service, config);

  std::vector<double> baseline, recorded;
  std::printf("round  arm        req/s\n");
  for (int round = 0; round < config.rounds; ++round) {
    monitor.Stop();
    const double off = RunRound(&service, config);
    baseline.push_back(off);
    std::printf("%-6d baseline  %8.1f\n", round, off);

    monitor.Start();
    const double on = RunRound(&service, config);
    recorded.push_back(on);
    std::printf("%-6d recorded  %8.1f\n", round, on);
    std::fflush(stdout);
  }
  monitor.Stop();

  const double base_mean = Mean(baseline);
  const double recorded_mean = Mean(recorded);
  const double delta_pct =
      base_mean > 0 ? 100.0 * (base_mean - recorded_mean) / base_mean : 0.0;
  std::printf(
      "\nbaseline %.1f req/s | recorder @ %.0f ms %.1f req/s | "
      "delta %.2f%% | recorder ticks %llu\n",
      base_mean, config.interval_ms, recorded_mean, delta_pct,
      static_cast<unsigned long long>(monitor.store()->ticks()));
  std::printf("budget: < 2%% throughput delta (docs/OBSERVABILITY.md)\n");
  tegra::trace::Tracer::Global().BindMetrics(nullptr);
  return 0;
}
