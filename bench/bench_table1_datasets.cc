// Reproduces Table 1: characteristics of the three generated benchmark
// datasets (average rows, average columns, % numeric cells), plus the
// average tokens per cell (the difficulty proxy of Figure 8(c,d)).

#include <cstdio>

#include "common/string_util.h"
#include "eval/experiment.h"
#include "text/tokenizer.h"

namespace tegra::eval {
namespace {

void Run() {
  PrintBanner("Table 1: Benchmark dataset characteristics");
  std::printf("tables per generated dataset: %zu\n\n",
              BenchTablesPerDataset());

  TextTable table({"Data set", "avg # rows", "avg # cols",
                   "avg % numeric cells", "avg tokens/cell"});
  Tokenizer tokenizer;
  for (DatasetId id :
       {DatasetId::kWeb, DatasetId::kWiki, DatasetId::kEnterprise}) {
    const auto instances = BuildDataset(id, BenchTablesPerDataset());
    double rows = 0;
    double cols = 0;
    double numeric = 0;
    double tokens = 0;
    for (const EvalInstance& inst : instances) {
      rows += static_cast<double>(inst.truth.NumRows());
      cols += static_cast<double>(inst.truth.NumCols());
      numeric += inst.truth.NumericCellFraction();
      tokens += inst.truth.AvgTokensPerCell(tokenizer);
    }
    const double n = static_cast<double>(instances.size());
    table.AddRow({DatasetName(id), FormatDouble(rows / n, 1),
                  FormatDouble(cols / n, 1),
                  FormatDouble(100.0 * numeric / n, 1) + "%",
                  FormatDouble(tokens / n, 2)});
  }
  table.Print();
  std::printf(
      "\nPaper reference: Web 14.2/6.2/43.1%%, Wiki 11.8/5.0/42.1%%, "
      "Enterprise 15.0/4.5/56.8%%.\n");
}

}  // namespace
}  // namespace tegra::eval

int main() {
  tegra::eval::Run();
  return 0;
}
