// tegra_cli — extract a table from an unsegmented list on the command line.
//
// Reads one list row per input line (from a file or stdin), segments it with
// TEGRA against a background corpus, and prints the table in one of several
// formats.
//
// Examples:
//   ./tegra_cli list.txt
//   ./tegra_cli --columns 3 --format csv list.txt
//   ./tegra_cli --corpus /tmp/tegra_cache/bweb_20000.idx --format markdown -
//   ./tegra_cli --build-corpus web:5000:1 --save-corpus web.idx list.txt
//   ./tegra_cli --delimiters ",;:" --example "0:Boston|Massachusetts|645 966"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/tegra.h"
#include "corpus/corpus_io.h"
#include "corpus/corpus_stats.h"
#include "corpus/table_io.h"
#include "synth/corpus_gen.h"
#include "trace/chrome_trace.h"
#include "trace/trace.h"

namespace {

void PrintUsage() {
  std::fputs(R"(usage: tegra_cli [options] [input_file|-]

Reads one unsegmented list row per line and prints the extracted table.

options:
  --columns N             segment into exactly N columns (default: auto)
  --alpha X               syntactic weight in [0,1] (default 0.5)
  --delimiters CHARS      extra punctuation delimiters (whitespace always)
  --corpus PATH           load a serialized background index
  --build-corpus SPEC     build a synthetic corpus; SPEC = profile:tables:seed
                          with profile in {web, wiki, enterprise}
                          (default: web:5000:1 when --corpus is not given)
  --save-corpus PATH      persist the (built) corpus for reuse
  --example "IDX:a|b|c"   supervised: row IDX is segmented as cells a, b, c
                          (repeatable; cells separated by '|')
  --format FMT            table | csv | tsv | markdown   (default: table)
  --threads N             anchor-evaluation worker threads (default 1)
  --naive                 disable the A* pruning (TEGRA-naive+)
  --jaccard               use Jaccard instead of NPMI for semantic distance
  --stats                 print extraction statistics to stderr
  --trace-out PATH        record pipeline spans and write a Chrome trace JSON
                          (open in chrome://tracing or ui.perfetto.dev)
  --help                  this text
)",
             stderr);
}

struct CliOptions {
  std::string input = "-";
  int columns = 0;
  std::string corpus_path;
  std::string build_spec;
  std::string save_corpus;
  std::string format = "table";
  std::vector<std::string> example_specs;
  bool show_stats = false;
  std::string trace_out;
  tegra::TegraOptions tegra;
};

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else if (arg == "--columns") {
      if (!(v = need_value(i))) return false;
      opts->columns = std::atoi(v);
    } else if (arg == "--alpha") {
      if (!(v = need_value(i))) return false;
      opts->tegra.distance.alpha = std::atof(v);
    } else if (arg == "--delimiters") {
      if (!(v = need_value(i))) return false;
      opts->tegra.tokenizer.punctuation_delimiters = v;
    } else if (arg == "--corpus") {
      if (!(v = need_value(i))) return false;
      opts->corpus_path = v;
    } else if (arg == "--build-corpus") {
      if (!(v = need_value(i))) return false;
      opts->build_spec = v;
    } else if (arg == "--save-corpus") {
      if (!(v = need_value(i))) return false;
      opts->save_corpus = v;
    } else if (arg == "--example") {
      if (!(v = need_value(i))) return false;
      opts->example_specs.emplace_back(v);
    } else if (arg == "--format") {
      if (!(v = need_value(i))) return false;
      opts->format = v;
    } else if (arg == "--threads") {
      if (!(v = need_value(i))) return false;
      opts->tegra.num_threads = std::atoi(v);
    } else if (arg == "--naive") {
      opts->tegra.use_astar = false;
    } else if (arg == "--jaccard") {
      opts->tegra.distance.measure = tegra::SemanticMeasure::kJaccard;
    } else if (arg == "--stats") {
      opts->show_stats = true;
    } else if (arg == "--trace-out") {
      if (!(v = need_value(i))) return false;
      opts->trace_out = v;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    } else {
      opts->input = arg;
    }
  }
  return true;
}

tegra::Result<tegra::ColumnIndex> BuildOrLoadCorpus(const CliOptions& opts) {
  if (!opts.corpus_path.empty()) {
    return tegra::LoadColumnIndex(opts.corpus_path);
  }
  std::string spec = opts.build_spec.empty() ? "web:5000:1" : opts.build_spec;
  const auto parts = tegra::SplitExact(spec, ":");
  if (parts.empty() || parts.size() > 3) {
    return tegra::Status::InvalidArgument("bad --build-corpus spec: " + spec);
  }
  tegra::synth::CorpusProfile profile;
  if (parts[0] == "web") {
    profile = tegra::synth::CorpusProfile::kWeb;
  } else if (parts[0] == "wiki") {
    profile = tegra::synth::CorpusProfile::kWiki;
  } else if (parts[0] == "enterprise") {
    profile = tegra::synth::CorpusProfile::kEnterprise;
  } else {
    return tegra::Status::InvalidArgument("unknown profile: " + parts[0]);
  }
  const size_t tables =
      parts.size() > 1 ? static_cast<size_t>(std::atoll(parts[1].c_str()))
                       : 5000;
  const uint64_t seed =
      parts.size() > 2 ? static_cast<uint64_t>(std::atoll(parts[2].c_str()))
                       : 1;
  std::fprintf(stderr, "building %s corpus (%zu tables, seed %llu)...\n",
               parts[0].c_str(), tables,
               static_cast<unsigned long long>(seed));
  return tegra::synth::BuildBackgroundIndex(profile, tables, seed);
}

tegra::Result<std::vector<tegra::SegmentationExample>> ParseExamples(
    const std::vector<std::string>& specs) {
  std::vector<tegra::SegmentationExample> examples;
  for (const std::string& spec : specs) {
    const size_t colon = spec.find(':');
    if (colon == std::string::npos) {
      return tegra::Status::InvalidArgument(
          "example must be IDX:cell|cell|...: " + spec);
    }
    tegra::SegmentationExample ex;
    ex.line_index = static_cast<size_t>(std::atoll(spec.substr(0, colon).c_str()));
    ex.cells = tegra::SplitExact(spec.substr(colon + 1), "|");
    examples.push_back(std::move(ex));
  }
  return examples;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!ParseArgs(argc, argv, &opts)) {
    PrintUsage();
    return 2;
  }

  // Read input lines.
  std::vector<std::string> lines;
  std::istream* in = &std::cin;
  std::ifstream file;
  if (opts.input != "-") {
    file.open(opts.input);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", opts.input.c_str());
      return 1;
    }
    in = &file;
  }
  std::string line;
  while (std::getline(*in, line)) {
    if (!tegra::Trim(line).empty()) lines.push_back(line);
  }
  if (lines.empty()) {
    std::fprintf(stderr, "no input lines\n");
    return 1;
  }

  // Corpus.
  auto index = BuildOrLoadCorpus(opts);
  if (!index.ok()) {
    std::fprintf(stderr, "corpus: %s\n", index.status().ToString().c_str());
    return 1;
  }
  if (!opts.save_corpus.empty()) {
    tegra::Status s = tegra::SaveColumnIndex(*index, opts.save_corpus);
    if (!s.ok()) std::fprintf(stderr, "save-corpus: %s\n", s.ToString().c_str());
  }
  tegra::CorpusStats stats(&index.value());

  // Tracing: enabled only when the caller asked for a dump, so the default
  // CLI path stays span-free.
  tegra::trace::Tracer& tracer = tegra::trace::Tracer::Global();
  if (!opts.trace_out.empty()) tracer.SetEnabled(true);

  // Extract.
  tegra::TegraExtractor extractor(&stats, opts.tegra);
  tegra::Result<tegra::ExtractionResult> result = [&] {
    if (!opts.example_specs.empty()) {
      auto examples = ParseExamples(opts.example_specs);
      if (!examples.ok()) {
        return tegra::Result<tegra::ExtractionResult>(examples.status());
      }
      return extractor.ExtractWithExamples(lines, *examples);
    }
    if (opts.columns > 0) {
      return extractor.ExtractWithColumns(lines, opts.columns);
    }
    return extractor.Extract(lines);
  }();
  if (!result.ok()) {
    std::fprintf(stderr, "extraction: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  if (!opts.trace_out.empty()) {
    tegra::Status s =
        tegra::trace::WriteChromeTrace(opts.trace_out, tracer.RingSnapshot());
    if (!s.ok()) {
      std::fprintf(stderr, "trace-out: %s\n", s.ToString().c_str());
    } else {
      std::fprintf(stderr, "trace: %llu spans -> %s\n",
                   static_cast<unsigned long long>(tracer.spans_recorded()),
                   opts.trace_out.c_str());
    }
  }

  // Output.
  const tegra::Table& table = result->table;
  if (opts.format == "csv") {
    std::fputs(tegra::TableToCsv(table).c_str(), stdout);
  } else if (opts.format == "tsv") {
    std::fputs(tegra::TableToTsv(table).c_str(), stdout);
  } else if (opts.format == "markdown") {
    std::fputs(tegra::TableToMarkdown(table).c_str(), stdout);
  } else {
    std::fputs(table.ToString().c_str(), stdout);
  }

  if (opts.show_stats) {
    std::fprintf(stderr,
                 "columns=%d sp=%.3f per_column=%.3f anchor_line=%zu "
                 "nodes=%zu time=%.3fs\n",
                 result->num_columns, result->sp,
                 result->per_column_objective, result->anchor_line,
                 result->nodes_expanded, result->seconds);
  }
  return 0;
}
