// tegra_loadgen — an open-loop load generator for the tegra_serve data
// plane (POST /v1/extract), producing latency-vs-offered-load curves.
//
// Open-loop means arrivals are scheduled on a fixed clock, NOT gated on
// responses: worker i sends the k-th request at t0 + k/qps regardless of
// whether earlier requests have completed. A closed-loop client (send,
// wait, send) silently slows its own arrival rate when the server stalls
// and therefore under-reports tail latency ("coordinated omission"); here
// latency is measured from the *scheduled* arrival time, so queueing delay
// the client itself experienced is part of the number — exactly what a
// user behind a load balancer would see.
//
//   $ ./tegra_serve --build-corpus web:200:1 --port 0 &   # note data_ready
//   $ ./tegra_loadgen --port 41873 --qps 50,100,200,400 --duration-s 5
//       (writes BENCH_dataplane.json; see --out)
//
// Each sweep step reports offered vs achieved QPS, HTTP status breakdown
// and p50/p90/p99/max latency, on stderr as it runs and as one JSON
// document at the end (BENCH_dataplane.json by convention).
//
// Overload mode (--overload-factor) first measures the server's capacity
// with a short closed-loop probe, then offers factor × capacity for each
// listed factor — so "2" always means 2× whatever THIS machine sustains,
// not a hard-coded QPS. Responses are scanned for "quality_level" and
// "sp" so the report shows, per degradation rung, how much latency was
// bought and what SP-score it cost (BENCH_overload.json by convention).
// --tenant-mix spreads requests across X-Tegra-Tenant identities to
// exercise per-tenant quotas; 429s are tracked separately from 503s.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "net/http_client.h"

namespace {

using Clock = std::chrono::steady_clock;

void PrintUsage() {
  std::fputs(R"(usage: tegra_loadgen --port N [options]

Open-loop QPS sweep against a tegra_serve data plane (POST /v1/extract).

options:
  --host HOST        server address (default 127.0.0.1)
  --port N           data-plane port (required; see the data_ready event)
  --qps LIST         comma-separated offered-QPS steps (default 25,50,100,200)
  --duration-s D     seconds per step (default 5)
  --connections N    concurrent client connections / worker threads
                     (default 16)
  --batch N          items per batch body; 0 = single bodies (default 0)
  --lines N          rows per request body (default 3). Extraction cost
                     grows superlinearly with rows, so larger bodies make
                     the server extraction-bound rather than HTTP-bound —
                     required for the overload drill to exercise the
                     degradation ladder
  --bypass-cache     set "bypass_cache":true so every request extracts
  --timeout-ms D     client socket timeout (default 10000)
  --out PATH         JSON results file (default BENCH_dataplane.json)
  --admin-port N     tegra_serve admin-plane port; enables --profile-*
  --profile-seconds D  while the sweep runs, capture a D-second CPU profile
                     via GET /pprof/profile on the admin plane (default 0 =
                     no profile)
  --profile-out PATH where to write the folded stacks
                     (default BENCH_profile.folded)
  --series-out PATH  also write a per-second client-side time series across
                     the whole sweep (sent/completed/errors/p50/p99 per
                     second, JSON) — the client's view to line up against
                     the server's /timeseriesz (default: off)

overload mode (replaces --qps with capacity-relative steps):
  --overload-factor LIST  comma-separated multiples of measured capacity
                     (e.g. 0.5,1,2). A closed-loop probe first measures
                     what the server sustains; each step then offers
                     factor × capacity. Writes the "overload" bench shape
                     with per-rung latency / SP-score columns
                     (use --out BENCH_overload.json by convention)
  --probe-s D        closed-loop capacity-probe duration (default 3)
  --probe-connections N  connections for the capacity probe (default:
                     --connections). Keep this near the server's worker
                     count so the probe saturates the workers WITHOUT
                     building a queue — a probe that itself trips the
                     ladder would measure degraded capacity and overshoot
  --tenant-mix SPEC  weighted X-Tegra-Tenant header mix, e.g. "a:3,b:1"
                     sends 3 of every 4 requests as tenant a (default:
                     no tenant header)
  --assert-p99-ms X  exit 3 if any overload step's p99 exceeds X ms
  --assert-availability F  exit 3 if any overload step's non-503
                     availability drops below F (e.g. 0.99); quota 429s
                     do not count against availability
  --help             this text
)",
             stderr);
}

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  int port = -1;
  std::vector<double> qps_steps = {25, 50, 100, 200};
  double duration_s = 5;
  int connections = 16;
  int batch = 0;
  int lines = 3;
  bool bypass_cache = false;
  int timeout_ms = 10000;
  std::string out_path = "BENCH_dataplane.json";
  int admin_port = -1;
  double profile_seconds = 0;
  std::string profile_out = "BENCH_profile.folded";
  /// Per-second client-side series destination; empty = disabled.
  std::string series_out;
  /// Overload mode: multiples of measured capacity; empty = classic sweep.
  std::vector<double> overload_factors;
  double probe_s = 3;
  int probe_connections = 0;  ///< 0 = same as connections.
  /// Weight-expanded tenant table ("a:3,b:1" → a,a,a,b); empty = no header.
  std::vector<std::string> tenant_table;
  double assert_p99_ms = 0;        ///< 0 = no assertion.
  double assert_availability = 0;  ///< 0 = no assertion.
};

/// "a:3,b:1" → ["a","a","a","b"]; weight defaults to 1.
bool ParseTenantMix(const char* spec, std::vector<std::string>* table) {
  table->clear();
  const char* p = spec;
  while (*p != '\0') {
    std::string name;
    while (*p != '\0' && *p != ':' && *p != ',') name += *p++;
    long weight = 1;
    if (*p == ':') {
      char* end = nullptr;
      weight = std::strtol(p + 1, &end, 10);
      if (end == p + 1 || weight <= 0 || weight > 1000) return false;
      p = end;
    }
    if (name.empty()) return false;
    for (long i = 0; i < weight; ++i) table->push_back(name);
    if (*p == ',') ++p;
  }
  return !table->empty();
}

bool ParseQpsList(const char* list, std::vector<double>* out) {
  out->clear();
  const char* p = list;
  while (*p != '\0') {
    char* end = nullptr;
    const double qps = std::strtod(p, &end);
    if (end == p || qps <= 0) return false;
    out->push_back(qps);
    p = end;
    if (*p == ',') ++p;
  }
  return !out->empty();
}

bool ParseArgs(int argc, char** argv, LoadgenOptions* opts) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else if (arg == "--host") {
      if (!(v = need_value(i))) return false;
      opts->host = v;
    } else if (arg == "--port") {
      if (!(v = need_value(i))) return false;
      opts->port = std::atoi(v);
    } else if (arg == "--qps") {
      if (!(v = need_value(i))) return false;
      if (!ParseQpsList(v, &opts->qps_steps)) {
        std::fprintf(stderr, "bad --qps list: %s\n", v);
        return false;
      }
    } else if (arg == "--duration-s") {
      if (!(v = need_value(i))) return false;
      opts->duration_s = std::atof(v);
    } else if (arg == "--connections") {
      if (!(v = need_value(i))) return false;
      opts->connections = std::atoi(v);
    } else if (arg == "--batch") {
      if (!(v = need_value(i))) return false;
      opts->batch = std::atoi(v);
    } else if (arg == "--lines") {
      if (!(v = need_value(i))) return false;
      opts->lines = std::atoi(v);
      if (opts->lines <= 0) {
        std::fprintf(stderr, "bad --lines: %s\n", v);
        return false;
      }
    } else if (arg == "--bypass-cache") {
      opts->bypass_cache = true;
    } else if (arg == "--timeout-ms") {
      if (!(v = need_value(i))) return false;
      opts->timeout_ms = std::atoi(v);
    } else if (arg == "--out") {
      if (!(v = need_value(i))) return false;
      opts->out_path = v;
    } else if (arg == "--admin-port") {
      if (!(v = need_value(i))) return false;
      opts->admin_port = std::atoi(v);
    } else if (arg == "--profile-seconds") {
      if (!(v = need_value(i))) return false;
      opts->profile_seconds = std::atof(v);
    } else if (arg == "--profile-out") {
      if (!(v = need_value(i))) return false;
      opts->profile_out = v;
    } else if (arg == "--series-out") {
      if (!(v = need_value(i))) return false;
      opts->series_out = v;
    } else if (arg == "--overload-factor") {
      if (!(v = need_value(i))) return false;
      if (!ParseQpsList(v, &opts->overload_factors)) {
        std::fprintf(stderr, "bad --overload-factor list: %s\n", v);
        return false;
      }
    } else if (arg == "--probe-s") {
      if (!(v = need_value(i))) return false;
      opts->probe_s = std::atof(v);
    } else if (arg == "--probe-connections") {
      if (!(v = need_value(i))) return false;
      opts->probe_connections = std::atoi(v);
    } else if (arg == "--tenant-mix") {
      if (!(v = need_value(i))) return false;
      if (!ParseTenantMix(v, &opts->tenant_table)) {
        std::fprintf(stderr, "bad --tenant-mix spec: %s\n", v);
        return false;
      }
    } else if (arg == "--assert-p99-ms") {
      if (!(v = need_value(i))) return false;
      opts->assert_p99_ms = std::atof(v);
    } else if (arg == "--assert-availability") {
      if (!(v = need_value(i))) return false;
      opts->assert_availability = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  if (opts->port <= 0 || opts->port > 65535) {
    std::fprintf(stderr, "--port is required\n");
    return false;
  }
  if (opts->duration_s <= 0 || opts->connections <= 0) {
    std::fprintf(stderr, "--duration-s and --connections must be positive\n");
    return false;
  }
  if (opts->profile_seconds > 0 &&
      (opts->admin_port <= 0 || opts->admin_port > 65535)) {
    std::fprintf(stderr, "--profile-seconds requires --admin-port\n");
    return false;
  }
  if (!opts->overload_factors.empty() && opts->probe_s <= 0) {
    std::fprintf(stderr, "--probe-s must be positive\n");
    return false;
  }
  return true;
}

/// One request body: --lines rows cycled from a small city/state/population
/// list the synthetic web corpus aligns well, so "ok":true responses
/// dominate and a 5xx means genuine overload, not a content problem. The
/// arrival index is echoed as "id" to keep bodies distinct on the wire.
std::string RequestBody(const LoadgenOptions& opts, uint64_t arrival) {
  static const char* const kCityLines[] = {
      "Boston Massachusetts 645,966",    "Worcester Massachusetts 182,544",
      "Springfield Massachusetts 153,060", "Providence Rhode Island 178,042",
      "Hartford Connecticut 124,775",    "Bridgeport Connecticut 144,229",
      "New Haven Connecticut 129,779",   "Stamford Connecticut 122,643",
  };
  constexpr int kNumCityLines =
      static_cast<int>(sizeof(kCityLines) / sizeof(kCityLines[0]));
  std::string single = "{\"id\":" + std::to_string(arrival) + ",\"lines\":[";
  for (int i = 0; i < opts.lines; ++i) {
    if (i > 0) single += ",";
    single += "\"";
    single += kCityLines[i % kNumCityLines];
    single += "\"";
  }
  single += "]";
  if (opts.bypass_cache) single += ",\"bypass_cache\":true";
  single += "}";
  if (opts.batch <= 0) return single;
  std::string body = "{\"requests\":[";
  for (int i = 0; i < opts.batch; ++i) {
    if (i > 0) body += ",";
    body += single;
  }
  body += "]}";
  return body;
}

/// Generous upper bound on degradation-ladder depth; rungs past the
/// server's actual ladder simply stay empty in the report.
constexpr int kMaxRungs = 8;

/// What one degradation rung cost and bought, within one sweep step.
struct RungStats {
  uint64_t count = 0;
  double sp_sum = 0;
  uint64_t sp_count = 0;
  std::vector<double> latencies_ms;
};

/// Everything measured in one sweep step, merged across workers.
struct StepResult {
  double offered_qps = 0;
  double elapsed_s = 0;
  uint64_t sent = 0;
  uint64_t http_2xx = 0;
  uint64_t http_4xx = 0;
  uint64_t http_429 = 0;  ///< Quota rejections; subset of neither 4xx nor 503.
  uint64_t http_503 = 0;
  uint64_t http_other = 0;
  uint64_t transport_errors = 0;
  std::vector<double> latencies_ms;  ///< From scheduled arrival, completed only.
  RungStats rungs[kMaxRungs];
  /// tenant → {sent, 2xx, 429} when --tenant-mix is on.
  std::map<std::string, std::array<uint64_t, 3>> tenants;

  /// Non-503 fraction: quota 429s are policy, not failure, so only shed
  /// load (503) and transport errors count against availability.
  double Availability() const {
    return sent == 0 ? 1.0
                     : 1.0 - static_cast<double>(http_503 + transport_errors) /
                                 static_cast<double>(sent);
  }
};

/// Pulls the number following `"key":` out of a JSON body. No general JSON
/// parser: the data plane emits flat numeric fields, so a scan suffices.
/// Returns false when the key is absent.
bool ScanJsonNumber(const std::string& body, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t pos = body.find(needle);
  if (pos == std::string::npos) return false;
  char* end = nullptr;
  const double value = std::strtod(body.c_str() + pos + needle.size(), &end);
  if (end == body.c_str() + pos + needle.size()) return false;
  *out = value;
  return true;
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0;
  const size_t idx = static_cast<size_t>(p * (sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(idx, sorted->size() - 1)];
}

/// One second of client-side observations, bucketed by *completion* time
/// relative to the sweep's start (--series-out).
struct SecondBucket {
  uint64_t sent = 0;  ///< arrivals scheduled into this second
  uint64_t completed = 0;
  uint64_t http_503 = 0;
  uint64_t transport_errors = 0;
  std::vector<double> latencies_ms;
};

using SecondSeries = std::map<uint32_t, SecondBucket>;

void MergeSeries(SecondSeries* into, const SecondSeries& from) {
  for (const auto& [second, bucket] : from) {
    SecondBucket& dst = (*into)[second];
    dst.sent += bucket.sent;
    dst.completed += bucket.completed;
    dst.http_503 += bucket.http_503;
    dst.transport_errors += bucket.transport_errors;
    dst.latencies_ms.insert(dst.latencies_ms.end(),
                            bucket.latencies_ms.begin(),
                            bucket.latencies_ms.end());
  }
}

uint32_t SecondOf(Clock::time_point t0, Clock::time_point t) {
  const double s = std::chrono::duration<double>(t - t0).count();
  return s <= 0 ? 0 : static_cast<uint32_t>(s);
}

StepResult RunStep(const LoadgenOptions& opts, double qps,
                   Clock::time_point series_t0, SecondSeries* series) {
  const uint64_t total =
      static_cast<uint64_t>(qps * opts.duration_s + 0.5);
  std::atomic<uint64_t> next_arrival{0};
  const Clock::time_point t0 = Clock::now();
  const std::chrono::nanoseconds interval(
      static_cast<int64_t>(1e9 / qps));

  struct WorkerResult {
    uint64_t sent = 0, h2xx = 0, h4xx = 0, h429 = 0, h503 = 0, hother = 0,
             errors = 0;
    std::vector<double> latencies_ms;
    SecondSeries series;
    RungStats rungs[kMaxRungs];
    std::map<std::string, std::array<uint64_t, 3>> tenants;
  };
  std::vector<WorkerResult> per_worker(opts.connections);
  std::vector<std::thread> workers;
  workers.reserve(opts.connections);
  for (int w = 0; w < opts.connections; ++w) {
    workers.emplace_back([&, w] {
      tegra::net::HttpClient client(opts.host, opts.port, opts.timeout_ms);
      WorkerResult& result = per_worker[w];
      while (true) {
        const uint64_t k = next_arrival.fetch_add(1);
        if (k >= total) break;
        const Clock::time_point arrival = t0 + interval * k;
        std::this_thread::sleep_until(arrival);
        const std::string body = RequestBody(opts, k);
        const std::string* tenant =
            opts.tenant_table.empty()
                ? nullptr
                : &opts.tenant_table[k % opts.tenant_table.size()];
        auto response =
            tenant == nullptr
                ? client.Post("/v1/extract", body)
                : client.PostWithHeaders("/v1/extract", body,
                                         {{"X-Tegra-Tenant", *tenant}});
        const Clock::time_point done = Clock::now();
        // Latency from the *scheduled* arrival: client-side queueing counts.
        const double ms =
            std::chrono::duration<double, std::milli>(done - arrival).count();
        ++result.sent;
        SecondBucket* bucket =
            series == nullptr
                ? nullptr
                : &result.series[SecondOf(series_t0, done)];
        if (bucket != nullptr) {
          ++result.series[SecondOf(series_t0, arrival)].sent;
        }
        if (!response.ok()) {
          ++result.errors;
          if (bucket != nullptr) ++bucket->transport_errors;
          continue;
        }
        result.latencies_ms.push_back(ms);
        if (bucket != nullptr) {
          ++bucket->completed;
          bucket->latencies_ms.push_back(ms);
        }
        const int status = response.value().status;
        std::array<uint64_t, 3>* tenant_row =
            tenant == nullptr ? nullptr : &result.tenants[*tenant];
        if (tenant_row != nullptr) ++(*tenant_row)[0];
        if (status == 503) {
          ++result.h503;
          if (bucket != nullptr) ++bucket->http_503;
        } else if (status == 429) {
          ++result.h429;
          if (tenant_row != nullptr) ++(*tenant_row)[2];
        } else if (status >= 200 && status < 300) {
          ++result.h2xx;
          if (tenant_row != nullptr) ++(*tenant_row)[1];
          // Rung/SP accounting: which degradation rung served this request
          // and what alignment quality it produced.
          double rung_value = 0;
          ScanJsonNumber(response.value().body, "quality_level", &rung_value);
          const int rung = rung_value < 0                    ? 0
                           : rung_value >= kMaxRungs - 1e-9 ? kMaxRungs - 1
                               : static_cast<int>(rung_value);
          RungStats& rung_stats = result.rungs[rung];
          ++rung_stats.count;
          rung_stats.latencies_ms.push_back(ms);
          double sp = 0;
          if (ScanJsonNumber(response.value().body, "sp", &sp)) {
            rung_stats.sp_sum += sp;
            ++rung_stats.sp_count;
          }
        } else if (status >= 400 && status < 500) {
          ++result.h4xx;
        } else {
          ++result.hother;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  StepResult step;
  step.offered_qps = qps;
  step.elapsed_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  for (const WorkerResult& result : per_worker) {
    step.sent += result.sent;
    step.http_2xx += result.h2xx;
    step.http_4xx += result.h4xx;
    step.http_429 += result.h429;
    step.http_503 += result.h503;
    step.http_other += result.hother;
    step.transport_errors += result.errors;
    step.latencies_ms.insert(step.latencies_ms.end(),
                             result.latencies_ms.begin(),
                             result.latencies_ms.end());
    for (int rung = 0; rung < kMaxRungs; ++rung) {
      const RungStats& from = result.rungs[rung];
      RungStats& into = step.rungs[rung];
      into.count += from.count;
      into.sp_sum += from.sp_sum;
      into.sp_count += from.sp_count;
      into.latencies_ms.insert(into.latencies_ms.end(),
                               from.latencies_ms.begin(),
                               from.latencies_ms.end());
    }
    for (const auto& [tenant, counts] : result.tenants) {
      std::array<uint64_t, 3>& into = step.tenants[tenant];
      for (size_t i = 0; i < counts.size(); ++i) into[i] += counts[i];
    }
    if (series != nullptr) MergeSeries(series, result.series);
  }
  std::sort(step.latencies_ms.begin(), step.latencies_ms.end());
  return step;
}

/// The client's per-second view of the sweep, for lining up against the
/// server's /timeseriesz: same wall window, both at 1s resolution.
std::string SeriesJson(const SecondSeries& series) {
  std::string out = "{\n  \"bench\": \"dataplane_series\",\n";
  out += "  \"interval_seconds\": 1,\n";
  out += "  \"seconds\": [\n";
  bool first = true;
  for (const auto& [second, bucket] : series) {
    std::vector<double> sorted = bucket.latencies_ms;
    std::sort(sorted.begin(), sorted.end());
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"t\": %u, \"sent\": %llu, \"completed\": %llu, "
        "\"http_503\": %llu, \"transport_errors\": %llu, "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"max_ms\": %.3f}",
        second, static_cast<unsigned long long>(bucket.sent),
        static_cast<unsigned long long>(bucket.completed),
        static_cast<unsigned long long>(bucket.http_503),
        static_cast<unsigned long long>(bucket.transport_errors),
        Percentile(&sorted, 0.50), Percentile(&sorted, 0.99),
        sorted.empty() ? 0.0 : sorted.back());
    if (!first) out += ",\n";
    first = false;
    out += buf;
  }
  out += "\n  ]\n}\n";
  return out;
}

void AppendStepJson(std::string* out, const StepResult& step) {
  std::vector<double> sorted = step.latencies_ms;  // Already sorted.
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"offered_qps\": %.1f, \"achieved_qps\": %.1f, "
      "\"duration_s\": %.2f, \"sent\": %llu, \"http_2xx\": %llu, "
      "\"http_4xx\": %llu, \"http_503\": %llu, \"http_other\": %llu, "
      "\"transport_errors\": %llu, \"p50_ms\": %.3f, \"p90_ms\": %.3f, "
      "\"p99_ms\": %.3f, \"max_ms\": %.3f}",
      step.offered_qps,
      step.elapsed_s > 0 ? step.sent / step.elapsed_s : 0.0, step.elapsed_s,
      static_cast<unsigned long long>(step.sent),
      static_cast<unsigned long long>(step.http_2xx),
      static_cast<unsigned long long>(step.http_4xx),
      static_cast<unsigned long long>(step.http_503),
      static_cast<unsigned long long>(step.http_other),
      static_cast<unsigned long long>(step.transport_errors),
      Percentile(&sorted, 0.50), Percentile(&sorted, 0.90),
      Percentile(&sorted, 0.99),
      sorted.empty() ? 0.0 : sorted.back());
  *out += buf;
}

/// Closed-loop capacity probe: every connection sends back-to-back requests
/// for --probe-s seconds; successful completions / elapsed is the estimate.
/// Closed loop is the right shape here — it self-paces to whatever the
/// server sustains instead of guessing a rate. No tenant headers: the probe
/// must not charge anyone's quota.
double MeasureCapacity(const LoadgenOptions& opts) {
  std::atomic<uint64_t> completed{0};
  // Ids disjoint from sweep arrivals so probe bodies never collide.
  std::atomic<uint64_t> next_id{uint64_t{1} << 40};
  const Clock::time_point t0 = Clock::now();
  const Clock::time_point deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(opts.probe_s));
  const int probe_connections = opts.probe_connections > 0
                                    ? opts.probe_connections
                                    : opts.connections;
  std::vector<std::thread> workers;
  workers.reserve(probe_connections);
  for (int w = 0; w < probe_connections; ++w) {
    workers.emplace_back([&] {
      tegra::net::HttpClient client(opts.host, opts.port, opts.timeout_ms);
      while (Clock::now() < deadline) {
        const std::string body = RequestBody(opts, next_id.fetch_add(1));
        auto response = client.Post("/v1/extract", body);
        if (response.ok() && response.value().status >= 200 &&
            response.value().status < 300) {
          completed.fetch_add(1);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return elapsed > 0 ? static_cast<double>(completed.load()) / elapsed : 0;
}

/// The overload-mode step record: everything the classic record has, plus
/// availability and the per-rung latency / SP-score breakdown that shows
/// what each degradation rung bought and cost.
void AppendOverloadStepJson(std::string* out, const StepResult& step,
                            double factor) {
  std::vector<double> sorted = step.latencies_ms;  // Already sorted.
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"overload_factor\": %.2f, \"offered_qps\": %.1f, "
      "\"achieved_qps\": %.1f, \"duration_s\": %.2f, \"sent\": %llu, "
      "\"http_2xx\": %llu, \"http_4xx\": %llu, \"http_429\": %llu, "
      "\"http_503\": %llu, \"http_other\": %llu, "
      "\"transport_errors\": %llu, \"availability\": %.4f, "
      "\"p50_ms\": %.3f, \"p90_ms\": %.3f, \"p99_ms\": %.3f, "
      "\"max_ms\": %.3f,\n     \"rungs\": [",
      factor, step.offered_qps,
      step.elapsed_s > 0 ? step.sent / step.elapsed_s : 0.0, step.elapsed_s,
      static_cast<unsigned long long>(step.sent),
      static_cast<unsigned long long>(step.http_2xx),
      static_cast<unsigned long long>(step.http_4xx),
      static_cast<unsigned long long>(step.http_429),
      static_cast<unsigned long long>(step.http_503),
      static_cast<unsigned long long>(step.http_other),
      static_cast<unsigned long long>(step.transport_errors),
      step.Availability(), Percentile(&sorted, 0.50),
      Percentile(&sorted, 0.90), Percentile(&sorted, 0.99),
      sorted.empty() ? 0.0 : sorted.back());
  *out += buf;
  bool first = true;
  for (int rung = 0; rung < kMaxRungs; ++rung) {
    const RungStats& stats = step.rungs[rung];
    if (stats.count == 0) continue;
    std::vector<double> rung_sorted = stats.latencies_ms;
    std::sort(rung_sorted.begin(), rung_sorted.end());
    std::snprintf(buf, sizeof(buf),
                  "%s{\"rung\": %d, \"count\": %llu, \"p50_ms\": %.3f, "
                  "\"p99_ms\": %.3f, \"mean_sp\": %.4f}",
                  first ? "" : ", ", rung,
                  static_cast<unsigned long long>(stats.count),
                  Percentile(&rung_sorted, 0.50),
                  Percentile(&rung_sorted, 0.99),
                  stats.sp_count > 0
                      ? stats.sp_sum / static_cast<double>(stats.sp_count)
                      : 0.0);
    first = false;
    *out += buf;
  }
  *out += "]";
  if (!step.tenants.empty()) {
    *out += ",\n     \"tenants\": [";
    first = true;
    for (const auto& [tenant, counts] : step.tenants) {
      std::snprintf(buf, sizeof(buf),
                    "%s{\"tenant\": \"%s\", \"sent\": %llu, "
                    "\"http_2xx\": %llu, \"http_429\": %llu}",
                    first ? "" : ", ", tenant.c_str(),
                    static_cast<unsigned long long>(counts[0]),
                    static_cast<unsigned long long>(counts[1]),
                    static_cast<unsigned long long>(counts[2]));
      first = false;
      *out += buf;
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenOptions opts;
  if (!ParseArgs(argc, argv, &opts)) {
    PrintUsage();
    return 2;
  }

  std::fprintf(stderr,
               "tegra_loadgen: %s:%d POST /v1/extract, %d connections, "
               "%.0fs/step%s\n",
               opts.host.c_str(), opts.port, opts.connections,
               opts.duration_s, opts.batch > 0 ? " (batch bodies)" : "");

  // Overload mode: turn capacity-relative factors into absolute QPS steps.
  const bool overload_mode = !opts.overload_factors.empty();
  double capacity_qps = 0;
  if (overload_mode) {
    std::fprintf(stderr,
                 "tegra_loadgen: closed-loop capacity probe (%.1fs)...\n",
                 opts.probe_s);
    capacity_qps = MeasureCapacity(opts);
    std::fprintf(stderr, "  capacity ~ %.1f qps\n", capacity_qps);
    if (capacity_qps <= 0) {
      std::fprintf(stderr,
                   "tegra_loadgen: capacity probe saw no successful "
                   "responses; is the server up?\n");
      return 1;
    }
    opts.qps_steps.clear();
    for (const double factor : opts.overload_factors) {
      opts.qps_steps.push_back(std::max(1.0, factor * capacity_qps));
    }
  }

  // Concurrent profile capture: the admin plane blocks the GET for the
  // capture window, so the fetch runs on its own thread while the sweep
  // offers load — the profile shows the server *under* that load.
  std::thread profile_fetch;
  std::string profile_body;
  std::string profile_error;
  if (opts.profile_seconds > 0) {
    profile_fetch = std::thread([&] {
      const int timeout_ms =
          static_cast<int>(opts.profile_seconds * 1000.0) + 15000;
      tegra::net::HttpClient client(opts.host, opts.admin_port, timeout_ms);
      char target[64];
      std::snprintf(target, sizeof(target), "/pprof/profile?seconds=%.1f",
                    opts.profile_seconds);
      auto response = client.Get(target);
      if (!response.ok()) {
        profile_error = response.status().ToString();
        return;
      }
      if (response.value().status != 200) {
        profile_error = "HTTP " + std::to_string(response.value().status);
        return;
      }
      profile_body = std::move(response.value().body);
    });
  }

  std::string json = overload_mode ? "{\n  \"bench\": \"overload\",\n"
                                   : "{\n  \"bench\": \"dataplane\",\n";
  json += "  \"target\": \"POST /v1/extract\",\n";
  json += "  \"connections\": " + std::to_string(opts.connections) + ",\n";
  json += "  \"batch\": " + std::to_string(opts.batch) + ",\n";
  if (overload_mode) {
    char cap[64];
    std::snprintf(cap, sizeof(cap), "  \"capacity_qps\": %.1f,\n",
                  capacity_qps);
    json += cap;
  }
  json += "  \"steps\": [\n";

  bool any_ok = false;
  std::vector<std::string> assert_failures;
  SecondSeries series;
  SecondSeries* series_sink = opts.series_out.empty() ? nullptr : &series;
  const Clock::time_point series_t0 = Clock::now();
  for (size_t i = 0; i < opts.qps_steps.size(); ++i) {
    const StepResult step =
        RunStep(opts, opts.qps_steps[i], series_t0, series_sink);
    std::vector<double> sorted = step.latencies_ms;
    const double p99_ms = Percentile(&sorted, 0.99);
    std::fprintf(stderr,
                 "  qps %7.1f: sent %llu  2xx %llu  429 %llu  503 %llu  "
                 "err %llu  p50 %.2fms  p99 %.2fms  avail %.4f\n",
                 step.offered_qps,
                 static_cast<unsigned long long>(step.sent),
                 static_cast<unsigned long long>(step.http_2xx),
                 static_cast<unsigned long long>(step.http_429),
                 static_cast<unsigned long long>(step.http_503),
                 static_cast<unsigned long long>(step.transport_errors),
                 Percentile(&sorted, 0.50), p99_ms, step.Availability());
    if (step.http_2xx > 0) any_ok = true;
    if (i > 0) json += ",\n";
    if (overload_mode) {
      AppendOverloadStepJson(&json, step, opts.overload_factors[i]);
      char why[160];
      if (opts.assert_p99_ms > 0 && p99_ms > opts.assert_p99_ms) {
        std::snprintf(why, sizeof(why),
                      "factor %.2f: p99 %.1fms exceeds --assert-p99-ms %.1f",
                      opts.overload_factors[i], p99_ms, opts.assert_p99_ms);
        assert_failures.emplace_back(why);
      }
      if (opts.assert_availability > 0 &&
          step.Availability() < opts.assert_availability) {
        std::snprintf(
            why, sizeof(why),
            "factor %.2f: availability %.4f below --assert-availability %.4f",
            opts.overload_factors[i], step.Availability(),
            opts.assert_availability);
        assert_failures.emplace_back(why);
      }
    } else {
      AppendStepJson(&json, step);
    }
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen(opts.out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", opts.out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "tegra_loadgen: wrote %s\n", opts.out_path.c_str());

  if (series_sink != nullptr) {
    const std::string series_json = SeriesJson(series);
    std::FILE* sf = std::fopen(opts.series_out.c_str(), "wb");
    if (sf == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opts.series_out.c_str());
    } else {
      std::fwrite(series_json.data(), 1, series_json.size(), sf);
      std::fclose(sf);
      std::fprintf(stderr, "tegra_loadgen: wrote %s (%zu seconds)\n",
                   opts.series_out.c_str(), series.size());
    }
  }

  if (profile_fetch.joinable()) {
    profile_fetch.join();
    if (!profile_error.empty()) {
      std::fprintf(stderr, "tegra_loadgen: profile fetch failed: %s\n",
                   profile_error.c_str());
    } else {
      std::FILE* pf = std::fopen(opts.profile_out.c_str(), "wb");
      if (pf == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", opts.profile_out.c_str());
      } else {
        std::fwrite(profile_body.data(), 1, profile_body.size(), pf);
        std::fclose(pf);
        std::fprintf(stderr,
                     "tegra_loadgen: wrote %s (%zu bytes of folded stacks)\n",
                     opts.profile_out.c_str(), profile_body.size());
      }
    }
  }

  // Assertion failures (overload smoke) outrank everything: the files are
  // written either way so the artifacts survive for debugging, but CI sees
  // a distinct exit code.
  if (!assert_failures.empty()) {
    for (const std::string& why : assert_failures) {
      std::fprintf(stderr, "tegra_loadgen: ASSERT FAILED: %s\n", why.c_str());
    }
    return 3;
  }

  // Exit status reflects whether the sweep saw any successful extraction,
  // so CI can assert the data plane actually served traffic.
  return any_ok ? 0 : 1;
}
