// tegra_corpusctl — build, convert, verify and inspect background-corpus
// files (TGRAIDX1 heap caches and TGRAIDX2 mmap snapshots).
//
//   tegra_corpusctl build SPEC OUT [--format v1|v2]
//       Build a synthetic corpus (SPEC = profile:tables:seed, profile in
//       {web, wiki, enterprise}) and publish it at OUT. Default format v2.
//   tegra_corpusctl convert IN OUT
//       Convert a TGRAIDX1 heap cache into a TGRAIDX2 snapshot.
//   tegra_corpusctl verify PATH
//       Full integrity check (header + per-section CRC32C, deep decode of
//       dictionary / hash / postings for v2; complete hardened parse for
//       v1). Exit 0 on success, 1 with the Corruption message otherwise.
//   tegra_corpusctl stats PATH
//       Format, cardinalities, section table with sizes and checksum
//       status. Shares its implementation with corpus_inspector.
//
// All writes are atomic and durable (tmp + fsync + rename): a crash cannot
// leave a torn file at the published path.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/string_util.h"
#include "corpus/corpus_io.h"
#include "store/corpus_loader.h"
#include "store/snapshot_writer.h"
#include "synth/corpus_gen.h"

namespace {

void PrintUsage() {
  std::fputs(R"(usage: tegra_corpusctl <command> [args]

commands:
  build SPEC OUT [--format v1|v2]   build synthetic corpus (profile:tables:seed)
  convert IN OUT                    TGRAIDX1 -> TGRAIDX2 snapshot
  verify PATH                       full checksum + deep-decode integrity check
  stats PATH                        summary, section sizes, checksum status
)",
             stderr);
}

tegra::Result<tegra::ColumnIndex> BuildSynthetic(const std::string& spec) {
  const auto parts = tegra::SplitExact(spec, ":");
  if (parts.empty() || parts.size() > 3) {
    return tegra::Status::InvalidArgument("bad corpus spec: " + spec);
  }
  tegra::synth::CorpusProfile profile;
  if (parts[0] == "web") {
    profile = tegra::synth::CorpusProfile::kWeb;
  } else if (parts[0] == "wiki") {
    profile = tegra::synth::CorpusProfile::kWiki;
  } else if (parts[0] == "enterprise") {
    profile = tegra::synth::CorpusProfile::kEnterprise;
  } else {
    return tegra::Status::InvalidArgument("unknown profile: " + parts[0]);
  }
  const size_t tables =
      parts.size() > 1
          ? static_cast<size_t>(std::atoll(parts[1].c_str()))
          : 5000;
  const uint64_t seed =
      parts.size() > 2
          ? static_cast<uint64_t>(std::atoll(parts[2].c_str()))
          : 1;
  return tegra::Result<tegra::ColumnIndex>(
      tegra::synth::BuildBackgroundIndex(profile, tables, seed));
}

int Fail(const tegra::Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

int CmdBuild(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string spec = argv[0];
  const std::string out = argv[1];
  std::string format = "v2";
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
      format = argv[++i];
    } else {
      PrintUsage();
      return 2;
    }
  }
  if (format != "v1" && format != "v2") {
    std::fprintf(stderr, "unknown --format: %s\n", format.c_str());
    return 2;
  }
  auto index = BuildSynthetic(spec);
  if (!index.ok()) return Fail(index.status());
  const tegra::Status written =
      format == "v1" ? tegra::SaveColumnIndex(index.value(), out)
                     : tegra::store::WriteSnapshot(index.value(), out);
  if (!written.ok()) return Fail(written);
  std::printf("built %s (%s, %llu columns, %zu values)\n", out.c_str(),
              format == "v1" ? "TGRAIDX1" : "TGRAIDX2",
              static_cast<unsigned long long>(index->TotalColumns()),
              index->NumValues());
  return 0;
}

int CmdConvert(int argc, char** argv) {
  if (argc != 2) {
    PrintUsage();
    return 2;
  }
  const std::string in = argv[0];
  const std::string out = argv[1];
  auto index = tegra::LoadColumnIndex(in);
  if (!index.ok()) {
    if (index.status().code() == tegra::StatusCode::kCorruption) {
      std::fprintf(stderr,
                   "%s\n(hint: `convert` takes a TGRAIDX1 input; "
                   "a TGRAIDX2 snapshot needs no conversion)\n",
                   index.status().ToString().c_str());
      return 1;
    }
    return Fail(index.status());
  }
  const tegra::Status written = tegra::store::WriteSnapshot(index.value(), out);
  if (!written.ok()) return Fail(written);
  std::printf("converted %s -> %s (TGRAIDX2)\n", in.c_str(), out.c_str());
  return 0;
}

int CmdVerify(int argc, char** argv) {
  if (argc != 1) {
    PrintUsage();
    return 2;
  }
  const tegra::Status status = tegra::store::VerifyCorpusFile(argv[0]);
  if (!status.ok()) return Fail(status);
  std::printf("%s: ok\n", argv[0]);
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc != 1) {
    PrintUsage();
    return 2;
  }
  auto info = tegra::store::DescribeCorpusFile(argv[0], /*check_crc=*/true);
  if (!info.ok()) return Fail(info.status());
  std::fputs(tegra::store::FormatCorpusFileInfo(info.value()).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "build") return CmdBuild(argc - 2, argv + 2);
  if (cmd == "convert") return CmdConvert(argc - 2, argv + 2);
  if (cmd == "verify") return CmdVerify(argc - 2, argv + 2);
  if (cmd == "stats") return CmdStats(argc - 2, argv + 2);
  if (cmd == "--help" || cmd == "-h") {
    PrintUsage();
    return 0;
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  PrintUsage();
  return 2;
}
