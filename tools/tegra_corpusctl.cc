// tegra_corpusctl — build, convert, verify and inspect background-corpus
// files (TGRAIDX1 heap caches, TGRAIDX2 mmap snapshots and TGRSMAN1 sharded
// corpus directories).
//
//   tegra_corpusctl build SPEC[,SPEC...] OUT [--format v1|v2]
//       Build a synthetic corpus and publish it at OUT. Each SPEC is
//       profile:tables:seed (profile in {web, wiki, enterprise}); multiple
//       comma-separated specs are ingested sequentially, which makes a
//       monolithic build comparable against a sharded base + overlays built
//       from the same spec list. Default format v2.
//   tegra_corpusctl build-sharded SPEC[,SPEC...] OUTDIR [--shards N]
//                                 [--budget-mb M]
//       Build the same corpus as a sharded directory (N hash-partitioned
//       TGRAIDX2 shards + MANIFEST.tgrs) via the external-memory
//       ShardBuilder with an M MiB ingest budget.
//   tegra_corpusctl append DIR SPEC
//       Build the SPEC tables as a delta overlay of the sharded directory
//       DIR and bump its manifest — O(delta), shard files untouched.
//   tegra_corpusctl compact DIR
//       Fold all overlays of DIR back into its shards and prune the
//       replaced files.
//   tegra_corpusctl verify PATH
//       Full integrity check (header + per-section CRC32C, deep decode of
//       dictionary / hash / postings for v2; complete hardened parse for
//       v1; manifest + every part + shard routing for a sharded
//       directory). Exit 0 on success, 1 with the Corruption message
//       otherwise.
//   tegra_corpusctl stats PATH
//       Format, cardinalities, section table (or per-shard/overlay part
//       table) with sizes and checksum status.
//   tegra_corpusctl digest PATH
//       Representation-independent statistics fingerprint. Two corpora
//       answer every NPMI / Jaccard / co-occurrence query identically iff
//       their digests match; CI diffs sharded builds against monolithic
//       ones with this.
//
// All writes are atomic and durable (tmp + fsync + rename + parent-dir
// fsync): a crash cannot leave a torn file at the published path.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "corpus/corpus_io.h"
#include "shard/shard_builder.h"
#include "store/corpus_loader.h"
#include "store/snapshot_writer.h"
#include "synth/corpus_gen.h"

namespace {

void PrintUsage() {
  std::fputs(R"(usage: tegra_corpusctl <command> [args]

commands:
  build SPEC[,SPEC...] OUT [--format v1|v2]
                                    build synthetic corpus (profile:tables:seed)
  build-sharded SPEC[,SPEC...] OUTDIR [--shards N] [--budget-mb M]
                                    build a sharded corpus directory
  append DIR SPEC                   add SPEC tables as a delta overlay of DIR
  compact DIR                       fold overlays back into the shards
  convert IN OUT                    TGRAIDX1 -> TGRAIDX2 snapshot
  verify PATH                       full checksum + deep-decode integrity check
  stats PATH                        summary, section/part sizes, checksum status
  digest PATH                       statistics fingerprint (diffable across
                                    monolithic and sharded builds)
)",
             stderr);
}

struct CorpusSpec {
  tegra::synth::CorpusProfile profile;
  size_t tables;
  uint64_t seed;
};

tegra::Result<CorpusSpec> ParseSpec(const std::string& spec) {
  const auto parts = tegra::SplitExact(spec, ":");
  if (parts.empty() || parts.size() > 3) {
    return tegra::Status::InvalidArgument("bad corpus spec: " + spec);
  }
  CorpusSpec out;
  if (parts[0] == "web") {
    out.profile = tegra::synth::CorpusProfile::kWeb;
  } else if (parts[0] == "wiki") {
    out.profile = tegra::synth::CorpusProfile::kWiki;
  } else if (parts[0] == "enterprise") {
    out.profile = tegra::synth::CorpusProfile::kEnterprise;
  } else {
    return tegra::Status::InvalidArgument("unknown profile: " + parts[0]);
  }
  out.tables = parts.size() > 1
                   ? static_cast<size_t>(std::atoll(parts[1].c_str()))
                   : 5000;
  out.seed = parts.size() > 2
                 ? static_cast<uint64_t>(std::atoll(parts[2].c_str()))
                 : 1;
  return out;
}

tegra::Result<std::vector<CorpusSpec>> ParseSpecList(const std::string& list) {
  std::vector<CorpusSpec> specs;
  for (const auto& spec : tegra::SplitExact(list, ",")) {
    auto parsed = ParseSpec(spec);
    if (!parsed.ok()) return parsed.status();
    specs.push_back(parsed.value());
  }
  return specs;
}

/// Streams every table of every spec, in spec order, into `add_table`. The
/// same callback order is used for monolithic, sharded and overlay builds,
/// which is what makes their statistics comparable bit-for-bit.
template <typename Fn>
void ForEachSpecTable(const std::vector<CorpusSpec>& specs, Fn&& add_table) {
  for (const CorpusSpec& spec : specs) {
    tegra::synth::TableGenerator gen(spec.profile, spec.seed);
    for (size_t i = 0; i < spec.tables; ++i) add_table(gen.Generate());
  }
}

tegra::Result<tegra::ColumnIndex> BuildSynthetic(const std::string& list) {
  auto specs = ParseSpecList(list);
  if (!specs.ok()) return specs.status();
  tegra::ColumnIndex index;
  ForEachSpecTable(specs.value(),
                   [&](const tegra::Table& t) { index.AddTable(t); });
  index.Finalize();
  return index;
}

int Fail(const tegra::Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

int CmdBuild(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string spec = argv[0];
  const std::string out = argv[1];
  std::string format = "v2";
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
      format = argv[++i];
    } else {
      PrintUsage();
      return 2;
    }
  }
  if (format != "v1" && format != "v2") {
    std::fprintf(stderr, "unknown --format: %s\n", format.c_str());
    return 2;
  }
  auto index = BuildSynthetic(spec);
  if (!index.ok()) return Fail(index.status());
  const tegra::Status written =
      format == "v1" ? tegra::SaveColumnIndex(index.value(), out)
                     : tegra::store::WriteSnapshot(index.value(), out);
  if (!written.ok()) return Fail(written);
  std::printf("built %s (%s, %llu columns, %zu values)\n", out.c_str(),
              format == "v1" ? "TGRAIDX1" : "TGRAIDX2",
              static_cast<unsigned long long>(index->TotalColumns()),
              index->NumValues());
  return 0;
}

int CmdBuildSharded(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string spec = argv[0];
  const std::string out_dir = argv[1];
  tegra::shardbuild::ShardBuildOptions options;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      options.num_shards = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--budget-mb") == 0 && i + 1 < argc) {
      options.memory_budget_bytes =
          static_cast<size_t>(std::atoll(argv[++i])) << 20;
    } else {
      PrintUsage();
      return 2;
    }
  }
  auto specs = ParseSpecList(spec);
  if (!specs.ok()) return Fail(specs.status());
  tegra::ThreadPool pool(4);
  options.pool = &pool;
  tegra::shardbuild::ShardBuilder builder(out_dir, options);
  ForEachSpecTable(specs.value(),
                   [&](const tegra::Table& t) { builder.AddTable(t); });
  auto stats = builder.Finish();
  if (!stats.ok()) return Fail(stats.status());
  std::printf(
      "built %s (sharded, %u shards, %llu columns, %llu values, "
      "%u spill epochs, %llu run files)\n",
      out_dir.c_str(), stats->num_shards,
      static_cast<unsigned long long>(stats->total_columns),
      static_cast<unsigned long long>(stats->total_values),
      stats->spill_epochs, static_cast<unsigned long long>(stats->run_files));
  return 0;
}

int CmdAppend(int argc, char** argv) {
  if (argc != 2) {
    PrintUsage();
    return 2;
  }
  const std::string dir = argv[0];
  auto delta = BuildSynthetic(argv[1]);
  if (!delta.ok()) return Fail(delta.status());
  const tegra::Status appended =
      tegra::shardbuild::AppendOverlay(dir, delta.value());
  if (!appended.ok()) return Fail(appended);
  std::printf("appended overlay to %s (%llu columns, %zu values)\n",
              dir.c_str(),
              static_cast<unsigned long long>(delta->TotalColumns()),
              delta->NumValues());
  return 0;
}

int CmdCompact(int argc, char** argv) {
  if (argc != 1) {
    PrintUsage();
    return 2;
  }
  tegra::ThreadPool pool(4);
  const tegra::Status compacted = tegra::shardbuild::Compact(argv[0], &pool);
  if (!compacted.ok()) return Fail(compacted);
  std::printf("compacted %s\n", argv[0]);
  return 0;
}

int CmdConvert(int argc, char** argv) {
  if (argc != 2) {
    PrintUsage();
    return 2;
  }
  const std::string in = argv[0];
  const std::string out = argv[1];
  auto index = tegra::LoadColumnIndex(in);
  if (!index.ok()) {
    if (index.status().code() == tegra::StatusCode::kCorruption) {
      std::fprintf(stderr,
                   "%s\n(hint: `convert` takes a TGRAIDX1 input; "
                   "a TGRAIDX2 snapshot needs no conversion)\n",
                   index.status().ToString().c_str());
      return 1;
    }
    return Fail(index.status());
  }
  const tegra::Status written = tegra::store::WriteSnapshot(index.value(), out);
  if (!written.ok()) return Fail(written);
  std::printf("converted %s -> %s (TGRAIDX2)\n", in.c_str(), out.c_str());
  return 0;
}

int CmdVerify(int argc, char** argv) {
  if (argc != 1) {
    PrintUsage();
    return 2;
  }
  const tegra::Status status = tegra::store::VerifyCorpusFile(argv[0]);
  if (!status.ok()) return Fail(status);
  std::printf("%s: ok\n", argv[0]);
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc != 1) {
    PrintUsage();
    return 2;
  }
  auto info = tegra::store::DescribeCorpusFile(argv[0], /*check_crc=*/true);
  if (!info.ok()) return Fail(info.status());
  std::fputs(tegra::store::FormatCorpusFileInfo(info.value()).c_str(), stdout);
  return 0;
}

int CmdDigest(int argc, char** argv) {
  if (argc != 1) {
    PrintUsage();
    return 2;
  }
  auto loaded = tegra::store::OpenCorpus(argv[0]);
  if (!loaded.ok()) return Fail(loaded.status());
  const tegra::store::CorpusDigest digest =
      tegra::store::ComputeCorpusDigest(*loaded->view);
  std::printf("digest=%016llx values=%llu columns=%llu\n",
              static_cast<unsigned long long>(digest.digest),
              static_cast<unsigned long long>(digest.num_values),
              static_cast<unsigned long long>(digest.total_columns));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "build") return CmdBuild(argc - 2, argv + 2);
  if (cmd == "build-sharded") return CmdBuildSharded(argc - 2, argv + 2);
  if (cmd == "append") return CmdAppend(argc - 2, argv + 2);
  if (cmd == "compact") return CmdCompact(argc - 2, argv + 2);
  if (cmd == "convert") return CmdConvert(argc - 2, argv + 2);
  if (cmd == "verify") return CmdVerify(argc - 2, argv + 2);
  if (cmd == "stats") return CmdStats(argc - 2, argv + 2);
  if (cmd == "digest") return CmdDigest(argc - 2, argv + 2);
  if (cmd == "--help" || cmd == "-h") {
    PrintUsage();
    return 0;
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  PrintUsage();
  return 2;
}
