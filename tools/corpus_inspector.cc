// corpus_inspector — examine a background corpus index: size statistics,
// postings distribution, the most frequent values, and interactive-style
// pairwise queries (PMI / NPMI / semantic distance between two values).
//
// `--corpus` auto-detects the on-disk format (TGRAIDX1 heap cache or
// TGRAIDX2 mmap snapshot) and prints the file report — section table with
// sizes and per-section checksum status — before the corpus statistics.
// The report is shared with `tegra_corpusctl stats`.
//
// Examples:
//   ./corpus_inspector --corpus /tmp/tegra_cache/bweb_20000.idx
//   ./corpus_inspector --corpus /tmp/tegra_cache/bweb_20000.idx2
//   ./corpus_inspector --build web:5000:1 --top 20
//   ./corpus_inspector --build web:5000:1 --pair "toronto" "los angeles"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "corpus/column_index.h"
#include "corpus/corpus_stats.h"
#include "corpus/corpus_view.h"
#include "store/corpus_loader.h"
#include "synth/corpus_gen.h"

namespace {

void PrintUsage() {
  std::fputs(R"(usage: corpus_inspector [options]
  --corpus PATH        load a serialized index (TGRAIDX1 or TGRAIDX2)
  --build SPEC         build synthetic corpus (profile:tables:seed)
  --top N              show the N most frequent values (default 15)
  --pair "A" "B"       show co-occurrence statistics for a value pair
  --histogram          show the postings-length histogram
)",
             stderr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_path;
  std::string build_spec = "web:5000:1";
  int top = 15;
  bool histogram = false;
  std::vector<std::pair<std::string, std::string>> pairs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--corpus" && i + 1 < argc) {
      corpus_path = argv[++i];
    } else if (arg == "--build" && i + 1 < argc) {
      build_spec = argv[++i];
    } else if (arg == "--top" && i + 1 < argc) {
      top = std::atoi(argv[++i]);
    } else if (arg == "--histogram") {
      histogram = true;
    } else if (arg == "--pair" && i + 2 < argc) {
      pairs.emplace_back(argv[i + 1], argv[i + 2]);
      i += 2;
    } else {
      PrintUsage();
      return 2;
    }
  }

  // Resolve the corpus: either a file (any supported format) or a synthetic
  // build. Everything below operates on the abstract CorpusView, so the heap
  // index and the mmap snapshot are inspected identically.
  std::shared_ptr<const tegra::CorpusView> view;
  if (!corpus_path.empty()) {
    auto loaded = tegra::store::OpenCorpus(corpus_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    view = loaded->view;

    // File-level report: format, section table, checksum status.
    auto info = tegra::store::DescribeCorpusFile(corpus_path,
                                                 /*check_crc=*/true);
    if (info.ok()) {
      std::fputs(tegra::store::FormatCorpusFileInfo(info.value()).c_str(),
                 stdout);
      std::printf("\n");
    }
  } else {
    const auto parts = tegra::SplitExact(build_spec, ":");
    tegra::synth::CorpusProfile profile =
        parts[0] == "enterprise" ? tegra::synth::CorpusProfile::kEnterprise
        : parts[0] == "wiki"     ? tegra::synth::CorpusProfile::kWiki
                                 : tegra::synth::CorpusProfile::kWeb;
    const size_t tables = parts.size() > 1 ? std::atoll(parts[1].c_str()) : 5000;
    const uint64_t seed = parts.size() > 2 ? std::atoll(parts[2].c_str()) : 1;
    view = std::make_shared<tegra::ColumnIndex>(
        tegra::synth::BuildBackgroundIndex(profile, tables, seed));
  }
  const tegra::CorpusView& index = *view;
  tegra::CorpusStats stats(&index);

  std::printf("corpus summary\n");
  std::printf("  format:           %s\n", index.FormatName());
  std::printf("  columns:          %llu\n",
              static_cast<unsigned long long>(index.TotalColumns()));
  std::printf("  distinct values:  %zu\n", index.NumValues());
  std::printf("  heap (approx):    %.1f MiB\n",
              static_cast<double>(index.HeapBytes()) / (1 << 20));
  std::printf("  mapped:           %.1f MiB\n",
              static_cast<double>(index.MappedBytes()) / (1 << 20));

  // Top values by column frequency.
  std::vector<tegra::ValueId> ids(index.NumValues());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<uint32_t>(i);
  std::partial_sort(ids.begin(),
                    ids.begin() + std::min<size_t>(top, ids.size()),
                    ids.end(), [&](tegra::ValueId a, tegra::ValueId b) {
                      return index.ColumnCount(a) > index.ColumnCount(b);
                    });
  std::printf("\ntop %d values by |C(s)|\n", top);
  for (int i = 0; i < top && i < static_cast<int>(ids.size()); ++i) {
    std::printf("  %6u  %s\n", index.ColumnCount(ids[i]),
                index.ValueString(ids[i]).c_str());
  }

  if (histogram) {
    size_t buckets[8] = {0};  // 1, 2-3, 4-7, ..., 128+
    for (tegra::ValueId id = 0; id < index.NumValues(); ++id) {
      const uint32_t n = index.ColumnCount(id);
      int b = 0;
      while ((1u << (b + 1)) <= n && b < 7) ++b;
      ++buckets[b];
    }
    std::printf("\npostings length histogram\n");
    const char* labels[8] = {"1",     "2-3",   "4-7",    "8-15",
                             "16-31", "32-63", "64-127", "128+"};
    for (int b = 0; b < 8; ++b) {
      std::printf("  %-7s %zu\n", labels[b], buckets[b]);
    }
  }

  for (const auto& [a, b] : pairs) {
    const tegra::ValueId ia = index.Lookup(a);
    const tegra::ValueId ib = index.Lookup(b);
    std::printf("\npair: \"%s\" vs \"%s\"\n", a.c_str(), b.c_str());
    if (ia == tegra::kInvalidValueId || ib == tegra::kInvalidValueId) {
      std::printf("  (at least one value is not in the corpus)\n");
      continue;
    }
    std::printf("  |C(a)| = %u, |C(b)| = %u, |C(a) ∩ C(b)| = %u\n",
                index.ColumnCount(ia), index.ColumnCount(ib),
                index.CoOccurrenceCount(ia, ib));
    std::printf("  PMI   = %.4f\n", stats.Pmi(ia, ib));
    std::printf("  NPMI  = %.4f\n", stats.Npmi(ia, ib));
    std::printf("  d_sem = %.4f (npmi)  %.4f (jaccard)  %.4f (angular)\n",
                stats.SemanticDistance(ia, ib),
                stats.SemanticDistance(ia, ib,
                                       tegra::SemanticMeasure::kJaccard),
                stats.SemanticDistance(ia, ib,
                                       tegra::SemanticMeasure::kAngular));
  }
  return 0;
}
