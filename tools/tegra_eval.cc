// tegra_eval — run any algorithm on any benchmark dataset from the command
// line and print P/R/F (plus optional per-instance details). Handy for
// iterating on configurations without editing bench binaries.
//
// Examples:
//   ./tegra_eval --dataset web --algo tegra --tables 50
//   ./tegra_eval --dataset enterprise --algo listextract --background web
//   ./tegra_eval --dataset lists --algo judie --verbose
//   ./tegra_eval --dataset wiki --algo tegra --examples 2 --alpha 0.25

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/string_util.h"
#include "eval/experiment.h"

namespace {

void PrintUsage() {
  std::fputs(R"(usage: tegra_eval [options]
  --dataset NAME    web | wiki | enterprise | lists      (default web)
  --algo NAME       tegra | listextract | judie          (default tegra)
  --background B    web | enterprise | combined          (default: matched)
  --tables N        tables for generated datasets        (default env/120)
  --examples K      supervised with K ground-truth rows (0 = #cols given)
  --alpha X         distance alpha for tegra/listextract
  --threads N       tegra worker threads
  --verbose         per-instance scores
)",
             stderr);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tegra;
  using namespace tegra::eval;

  std::string dataset = "web";
  std::string algo = "tegra";
  std::string background = "";
  size_t tables = BenchTablesPerDataset();
  int examples = -1;  // -1 = unsupervised.
  double alpha = 0.5;
  int threads = 1;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--dataset") {
      dataset = next();
    } else if (arg == "--algo") {
      algo = next();
    } else if (arg == "--background") {
      background = next();
    } else if (arg == "--tables") {
      tables = std::atoll(next());
    } else if (arg == "--examples") {
      examples = std::atoi(next());
    } else if (arg == "--alpha") {
      alpha = std::atof(next());
    } else if (arg == "--threads") {
      threads = std::atoi(next());
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      PrintUsage();
      return 2;
    }
  }

  DatasetId id;
  if (dataset == "web") {
    id = DatasetId::kWeb;
  } else if (dataset == "wiki") {
    id = DatasetId::kWiki;
  } else if (dataset == "enterprise") {
    id = DatasetId::kEnterprise;
  } else if (dataset == "lists") {
    id = DatasetId::kLists;
  } else {
    PrintUsage();
    return 2;
  }

  BackgroundId bg = id == DatasetId::kEnterprise ? BackgroundId::kEnterprise
                                                 : BackgroundId::kWeb;
  if (background == "web") bg = BackgroundId::kWeb;
  if (background == "enterprise") bg = BackgroundId::kEnterprise;
  if (background == "combined") bg = BackgroundId::kCombined;

  std::fprintf(stderr, "dataset=%s algo=%s background=%s tables=%zu\n",
               DatasetName(id), algo.c_str(), BackgroundName(bg), tables);

  const auto instances = BuildDataset(id, tables);
  const CorpusStats& stats = BackgroundStats(bg);

  SegmentFn fn;
  if (algo == "tegra") {
    TegraOptions opts;
    opts.distance.alpha = alpha;
    opts.num_threads = threads;
    fn = examples < 0 ? TegraFn(&stats, opts)
                      : TegraSupervisedFn(&stats, examples, opts);
  } else if (algo == "listextract") {
    ListExtractOptions opts;
    opts.distance.alpha = alpha;
    fn = examples < 0 ? ListExtractFn(&stats, opts)
                      : ListExtractSupervisedFn(&stats, examples, opts);
  } else if (algo == "judie") {
    fn = examples < 0 ? JudieFn(&GeneralKb())
                      : JudieSupervisedFn(&GeneralKb(), examples);
  } else {
    PrintUsage();
    return 2;
  }

  const AlgoEvaluation result = EvaluateAlgorithm(instances, fn);
  if (verbose) {
    for (size_t i = 0; i < result.scores.size(); ++i) {
      std::printf("instance %3zu  P=%.3f R=%.3f F=%.3f  (%.3fs)\n", i,
                  result.scores[i].precision, result.scores[i].recall,
                  result.scores[i].f1, result.seconds[i]);
    }
  }
  std::printf("P=%.4f R=%.4f F=%.4f  failures=%zu  avg=%.3fs/table\n",
              result.mean.precision, result.mean.recall, result.mean.f1,
              result.failures, result.mean_seconds);
  return 0;
}
