// tegra_serve — a long-lived extraction daemon speaking newline-delimited
// JSON over stdin/stdout. One request per line in, one response per line out
// (in submission order), so the service layer is driveable end-to-end with
// nothing but a pipe:
//
//   $ printf '%s\n' '{"id":1,"lines":["Boston Massachusetts 645,966",
//     "Worcester Massachusetts 182,544"]}' '{"cmd":"metrics"}' |
//     ./tegra_serve --corpus web.idx
//
// Request objects:
//   {"id": <any>, "lines": ["row", ...],          // required
//    "columns": N,                                 // optional, 0 = auto
//    "deadline_ms": D,                             // optional
//    "bypass_cache": true}                         // optional
// Control objects:
//   {"cmd": "metrics"}       -> one JSON metrics snapshot
//   {"cmd": "metrics_prom"}  -> Prometheus text exposition (inline "body",
//                               or to disk with {"file":"path"})
//   {"cmd": "trace_dump"}    -> Chrome trace_event JSON of the span ring
//                               (inline "body", or {"file":"path"} —
//                               loadable in ui.perfetto.dev)
//   {"cmd": "slowlog"}       -> the N slowest requests with span trees
//   {"cmd": "corpus_reload"} -> reopen --corpus (TGRAIDX1 or TGRAIDX2) and
//                               atomically swap the engine to the new
//                               generation; in-flight requests finish on the
//                               generation they started with. Replies
//                               {"ok":true,"generation":G,"format":...} or
//                               {"ok":false,...} with the old corpus kept.
//                               SIGHUP triggers the same reload out-of-band.
//   {"cmd": "profile", "seconds": N}
//                            -> block for N seconds (default 2) and reply
//                               with a folded-stack CPU profile from the
//                               always-on SIGPROF sampler (inline "body", or
//                               {"file":"path"}); same data as
//                               GET /pprof/profile on the admin plane
//   {"cmd": "inject_stall", "ms": N}
//                            -> watchdog drill: submit one probe request
//                               whose worker sleeps N ms (default 2000)
//                               mid-extraction, so the health watchdog can
//                               be exercised end-to-end (stack capture
//                               included). Control plane only — the HTTP
//                               data plane cannot reach this
//   {"cmd": "quit"}          -> drain in-flight work and exit
//
// With --admin-port the same telemetry is served over HTTP (zPages:
// /metrics /healthz /readyz /statusz /tracez /slowlogz /varz /timeseriesz
// /alertz), so Prometheus scrapers, load balancers and browsers reach it
// without the pipe. When the
// admin plane starts, one NDJSON event line
//   {"event":"admin_ready","port":N}
// is emitted on stdout before any responses — with `--admin-port 0` (bind an
// ephemeral port) this line is how drivers learn the actual port.
//
// With --port the extraction write path itself is served over HTTP: an
// epoll-driven keep-alive data plane answering POST /v1/extract with single
// ({"lines":[...]}) and batch ({"requests":[...]}) bodies (see
// docs/SERVING.md). It announces itself the same way:
//   {"event":"data_ready","port":N}
//
// Response objects (id echoed):
//   {"id":1,"ok":true,"columns":3,"rows":[[...],...],"sp":...,
//    "cache_hit":false,"queue_ms":...,"extract_ms":...,"total_ms":...}
//   {"id":2,"ok":false,"code":"Unavailable","error":"queue full ..."}
//
// Malformed input (unparsable JSON, missing/empty "lines", unknown "cmd")
// is answered with a structured error object and counted in
// `serve.bad_request` rather than silently dropped.
//
// SIGTERM and SIGINT trigger the same graceful drain as {"cmd":"quit"}:
// stop accepting, finish in-flight work, flush the access log and the
// structured logger, exit 0. Signals are consumed synchronously by a
// dedicated thread (sigwait) — no async handler exists in the process.

#include <poll.h>
#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/build_info.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "corpus/column_index.h"
#include "health/monitor.h"
#include "prof/profiler.h"
#include "prof/runtime_stats.h"
#include "prof/wide_event.h"
#include "corpus/corpus_io.h"
#include "corpus/corpus_stats.h"
#include "qos/degradation.h"
#include "qos/token_bucket.h"
#include "service/admin_pages.h"
#include "service/data_plane.h"
#include "service/extraction_service.h"
#include "service/extractor_source.h"
#include "service/http_admin.h"
#include "service/serve_json.h"
#include "store/corpus_manager.h"
#include "synth/corpus_gen.h"
#include "trace/chrome_trace.h"
#include "trace/log.h"
#include "trace/prometheus.h"
#include "trace/trace.h"

namespace {

using tegra::serve::ExtractionRequest;
using tegra::serve::ExtractionResponse;
using tegra::serve::JsonValue;

void PrintUsage() {
  std::fputs(R"(usage: tegra_serve [options]

Long-lived TEGRA extraction service over stdin/stdout (NDJSON).

options:
  --corpus PATH           load a background index — TGRAIDX1 (heap) or
                          TGRAIDX2 (mmap snapshot, see tegra_corpusctl);
                          {"cmd":"corpus_reload"} or SIGHUP re-opens it and
                          hot-swaps the engine without dropping requests
  --build-corpus SPEC     build a synthetic corpus; SPEC = profile:tables:seed
                          with profile in {web, wiki, enterprise}
                          (default: web:5000:1 when --corpus is not given)
  --workers N             extraction worker threads (default 4)
  --queue-depth N         admission-control queue bound (default 64)
  --deadline-ms D         default per-request deadline (default: none)
  --cache-capacity N      whole-list result cache entries (default 1024)
  --co-cache-capacity N   corpus co-occurrence memo entries (default 1M)
  --alpha X               syntactic weight in [0,1] (default 0.5)
  --threads N             per-extraction anchor threads (default 1)
  --trace on|off          runtime span recording (default on)
  --slowlog N             slow-request log capacity (default 8)
  --admin-port N          serve the HTTP admin plane (zPages: /metrics
                          /healthz /readyz /statusz /tracez /slowlogz /varz)
                          on 127.0.0.1:N; N=0 binds an ephemeral port and
                          the bound port is reported via the
                          {"event":"admin_ready","port":N} stdout line and
                          the startup log. Omit the flag to disable (default)
  --admin-bind ADDR       admin plane bind address (default 127.0.0.1;
                          use 0.0.0.0 to expose beyond loopback)
  --port N                serve the extraction data plane — an event-loop
                          HTTP/1.1 server answering POST /v1/extract with
                          single and batch JSON bodies — on N; N=0 binds an
                          ephemeral port reported via the
                          {"event":"data_ready","port":N} stdout line.
                          Omit the flag to disable (default)
  --bind ADDR             data plane bind address (default 127.0.0.1)
  --max-connections N     data plane concurrent-connection cap; clients
                          beyond it are shed with 503 + Retry-After
                          (default 1024)
  --io-timeout-ms D       data plane per-connection read/write deadline in
                          milliseconds; a stalled mid-request read gets 408
                          (default 10000)
  --log-format text|json  stderr log rendering (default text)
  --log-level LEVEL       debug|info|warn|error (default info)
  --profile-hz N          always-on SIGPROF sampling frequency (default 99;
                          0 disables the CPU profiler — /pprof/profile and
                          {"cmd":"profile"} then arm it per capture)
  --access-log PATH       wide-event request log: one tail-sampled JSON line
                          per completed /v1/extract exchange ("stderr" logs
                          to stderr). Omit to disable (default)
  --access-log-sample X   keep probability for ordinary requests in [0,1]
                          (default 1.0; errors and slow requests are always
                          kept regardless)
  --access-log-slow-ms D  requests at or above D ms total latency are always
                          kept (default 100)
  --health-interval-ms D  health recorder cadence: every D ms the metrics
                          registry is snapshotted into in-process time
                          series (/timeseriesz), SLO burn rates re-evaluated
                          (/alertz) and the stall watchdog run. 0 disables
                          the recorder thread entirely (default 1000)
  --stall-threshold-ms D  a worker request (extraction, corpus reload)
                          running longer than D ms is a stall: the watchdog
                          captures the stuck thread's stack, logs it and
                          increments health.stalls_total (default 30000)
  --slo-config PATH       JSON SLO definitions replacing the built-in rules;
                          {"slos":[{"name":...,"kind":"error_ratio"|
                          "gauge_above"|"gauge_below",...}]} (see
                          docs/OBSERVABILITY.md)
  --qos on|off            adaptive degradation ladder: under overload the
                          service trades extraction quality for latency one
                          rung at a time (anchor budget -> DP cap ->
                          syntactic-only -> ListExtract baseline) instead of
                          shedding, and recovers with hysteresis. Every
                          response carries its "quality_level". Off behaves
                          exactly like the reject-at-queue service
                          (default off)
  --qos-max-rung N        deepest rung the ladder may reach, 1..4 (default 4)
  --qos-target-p99-ms D   served p99 that maps to pressure 1.0 — the latency
                          SLO the ladder defends (default 2000)
  --qos-target-queue-fraction X
                          queue fill fraction mapping to pressure 1.0
                          (default 0.5 — engage well before the 503 cliff)
  --qos-escalate-hold-ms D  pressure must hold >= 1.0 this long before each
                          escalation (default 1000)
  --qos-recover-hold-ms D pressure must hold <= 0.5 this long before each
                          recovery (default 5000)
  --qos-degraded-budget-s D  the qos_degraded SLO alert fires after the
                          ladder has been above rung 0 for D consecutive
                          seconds (default 300)
  --quota-rate X          per-tenant token-bucket refill in requests/second,
                          keyed on the X-Tegra-Tenant header (requests
                          without the header share one anonymous bucket); a
                          drained bucket answers 429 + Retry-After. 0
                          disables quotas (default 0)
  --quota-burst X         per-tenant bucket capacity (default max(rate, 1))
  --help                  this text
)",
             stderr);
}

struct ServeCliOptions {
  std::string corpus_path;
  std::string build_spec;
  size_t co_cache_capacity = 1 << 20;
  bool trace_enabled = true;
  /// -1 = admin plane disabled; 0 = ephemeral port; >0 = fixed port.
  int admin_port = -1;
  std::string admin_bind = "127.0.0.1";
  /// -1 = data plane disabled; 0 = ephemeral port; >0 = fixed port.
  int data_port = -1;
  std::string data_bind = "127.0.0.1";
  size_t max_connections = 1024;
  int io_timeout_ms = 10000;
  /// SIGPROF sampling frequency; 0 leaves the profiler disarmed until a
  /// capture asks for it.
  int profile_hz = 99;
  /// Wide-event access log destination; empty = disabled, "stderr" = stderr.
  std::string access_log_path;
  double access_log_sample = 1.0;
  double access_log_slow_ms = 100.0;
  /// Health recorder cadence; 0 disables the recorder thread.
  int health_interval_ms = 1000;
  int stall_threshold_ms = 30000;
  /// JSON SLO definitions; empty selects SloEngine::DefaultSpecs().
  std::string slo_config_path;
  /// Adaptive quality/latency trade-off under overload; off = today's
  /// reject-at-queue behavior, bit-identical results.
  bool qos_enabled = false;
  tegra::qos::DegradationOptions qos;
  /// The qos_degraded SLO alert's for_seconds budget.
  double qos_degraded_budget_s = 300;
  /// Per-tenant admission quotas (rate <= 0 disables).
  tegra::qos::QuotaOptions quota;
  tegra::TegraOptions tegra;
  tegra::serve::ServiceOptions service;
};

bool ParseArgs(int argc, char** argv, ServeCliOptions* opts) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else if (arg == "--corpus") {
      if (!(v = need_value(i))) return false;
      opts->corpus_path = v;
    } else if (arg == "--build-corpus") {
      if (!(v = need_value(i))) return false;
      opts->build_spec = v;
    } else if (arg == "--workers") {
      if (!(v = need_value(i))) return false;
      opts->service.num_workers = std::atoi(v);
    } else if (arg == "--queue-depth") {
      if (!(v = need_value(i))) return false;
      opts->service.max_queue_depth = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--deadline-ms") {
      if (!(v = need_value(i))) return false;
      opts->service.default_deadline_seconds = std::atof(v) / 1e3;
    } else if (arg == "--cache-capacity") {
      if (!(v = need_value(i))) return false;
      opts->service.result_cache_capacity = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--co-cache-capacity") {
      if (!(v = need_value(i))) return false;
      opts->co_cache_capacity = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--alpha") {
      if (!(v = need_value(i))) return false;
      opts->tegra.distance.alpha = std::atof(v);
    } else if (arg == "--threads") {
      if (!(v = need_value(i))) return false;
      opts->tegra.num_threads = std::atoi(v);
    } else if (arg == "--trace") {
      if (!(v = need_value(i))) return false;
      opts->trace_enabled = std::string(v) != "off";
    } else if (arg == "--slowlog") {
      if (!(v = need_value(i))) return false;
      opts->service.slowlog_capacity = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--admin-port") {
      if (!(v = need_value(i))) return false;
      opts->admin_port = std::atoi(v);
      if (opts->admin_port < 0 || opts->admin_port > 65535) {
        std::fprintf(stderr, "bad --admin-port: %s\n", v);
        return false;
      }
    } else if (arg == "--admin-bind") {
      if (!(v = need_value(i))) return false;
      opts->admin_bind = v;
    } else if (arg == "--port") {
      if (!(v = need_value(i))) return false;
      opts->data_port = std::atoi(v);
      if (opts->data_port < 0 || opts->data_port > 65535) {
        std::fprintf(stderr, "bad --port: %s\n", v);
        return false;
      }
    } else if (arg == "--bind") {
      if (!(v = need_value(i))) return false;
      opts->data_bind = v;
    } else if (arg == "--max-connections") {
      if (!(v = need_value(i))) return false;
      opts->max_connections = static_cast<size_t>(std::atoll(v));
      if (opts->max_connections == 0) {
        std::fprintf(stderr, "bad --max-connections: %s\n", v);
        return false;
      }
    } else if (arg == "--io-timeout-ms") {
      if (!(v = need_value(i))) return false;
      opts->io_timeout_ms = std::atoi(v);
      if (opts->io_timeout_ms <= 0) {
        std::fprintf(stderr, "bad --io-timeout-ms: %s\n", v);
        return false;
      }
    } else if (arg == "--profile-hz") {
      if (!(v = need_value(i))) return false;
      opts->profile_hz = std::atoi(v);
      if (opts->profile_hz < 0 || opts->profile_hz > 1000) {
        std::fprintf(stderr, "bad --profile-hz: %s\n", v);
        return false;
      }
    } else if (arg == "--access-log") {
      if (!(v = need_value(i))) return false;
      opts->access_log_path = v;
    } else if (arg == "--access-log-sample") {
      if (!(v = need_value(i))) return false;
      opts->access_log_sample = std::atof(v);
      if (opts->access_log_sample < 0 || opts->access_log_sample > 1) {
        std::fprintf(stderr, "bad --access-log-sample: %s\n", v);
        return false;
      }
    } else if (arg == "--access-log-slow-ms") {
      if (!(v = need_value(i))) return false;
      opts->access_log_slow_ms = std::atof(v);
    } else if (arg == "--health-interval-ms") {
      if (!(v = need_value(i))) return false;
      opts->health_interval_ms = std::atoi(v);
      if (opts->health_interval_ms < 0) {
        std::fprintf(stderr, "bad --health-interval-ms: %s\n", v);
        return false;
      }
    } else if (arg == "--stall-threshold-ms") {
      if (!(v = need_value(i))) return false;
      opts->stall_threshold_ms = std::atoi(v);
      if (opts->stall_threshold_ms <= 0) {
        std::fprintf(stderr, "bad --stall-threshold-ms: %s\n", v);
        return false;
      }
    } else if (arg == "--slo-config") {
      if (!(v = need_value(i))) return false;
      opts->slo_config_path = v;
    } else if (arg == "--qos") {
      if (!(v = need_value(i))) return false;
      opts->qos_enabled = std::string(v) == "on";
      if (!opts->qos_enabled && std::string(v) != "off") {
        std::fprintf(stderr, "bad --qos (want on|off): %s\n", v);
        return false;
      }
    } else if (arg == "--qos-max-rung") {
      if (!(v = need_value(i))) return false;
      opts->qos.max_rung = std::atoi(v);
      if (opts->qos.max_rung < 1 ||
          opts->qos.max_rung > tegra::qos::kNumRungs - 1) {
        std::fprintf(stderr, "bad --qos-max-rung (want 1..%d): %s\n",
                     tegra::qos::kNumRungs - 1, v);
        return false;
      }
    } else if (arg == "--qos-target-p99-ms") {
      if (!(v = need_value(i))) return false;
      opts->qos.target_p99_seconds = std::atof(v) / 1e3;
      if (opts->qos.target_p99_seconds <= 0) {
        std::fprintf(stderr, "bad --qos-target-p99-ms: %s\n", v);
        return false;
      }
    } else if (arg == "--qos-target-queue-fraction") {
      if (!(v = need_value(i))) return false;
      opts->qos.target_queue_fraction = std::atof(v);
      if (opts->qos.target_queue_fraction <= 0 ||
          opts->qos.target_queue_fraction > 1) {
        std::fprintf(stderr, "bad --qos-target-queue-fraction: %s\n", v);
        return false;
      }
    } else if (arg == "--qos-escalate-hold-ms") {
      if (!(v = need_value(i))) return false;
      opts->qos.escalate_hold_seconds = std::atof(v) / 1e3;
      if (opts->qos.escalate_hold_seconds < 0) {
        std::fprintf(stderr, "bad --qos-escalate-hold-ms: %s\n", v);
        return false;
      }
    } else if (arg == "--qos-recover-hold-ms") {
      if (!(v = need_value(i))) return false;
      opts->qos.recover_hold_seconds = std::atof(v) / 1e3;
      if (opts->qos.recover_hold_seconds < 0) {
        std::fprintf(stderr, "bad --qos-recover-hold-ms: %s\n", v);
        return false;
      }
    } else if (arg == "--qos-degraded-budget-s") {
      if (!(v = need_value(i))) return false;
      opts->qos_degraded_budget_s = std::atof(v);
      if (opts->qos_degraded_budget_s <= 0) {
        std::fprintf(stderr, "bad --qos-degraded-budget-s: %s\n", v);
        return false;
      }
    } else if (arg == "--quota-rate") {
      if (!(v = need_value(i))) return false;
      opts->quota.rate = std::atof(v);
    } else if (arg == "--quota-burst") {
      if (!(v = need_value(i))) return false;
      opts->quota.burst = std::atof(v);
    } else if (arg == "--log-format") {
      if (!(v = need_value(i))) return false;
      tegra::trace::Logger::Global().SetFormat(
          std::string(v) == "json" ? tegra::trace::Logger::Format::kJson
                                   : tegra::trace::Logger::Format::kText);
    } else if (arg == "--log-level") {
      if (!(v = need_value(i))) return false;
      const std::string level = v;
      tegra::trace::Logger::Global().SetMinLevel(
          level == "debug"  ? tegra::trace::LogLevel::kDebug
          : level == "warn" ? tegra::trace::LogLevel::kWarn
          : level == "error"
              ? tegra::trace::LogLevel::kError
              : tegra::trace::LogLevel::kInfo);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

tegra::Result<tegra::ColumnIndex> BuildSyntheticCorpus(
    const ServeCliOptions& opts) {
  const std::string spec =
      opts.build_spec.empty() ? "web:5000:1" : opts.build_spec;
  const auto parts = tegra::SplitExact(spec, ":");
  if (parts.empty() || parts.size() > 3) {
    return tegra::Status::InvalidArgument("bad --build-corpus spec: " + spec);
  }
  tegra::synth::CorpusProfile profile;
  if (parts[0] == "web") {
    profile = tegra::synth::CorpusProfile::kWeb;
  } else if (parts[0] == "wiki") {
    profile = tegra::synth::CorpusProfile::kWiki;
  } else if (parts[0] == "enterprise") {
    profile = tegra::synth::CorpusProfile::kEnterprise;
  } else {
    return tegra::Status::InvalidArgument("unknown profile: " + parts[0]);
  }
  const size_t tables =
      parts.size() > 1 ? static_cast<size_t>(std::atoll(parts[1].c_str()))
                       : 5000;
  const uint64_t seed =
      parts.size() > 2 ? static_cast<uint64_t>(std::atoll(parts[2].c_str()))
                       : 1;
  tegra::trace::LogInfo("building synthetic corpus",
                        {{"profile", parts[0]}, {"tables", tables}});
  return tegra::synth::BuildBackgroundIndex(profile, tables, seed);
}

/// Parses a --slo-config file: {"slos":[{...}, ...]}. Each entry mirrors
/// health::SloSpec; an error-ratio rule without explicit windows gets the
/// canonical fast (5m/1h @ 14.4x) + slow (30m/6h @ 6x) pairs. The parse
/// lives in the tool because tegra_health sits below the JSON helpers.
tegra::Result<std::vector<tegra::health::SloSpec>> LoadSloConfig(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return tegra::Status::NotFound("cannot open --slo-config " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = tegra::serve::ParseJson(buffer.str());
  if (!parsed.ok()) return parsed.status();
  std::vector<tegra::health::SloSpec> specs;
  for (const JsonValue& item : (*parsed)["slos"].AsArray()) {
    tegra::health::SloSpec spec;
    spec.name = item["name"].AsString();
    if (spec.name.empty()) {
      return tegra::Status::InvalidArgument("slo entry without \"name\"");
    }
    const std::string kind = item["kind"].AsString();
    if (kind.empty() || kind == "error_ratio") {
      spec.kind = tegra::health::SloSpec::Kind::kErrorRatio;
    } else if (kind == "gauge_above") {
      spec.kind = tegra::health::SloSpec::Kind::kGaugeAbove;
    } else if (kind == "gauge_below") {
      spec.kind = tegra::health::SloSpec::Kind::kGaugeBelow;
    } else {
      return tegra::Status::InvalidArgument("unknown slo kind: " + kind);
    }
    spec.description = item["description"].AsString();
    for (const JsonValue& series : item["bad_series"].AsArray()) {
      spec.bad_series.push_back(series.AsString());
    }
    spec.total_series = item["total_series"].AsString();
    spec.objective = item["objective"].AsNumber(spec.objective);
    for (const JsonValue& w : item["windows"].AsArray()) {
      tegra::health::BurnWindow window;
      window.short_seconds = w["short_seconds"].AsNumber(window.short_seconds);
      window.long_seconds = w["long_seconds"].AsNumber(window.long_seconds);
      window.burn_threshold =
          w["burn_threshold"].AsNumber(window.burn_threshold);
      spec.windows.push_back(window);
    }
    if (spec.kind == tegra::health::SloSpec::Kind::kErrorRatio &&
        spec.windows.empty()) {
      spec.windows.push_back({300, 3600, 14.4});
      spec.windows.push_back({1800, 21600, 6.0});
    }
    spec.series = item["series"].AsString();
    spec.threshold = item["threshold"].AsNumber(0);
    spec.for_seconds = item["for_seconds"].AsNumber(0);
    spec.keep_seconds = item["keep_seconds"].AsNumber(spec.keep_seconds);
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) {
    return tegra::Status::InvalidArgument("no \"slos\" entries in " + path);
  }
  return specs;
}

JsonValue ResponseToJson(const JsonValue& id, const ExtractionResponse& resp) {
  JsonValue out = JsonValue::Object();
  out.Set("id", id);
  if (!resp.ok()) {
    out.Set("ok", JsonValue::Bool(false));
    out.Set("code",
            JsonValue::Str(tegra::StatusCodeToString(resp.status.code())));
    out.Set("error", JsonValue::Str(resp.status.message()));
    out.Set("queue_ms", JsonValue::Number(resp.queue_seconds * 1e3));
    out.Set("total_ms", JsonValue::Number(resp.total_seconds * 1e3));
    return out;
  }
  const tegra::ExtractionResult& result = *resp.result;
  out.Set("ok", JsonValue::Bool(true));
  out.Set("columns", JsonValue::Number(result.num_columns));
  JsonValue rows = JsonValue::Array();
  for (const auto& row : result.table.rows()) {
    JsonValue cells = JsonValue::Array();
    for (const auto& cell : row) cells.Append(JsonValue::Str(cell));
    rows.Append(std::move(cells));
  }
  out.Set("rows", std::move(rows));
  out.Set("sp", JsonValue::Number(result.sp));
  out.Set("per_column_objective",
          JsonValue::Number(result.per_column_objective));
  out.Set("quality_level", JsonValue::Number(resp.quality_level));
  out.Set("cache_hit", JsonValue::Bool(resp.cache_hit));
  out.Set("queue_ms", JsonValue::Number(resp.queue_seconds * 1e3));
  out.Set("extract_ms", JsonValue::Number(resp.extract_seconds * 1e3));
  out.Set("total_ms", JsonValue::Number(resp.total_seconds * 1e3));
  return out;
}

struct InFlight {
  JsonValue id;
  std::future<ExtractionResponse> future;
};

void Emit(const std::string& line) {
  std::fputs(line.c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

void Flush(std::deque<InFlight>* inflight, size_t keep) {
  while (inflight->size() > keep) {
    InFlight front = std::move(inflight->front());
    inflight->pop_front();
    Emit(ResponseToJson(front.id, front.future.get()).Dump());
  }
}

/// Emits a structured error object (id echoed when present) and counts it.
void EmitBadRequest(const JsonValue& id, const std::string& message,
                    tegra::Counter* bad_requests) {
  if (bad_requests != nullptr) bad_requests->Increment();
  tegra::trace::LogWarn("bad request", {{"error", message}});
  JsonValue err = JsonValue::Object();
  if (!id.AsString().empty() || id.AsNumber(0) != 0) err.Set("id", id);
  err.Set("ok", JsonValue::Bool(false));
  err.Set("code", JsonValue::Str("InvalidArgument"));
  err.Set("error", JsonValue::Str(message));
  Emit(err.Dump());
}

/// Emits `body` inline ({"ok":true,"format":...,"body":...}) or, when the
/// request carries a "file" key, writes it to disk and reports the path —
/// multi-line payloads (Prometheus exposition, Chrome traces) stay NDJSON
/// friendly either way. An unwritable "file" path is a malformed control
/// command: it answers {"ok":false,"code":"IOError",...} and counts in
/// `serve.bad_request` like every other rejected input.
void EmitBody(const JsonValue& request, const char* format,
              const std::string& body, tegra::Counter* bad_requests) {
  JsonValue out = JsonValue::Object();
  if (request.Has("id")) out.Set("id", request["id"]);
  const std::string& path = request["file"].AsString();
  if (!path.empty()) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      if (bad_requests != nullptr) bad_requests->Increment();
      tegra::trace::LogWarn("bad request", {{"error", "cannot open " + path}});
      out.Set("ok", JsonValue::Bool(false));
      out.Set("code", JsonValue::Str("IOError"));
      out.Set("error", JsonValue::Str("cannot open " + path));
      Emit(out.Dump());
      return;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    out.Set("ok", JsonValue::Bool(true));
    out.Set("format", JsonValue::Str(format));
    out.Set("file", JsonValue::Str(path));
    out.Set("bytes", JsonValue::Number(static_cast<double>(body.size())));
    Emit(out.Dump());
    return;
  }
  out.Set("ok", JsonValue::Bool(true));
  out.Set("format", JsonValue::Str(format));
  out.Set("body", JsonValue::Str(body));
  Emit(out.Dump());
}

// ---- signals: SIGHUP -> reload, SIGTERM/SIGINT -> drain (sigwait) ----------
// All handled signals are blocked process-wide before any thread is spawned;
// a dedicated signal thread consumes them synchronously with sigwait(2).
// SIGHUP performs a corpus reload in ordinary thread context; SIGTERM and
// SIGINT write one byte to a self-pipe the main loop polls alongside stdin,
// turning delivery into an ordered graceful drain. No async signal handler
// exists at all, so nothing can interrupt the main loop's stdin read (and
// sanitizer runtimes, which defer handlers while a thread is parked in a
// restarting syscall, have nothing to defer). SIGPROF is not in this set:
// the sampling profiler's handler is the one deliberate async handler in
// the process and is async-signal-safe by construction.
sigset_t HandledSignalSet() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGHUP);
  sigaddset(&set, SIGTERM);
  sigaddset(&set, SIGINT);
  return set;
}

}  // namespace

int main(int argc, char** argv) {
  ServeCliOptions opts;
  if (!ParseArgs(argc, argv, &opts)) {
    PrintUsage();
    return 2;
  }

  // Block every handled signal *now* — before the worker pool, admin plane
  // or signal thread exist — so every thread inherits the mask and the
  // dedicated signal thread below is the only consumer. SIGHUP only
  // triggers a reload when a reloadable corpus path exists; SIGTERM/SIGINT
  // always mean "drain gracefully".
  const bool sighup_reload = !opts.corpus_path.empty();
  {
    sigset_t handled = HandledSignalSet();
    pthread_sigmask(SIG_BLOCK, &handled, nullptr);
  }

  // The self-pipe bridging the signal thread to the main loop's poll():
  // one byte per shutdown signal. Created before any thread so it always
  // exists when the signal thread runs.
  int shutdown_pipe[2] = {-1, -1};
  if (::pipe(shutdown_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }

  // One registry for the whole process: service accounting, corpus cache
  // counters and the tracer's per-phase histograms all land in it, so one
  // `metrics`/`metrics_prom` snapshot shows the complete picture.
  tegra::MetricsRegistry registry;
  tegra::trace::Tracer& tracer = tegra::trace::Tracer::Global();
  tracer.BindMetrics(&registry);
  tracer.SetEnabled(opts.trace_enabled && tegra::trace::kCompiledIn);

  // Continuous profiling + request evidence. The main thread registers for
  // full-stack sampling; every pool/worker/handler thread registers itself
  // (the ThreadPool hook covers per-extraction anchor pools). Exemplars ride
  // on whatever tracing mode is active — with --trace off (or TEGRA_TRACE=OFF
  // builds) the source finds no context and exemplars quietly never fire.
  tegra::prof::EnsureThreadRegistered("main");
  tegra::prof::InstallExemplarSource();
  tegra::ThreadPool::SetThreadStartHook([](size_t worker_index) {
    tegra::prof::EnsureThreadRegistered("pool" + std::to_string(worker_index));
  });
  if (opts.profile_hz > 0) {
    const tegra::Status armed =
        tegra::prof::CpuProfiler::Global().Start(opts.profile_hz);
    if (!armed.ok()) {
      tegra::trace::LogWarn("cpu profiler unavailable",
                            {{"status", armed.ToString()}});
    }
  }
  tegra::prof::RuntimeStatsCollector runtime_stats(&registry,
                                                   /*period_seconds=*/5.0);
  runtime_stats.Start();

  // Wide-event access log (one JSON line per completed data-plane request).
  tegra::prof::WideEventLog access_log;
  if (!opts.access_log_path.empty()) {
    tegra::prof::WideEventLog::Options log_options;
    log_options.sample = opts.access_log_sample;
    log_options.slow_ms = opts.access_log_slow_ms;
    const tegra::Status opened =
        access_log.Open(opts.access_log_path, log_options);
    if (!opened.ok()) {
      tegra::trace::LogError("cannot open --access-log",
                             {{"path", opts.access_log_path},
                              {"status", opened.ToString()}});
      return 1;
    }
  }

  // Corpus lifecycle: the manager owns the current generation; the
  // reloadable engine rebuilds {CorpusStats, TegraExtractor} on every swap;
  // the service pins a generation per request. Declaration order matters —
  // the service (declared last) must drain before the engine and manager go.
  tegra::store::CorpusManagerOptions manager_options;
  manager_options.metrics = &registry;
  std::unique_ptr<tegra::store::CorpusManager> manager;
  if (!opts.corpus_path.empty()) {
    // TGRAIDX1 or TGRAIDX2, magic-sniffed; corpus_reload / SIGHUP re-open
    // the same path.
    manager = std::make_unique<tegra::store::CorpusManager>(opts.corpus_path,
                                                            manager_options);
    const tegra::Status loaded = manager->Reload();
    if (!loaded.ok()) {
      tegra::trace::LogError("corpus load failed",
                             {{"status", loaded.ToString()}});
      return 1;
    }
    tegra::trace::LogInfo("corpus loaded",
                          {{"path", opts.corpus_path},
                           {"format", manager->CurrentFormat()},
                           {"generation", manager->Generation()}});
  } else {
    auto built = BuildSyntheticCorpus(opts);
    if (!built.ok()) {
      tegra::trace::LogError("corpus build failed",
                             {{"status", built.status().ToString()}});
      return 1;
    }
    manager = std::make_unique<tegra::store::CorpusManager>(
        std::make_shared<tegra::ColumnIndex>(std::move(built.value())),
        /*path=*/"", manager_options);
  }

  tegra::serve::ReloadableEngineConfig engine_config;
  engine_config.tegra = opts.tegra;
  engine_config.stats.co_cache_capacity = opts.co_cache_capacity;
  engine_config.stats.metrics = &registry;
  // With qos on, every corpus generation also carries the per-rung degraded
  // engines (sampled anchors, capped DP, syntactic-only, ListExtract).
  engine_config.build_qos_rungs = opts.qos_enabled;
  tegra::serve::ReloadableEngine engine(manager.get(), engine_config);

  // qos subsystem: the degradation controller is driven from the health
  // tick (EvaluateFromStore below); the tenant quota buckets are charged by
  // the data plane per request. Both outlive the service, which only
  // borrows pointers.
  tegra::qos::DegradationController degradation(opts.qos, &registry);
  tegra::qos::TenantQuotas quotas(opts.quota, &registry);

  // Health subsystem: recorder (metrics -> time series), SLO burn-rate
  // engine, stall watchdog. Constructed before the service so workers can
  // register heartbeats in its registry; Start()ed only after every observed
  // subsystem is up, and Stop()ped first in the drain sequence so no check
  // runs against half-dead threads. The gauge-refresh hook dereferences a
  // pointer filled in right after the service exists.
  std::vector<tegra::health::SloSpec> slo_specs;
  if (!opts.slo_config_path.empty()) {
    auto loaded = LoadSloConfig(opts.slo_config_path);
    if (!loaded.ok()) {
      tegra::trace::LogError("bad --slo-config",
                             {{"path", opts.slo_config_path},
                              {"status", loaded.status().ToString()}});
      return 1;
    }
    slo_specs = std::move(loaded.value());
  } else {
    slo_specs = tegra::health::SloEngine::DefaultSpecs();
    for (tegra::health::SloSpec& spec : slo_specs) {
      // The built-in saturation rule assumes the default queue bound;
      // rescale it to 75% of whatever --queue-depth actually is.
      if (spec.name == "queue_saturation") {
        spec.threshold =
            0.75 * static_cast<double>(opts.service.max_queue_depth);
      }
    }
  }
  if (opts.qos_enabled) {
    // Degradation is the intended overload response, but *sustained*
    // degradation means capacity, not load, is the problem — page on it.
    tegra::health::SloSpec spec;
    spec.name = "qos_degraded";
    spec.kind = tegra::health::SloSpec::Kind::kGaugeAbove;
    spec.description = "degradation ladder above rung 0 beyond budget";
    spec.series = "qos.rung";
    spec.threshold = 0.5;
    spec.for_seconds = opts.qos_degraded_budget_s;
    slo_specs.push_back(std::move(spec));
  }
  tegra::health::HealthOptions health_options;
  health_options.interval_seconds = opts.health_interval_ms / 1e3;
  health_options.watchdog.stall_threshold_seconds =
      opts.stall_threshold_ms / 1e3;
  health_options.slos = std::move(slo_specs);
  tegra::serve::ExtractionService* service_ptr = nullptr;
  tegra::health::HealthMonitor* health_ptr = nullptr;
  const bool qos_enabled = opts.qos_enabled;
  health_options.refresh_gauges = [&service_ptr, &health_ptr, &degradation,
                                   qos_enabled] {
    if (service_ptr != nullptr) service_ptr->metrics();
    // One qos control step per health tick: queue depth sampled live, the
    // latency signals read from the previous tick's time-series ingest.
    if (qos_enabled && service_ptr != nullptr && health_ptr != nullptr) {
      const tegra::serve::ServiceOptions& sopts = service_ptr->options();
      const double queue_fraction =
          sopts.max_queue_depth == 0
              ? 0.0
              : static_cast<double>(service_ptr->QueueDepth()) /
                    static_cast<double>(sopts.max_queue_depth);
      const double now_seconds =
          std::chrono::duration<double>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count();
      degradation.EvaluateFromStore(*health_ptr->store(), queue_fraction,
                                    sopts.default_deadline_seconds,
                                    now_seconds);
    }
  };
  tegra::health::HealthMonitor health(&registry, std::move(health_options));
  health_ptr = &health;

  // Per-extraction ThreadPool workers stamp busy/idle through the task
  // hooks; the thread-local slot registers on first task and releases at
  // thread exit (pools are created per extraction call).
  tegra::ThreadPool::SetTaskHooks(
      [&health](size_t) {
        tegra::health::Heartbeat* heartbeat =
            health.heartbeats()->PoolThreadHeartbeat();
        if (heartbeat != nullptr) heartbeat->BeginWork("pool-task");
      },
      [&health](size_t) {
        tegra::health::Heartbeat* heartbeat =
            health.heartbeats()->PoolThreadHeartbeat();
        if (heartbeat != nullptr) heartbeat->EndWork();
      });

  opts.service.heartbeats = health.heartbeats();
  if (opts.qos_enabled) opts.service.degradation = &degradation;
  tegra::serve::ExtractionService service(&engine, opts.service, &registry);
  service_ptr = &service;
  tegra::Counter* bad_requests = registry.GetCounter("serve.bad_request");

  // The signal thread: every handled signal is blocked in every thread (see
  // the pthread_sigmask call above); this thread alone consumes them,
  // synchronously, with sigwait. SIGHUP -> corpus reload (when a reloadable
  // path exists), SIGTERM/SIGINT -> one byte down the self-pipe so the main
  // loop starts the same graceful drain as {"cmd":"quit"}.
  std::atomic<bool> signal_thread_quit{false};
  const int shutdown_write_fd = shutdown_pipe[1];
  std::thread signal_thread(
      [&manager, &health, &signal_thread_quit, sighup_reload,
       shutdown_write_fd] {
        // This thread doubles as the reloader, and a reload can wedge on
        // a bad NFS mount or a giant index: stamp a worker heartbeat
        // around each Reload so the watchdog notices. SIGPROF is not in
        // the sigwait set, so the stack capture reaches this thread too.
        tegra::prof::EnsureThreadRegistered("reloader");
        tegra::health::Heartbeat* heartbeat = health.heartbeats()->Register(
            "reloader", tegra::health::ThreadKind::kWorker);
        const sigset_t handled = HandledSignalSet();
        while (true) {
          int sig = 0;
          if (sigwait(&handled, &sig) != 0) break;
          if (signal_thread_quit.load(std::memory_order_acquire)) break;
          if (sig == SIGTERM || sig == SIGINT) {
            tegra::trace::LogInfo("shutdown signal: draining",
                                  {{"signal", sig == SIGTERM ? "SIGTERM"
                                                             : "SIGINT"}});
            const char byte = 1;
            // A full pipe just means a drain is already pending.
            (void)!::write(shutdown_write_fd, &byte, 1);
            continue;
          }
          // SIGHUP.
          if (!sighup_reload) {
            tegra::trace::LogInfo("SIGHUP ignored (no --corpus path)", {});
            continue;
          }
          tegra::trace::LogInfo("SIGHUP: reloading corpus",
                                {{"path", manager->path()}});
          tegra::health::ScopedWork work(heartbeat, "corpus_reload");
          const tegra::Status status = manager->Reload();
          if (status.ok()) {
            tegra::trace::LogInfo("corpus reloaded",
                                  {{"generation", manager->Generation()},
                                   {"format", manager->CurrentFormat()}});
          } else {
            tegra::trace::LogError(
                "corpus reload failed; keeping previous generation",
                {{"status", status.ToString()}});
          }
        }
        if (heartbeat != nullptr) health.heartbeats()->Release(heartbeat);
      });

  // Optional HTTP data plane (POST /v1/extract over the tegra::net event
  // loop). Declared after the service so it is stopped and destroyed first —
  // its handlers only borrow the service, and in-flight HTTP exchanges
  // complete before the worker pool can drain away underneath them.
  tegra::serve::DataPlaneOptions plane_options;
  plane_options.server.port = opts.data_port < 0 ? 0 : opts.data_port;
  plane_options.server.bind_address = opts.data_bind;
  plane_options.server.max_connections = opts.max_connections;
  plane_options.server.io_timeout_ms = opts.io_timeout_ms;
  plane_options.quotas = &quotas;
  // Loop-liveness beat, fired every event-loop iteration (the poller wakes
  // at least every timer tick). The slot registers from the loop thread on
  // its first beat — Register records the calling tid for stack capture —
  // and releases itself at thread exit.
  plane_options.server.loop_heartbeat = [&health] {
    struct LoopSlot {
      tegra::health::HeartbeatRegistry* registry;
      tegra::health::Heartbeat* heartbeat;
      ~LoopSlot() {
        if (heartbeat != nullptr) registry->Release(heartbeat);
      }
    };
    static thread_local LoopSlot slot{
        health.heartbeats(),
        health.heartbeats()->Register("net-loop",
                                      tegra::health::ThreadKind::kLoop)};
    if (slot.heartbeat != nullptr) slot.heartbeat->Beat();
  };
  tegra::serve::DataPlane plane(&service, plane_options, &registry);
  if (access_log.enabled()) plane.set_wide_events(&access_log);

  // Optional HTTP admin plane. Declared after the service so it is stopped
  // (and destroyed) first; AdminPages only borrows the subsystems above.
  tegra::serve::AdminPagesOptions pages_options;
  pages_options.corpus_description =
      !opts.corpus_path.empty()
          ? opts.corpus_path
          : "synthetic " +
                (opts.build_spec.empty() ? std::string("web:5000:1")
                                         : opts.build_spec);
  tegra::serve::AdminPages pages(&service, &tracer, manager.get(),
                                 pages_options);
  pages.set_health(&health);
  if (opts.qos_enabled || quotas.enabled()) {
    pages.set_qos(opts.qos_enabled ? &degradation : nullptr,
                  quotas.enabled() ? &quotas : nullptr);
  }
  if (opts.data_port >= 0) {
    // /readyz reports data-plane saturation; /statusz gains its stats table.
    pages.set_data_plane(&plane.server());
  }
  tegra::serve::HttpAdminOptions admin_options;
  admin_options.port = opts.admin_port < 0 ? 0 : opts.admin_port;
  admin_options.bind_address = opts.admin_bind;
  tegra::serve::HttpAdminServer admin(admin_options, &registry);
  pages.RegisterAll(&admin);
  if (opts.admin_port >= 0) {
    const tegra::Status started = admin.Start();
    if (!started.ok()) {
      tegra::trace::LogError("admin plane failed to start",
                             {{"status", started.ToString()}});
      return 1;
    }
    // Announce the bound port on stdout before any responses so drivers of
    // `--admin-port 0` (ephemeral) can discover where to scrape.
    JsonValue ready = JsonValue::Object();
    ready.Set("event", JsonValue::Str("admin_ready"));
    ready.Set("port", JsonValue::Number(admin.port()));
    Emit(ready.Dump());
    tegra::trace::LogInfo("admin plane listening",
                          {{"bind", opts.admin_bind}, {"port", admin.port()}});
  }

  if (opts.data_port >= 0) {
    const tegra::Status started = plane.Start();
    if (!started.ok()) {
      tegra::trace::LogError("data plane failed to start",
                             {{"status", started.ToString()}});
      return 1;
    }
    // Same discovery contract as admin_ready: with `--port 0` this stdout
    // line is how drivers learn the ephemeral port.
    JsonValue ready = JsonValue::Object();
    ready.Set("event", JsonValue::Str("data_ready"));
    ready.Set("port", JsonValue::Number(plane.port()));
    Emit(ready.Dump());
    tegra::trace::LogInfo(
        "data plane listening",
        {{"bind", opts.data_bind},
         {"port", plane.port()},
         {"max_connections", plane_options.server.max_connections},
         {"io_timeout_ms", plane_options.server.io_timeout_ms}});
  }

  // Every observed subsystem is up; start recording. With
  // --health-interval-ms 0 this is a no-op (zPages then show an idle,
  // never-ticked recorder).
  health.Start();

  tegra::trace::LogInfo(
      "tegra_serve ready",
      {{"workers", service.options().num_workers},
       {"queue_depth", service.options().max_queue_depth},
       {"cache_capacity", service.options().result_cache_capacity},
       {"slowlog_capacity", service.options().slowlog_capacity},
       {"trace", tracer.enabled()},
       {"admin", opts.admin_port >= 0 ? "on" : "off"},
       {"data_plane", opts.data_port >= 0 ? "on" : "off"},
       {"profile_hz", opts.profile_hz},
       {"health_interval_ms", opts.health_interval_ms},
       {"qos", opts.qos_enabled ? "on" : "off"},
       {"quota_rate", opts.quota.rate},
       {"access_log",
        opts.access_log_path.empty() ? "off" : opts.access_log_path}});

  // Keep at most pipeline_depth requests in flight so admission control is
  // exercised by fast producers while stdout stays in submission order.
  const size_t pipeline_depth = opts.service.max_queue_depth + 16;
  std::deque<InFlight> inflight;

  // Processes one NDJSON input line; returns false on {"cmd":"quit"}.
  auto handle_line = [&](const std::string& line) -> bool {
    if (tegra::Trim(line).empty()) return true;
    auto parsed = tegra::serve::ParseJson(line);
    if (!parsed.ok()) {
      Flush(&inflight, 0);  // Keep output ordered even for parse errors.
      EmitBadRequest(JsonValue(), parsed.status().message(), bad_requests);
      return true;
    }
    const JsonValue& request = *parsed;
    const std::string& cmd = request["cmd"].AsString();
    if (cmd == "quit") return false;
    if (cmd == "metrics") {
      Flush(&inflight, 0);
      Emit(service.metrics()->Snapshot().ToJson());
      return true;
    }
    if (cmd == "metrics_prom") {
      Flush(&inflight, 0);
      EmitBody(request, "prometheus",
               tegra::trace::ToPrometheusText(service.metrics()->Snapshot()),
               bad_requests);
      return true;
    }
    if (cmd == "trace_dump") {
      Flush(&inflight, 0);
      EmitBody(request, "chrome_trace",
               tegra::trace::ToChromeTraceJson(tracer.RingSnapshot()),
               bad_requests);
      return true;
    }
    if (cmd == "slowlog") {
      Flush(&inflight, 0);
      JsonValue out = SlowlogToJson(service.slowlog());
      if (request.Has("id")) out.Set("id", request["id"]);
      Emit(out.Dump());
      return true;
    }
    if (cmd == "profile") {
      // Blocks this (control) thread for the capture window; extraction
      // workers and both HTTP planes keep running underneath it.
      Flush(&inflight, 0);
      double seconds = request["seconds"].AsNumber(2.0);
      seconds = std::min(30.0, std::max(0.1, seconds));
      auto profile = tegra::prof::CpuProfiler::Global().Capture(seconds);
      if (!profile.ok()) {
        EmitBadRequest(request["id"], profile.status().message(),
                       bad_requests);
        return true;
      }
      EmitBody(request, "folded", profile.value().ToFolded(), bad_requests);
      return true;
    }
    if (cmd == "inject_stall") {
      // Watchdog drill: one probe request whose worker sleeps mid-Process,
      // producing a genuine stall (busy heartbeat, capturable stack). The
      // future is deliberately dropped — the probe completes on its own and
      // the control loop must not block for the sleep. debug_sleep_ms is
      // only settable here; the HTTP data plane never populates it.
      Flush(&inflight, 0);
      double sleep_ms = request["ms"].AsNumber(2000.0);
      sleep_ms = std::min(120000.0, std::max(1.0, sleep_ms));
      ExtractionRequest probe;
      probe.lines = {"stall probe alpha 1", "stall probe beta 2"};
      probe.num_columns = 0;
      probe.bypass_cache = true;
      probe.debug_sleep_ms = sleep_ms;
      (void)service.Submit(std::move(probe));
      tegra::trace::LogWarn("inject_stall: stall probe submitted",
                            {{"sleep_ms", sleep_ms}});
      JsonValue out = JsonValue::Object();
      if (request.Has("id")) out.Set("id", request["id"]);
      out.Set("ok", JsonValue::Bool(true));
      out.Set("sleep_ms", JsonValue::Number(sleep_ms));
      Emit(out.Dump());
      return true;
    }
    if (cmd == "corpus_reload") {
      // Deliberately reload BEFORE flushing: the swap happens while queued
      // and in-flight extractions are live, which is exactly the hot-reload
      // contract being exercised (each request finishes on the generation
      // it acquired). The response is emitted after the flush so stdout
      // stays in submission order.
      const tegra::Status status = manager->Reload();
      Flush(&inflight, 0);
      JsonValue out = JsonValue::Object();
      if (request.Has("id")) out.Set("id", request["id"]);
      if (status.ok()) {
        out.Set("ok", JsonValue::Bool(true));
        out.Set("generation",
                JsonValue::Number(static_cast<double>(manager->Generation())));
        out.Set("format", JsonValue::Str(manager->CurrentFormat()));
        tegra::trace::LogInfo("corpus reloaded",
                              {{"generation", manager->Generation()},
                               {"format", manager->CurrentFormat()}});
      } else {
        out.Set("ok", JsonValue::Bool(false));
        out.Set("code", JsonValue::Str(
                            tegra::StatusCodeToString(status.code())));
        out.Set("error", JsonValue::Str(status.message()));
        out.Set("generation",
                JsonValue::Number(static_cast<double>(manager->Generation())));
        tegra::trace::LogError(
            "corpus reload failed; keeping previous generation",
            {{"status", status.ToString()}});
      }
      Emit(out.Dump());
      return true;
    }
    if (!cmd.empty()) {
      Flush(&inflight, 0);
      EmitBadRequest(request["id"], "unknown cmd: " + cmd, bad_requests);
      return true;
    }
    if (!request.Has("lines") || request["lines"].AsArray().empty()) {
      Flush(&inflight, 0);
      EmitBadRequest(request["id"], "request has no \"lines\"", bad_requests);
      return true;
    }

    ExtractionRequest extraction;
    for (const JsonValue& item : request["lines"].AsArray()) {
      extraction.lines.push_back(item.AsString());
    }
    extraction.num_columns = static_cast<int>(request["columns"].AsNumber(0));
    extraction.deadline_seconds = request["deadline_ms"].AsNumber(0) / 1e3;
    extraction.bypass_cache = request["bypass_cache"].AsBool(false);
    inflight.push_back(
        InFlight{request["id"], service.Submit(std::move(extraction))});
    Flush(&inflight, pipeline_depth);
    return true;
  };

  // The main loop polls stdin *and* the shutdown self-pipe, so a SIGTERM
  // delivered while no input is arriving still starts the drain promptly.
  // Input is read raw and split into lines here (std::getline would block
  // past the poll and miss the pipe).
  std::string input_buffer;
  bool stdin_eof = false;
  bool signal_drain = false;
  while (!signal_drain) {
    size_t newline;
    bool quit = false;
    while ((newline = input_buffer.find('\n')) != std::string::npos) {
      const std::string line = input_buffer.substr(0, newline);
      input_buffer.erase(0, newline + 1);
      if (!handle_line(line)) {
        quit = true;
        break;
      }
    }
    if (quit) break;
    if (stdin_eof) {
      // A trailing unterminated line still counts as input.
      if (!input_buffer.empty()) {
        const std::string line = std::move(input_buffer);
        input_buffer.clear();
        handle_line(line);
      }
      break;
    }
    struct pollfd fds[2];
    fds[0].fd = STDIN_FILENO;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = shutdown_pipe[0];
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) {
      signal_drain = true;
      break;
    }
    if (fds[0].revents != 0) {
      char chunk[4096];
      const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof(chunk));
      if (n > 0) {
        input_buffer.append(chunk, static_cast<size_t>(n));
      } else if (n == 0 || errno != EINTR) {
        stdin_eof = true;
      }
    }
  }
  Flush(&inflight, 0);
  // Tear down the signal thread before the manager can go away: raise the
  // quit flag, then poke the thread out of sigwait with a directed SIGHUP.
  signal_thread_quit.store(true, std::memory_order_release);
  pthread_kill(signal_thread.native_handle(), SIGHUP);
  signal_thread.join();
  // Ordered graceful drain. Stop the data plane before the service drains:
  // the listener closes, in-flight HTTP exchanges finish (or hit the drain
  // timeout), and only then may the worker pool go away. The admin plane
  // follows so probes see the process disappear (connection refused), not a
  // half-dead server. Only after every request that could emit evidence has
  // finished do the telemetry threads stop and the buffered sinks flush —
  // a SIGTERM never loses buffered access-log lines or log records.
  // The health recorder goes first: no watchdog check may run while the
  // planes and workers it observes are mid-teardown.
  health.Stop();
  plane.Stop();
  admin.Stop();
  service.Shutdown();
  tegra::ThreadPool::SetTaskHooks({}, {});
  runtime_stats.Stop();
  tegra::prof::CpuProfiler::Global().Stop();
  access_log.Flush();
  ::close(shutdown_pipe[0]);
  ::close(shutdown_pipe[1]);
  tegra::trace::LogInfo("tegra_serve exiting",
                        {{"spans_recorded", tracer.spans_recorded()},
                         {"spans_dropped", tracer.dropped()},
                         {"access_log_lines", access_log.written()},
                         {"profile_samples",
                          tegra::prof::CpuProfiler::Global().samples_total()},
                         {"drain", signal_drain ? "signal" : "stdin"}});
  tegra::trace::Logger::Global().Flush();
  return 0;
}
