// tegra_serve — a long-lived extraction daemon speaking newline-delimited
// JSON over stdin/stdout. One request per line in, one response per line out
// (in submission order), so the service layer is driveable end-to-end with
// nothing but a pipe:
//
//   $ printf '%s\n' '{"id":1,"lines":["Boston Massachusetts 645,966",
//     "Worcester Massachusetts 182,544"]}' '{"cmd":"metrics"}' |
//     ./tegra_serve --corpus web.idx
//
// Request objects:
//   {"id": <any>, "lines": ["row", ...],          // required
//    "columns": N,                                 // optional, 0 = auto
//    "deadline_ms": D,                             // optional
//    "bypass_cache": true}                         // optional
// Control objects:
//   {"cmd": "metrics"}       -> one JSON metrics snapshot
//   {"cmd": "metrics_prom"}  -> Prometheus text exposition (inline "body",
//                               or to disk with {"file":"path"})
//   {"cmd": "trace_dump"}    -> Chrome trace_event JSON of the span ring
//                               (inline "body", or {"file":"path"} —
//                               loadable in ui.perfetto.dev)
//   {"cmd": "slowlog"}       -> the N slowest requests with span trees
//   {"cmd": "quit"}          -> drain in-flight work and exit
//
// With --admin-port the same telemetry is served over HTTP (zPages:
// /metrics /healthz /readyz /statusz /tracez /slowlogz /varz), so Prometheus
// scrapers, load balancers and browsers reach it without the pipe. When the
// admin plane starts, one NDJSON event line
//   {"event":"admin_ready","port":N}
// is emitted on stdout before any responses — with `--admin-port 0` (bind an
// ephemeral port) this line is how drivers learn the actual port.
//
// Response objects (id echoed):
//   {"id":1,"ok":true,"columns":3,"rows":[[...],...],"sp":...,
//    "cache_hit":false,"queue_ms":...,"extract_ms":...,"total_ms":...}
//   {"id":2,"ok":false,"code":"Unavailable","error":"queue full ..."}
//
// Malformed input (unparsable JSON, missing/empty "lines", unknown "cmd")
// is answered with a structured error object and counted in
// `serve.bad_request` rather than silently dropped.

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/build_info.h"
#include "common/string_util.h"
#include "corpus/corpus_io.h"
#include "corpus/corpus_stats.h"
#include "service/admin_pages.h"
#include "service/extraction_service.h"
#include "service/http_admin.h"
#include "service/serve_json.h"
#include "synth/corpus_gen.h"
#include "trace/chrome_trace.h"
#include "trace/log.h"
#include "trace/prometheus.h"
#include "trace/trace.h"

namespace {

using tegra::serve::ExtractionRequest;
using tegra::serve::ExtractionResponse;
using tegra::serve::JsonValue;

void PrintUsage() {
  std::fputs(R"(usage: tegra_serve [options]

Long-lived TEGRA extraction service over stdin/stdout (NDJSON).

options:
  --corpus PATH           load a serialized background index
  --build-corpus SPEC     build a synthetic corpus; SPEC = profile:tables:seed
                          with profile in {web, wiki, enterprise}
                          (default: web:5000:1 when --corpus is not given)
  --workers N             extraction worker threads (default 4)
  --queue-depth N         admission-control queue bound (default 64)
  --deadline-ms D         default per-request deadline (default: none)
  --cache-capacity N      whole-list result cache entries (default 1024)
  --co-cache-capacity N   corpus co-occurrence memo entries (default 1M)
  --alpha X               syntactic weight in [0,1] (default 0.5)
  --threads N             per-extraction anchor threads (default 1)
  --trace on|off          runtime span recording (default on)
  --slowlog N             slow-request log capacity (default 8)
  --admin-port N          serve the HTTP admin plane (zPages: /metrics
                          /healthz /readyz /statusz /tracez /slowlogz /varz)
                          on 127.0.0.1:N; N=0 binds an ephemeral port and
                          the bound port is reported via the
                          {"event":"admin_ready","port":N} stdout line and
                          the startup log. Omit the flag to disable (default)
  --admin-bind ADDR       admin plane bind address (default 127.0.0.1;
                          use 0.0.0.0 to expose beyond loopback)
  --log-format text|json  stderr log rendering (default text)
  --log-level LEVEL       debug|info|warn|error (default info)
  --help                  this text
)",
             stderr);
}

struct ServeCliOptions {
  std::string corpus_path;
  std::string build_spec;
  size_t co_cache_capacity = 1 << 20;
  bool trace_enabled = true;
  /// -1 = admin plane disabled; 0 = ephemeral port; >0 = fixed port.
  int admin_port = -1;
  std::string admin_bind = "127.0.0.1";
  tegra::TegraOptions tegra;
  tegra::serve::ServiceOptions service;
};

bool ParseArgs(int argc, char** argv, ServeCliOptions* opts) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else if (arg == "--corpus") {
      if (!(v = need_value(i))) return false;
      opts->corpus_path = v;
    } else if (arg == "--build-corpus") {
      if (!(v = need_value(i))) return false;
      opts->build_spec = v;
    } else if (arg == "--workers") {
      if (!(v = need_value(i))) return false;
      opts->service.num_workers = std::atoi(v);
    } else if (arg == "--queue-depth") {
      if (!(v = need_value(i))) return false;
      opts->service.max_queue_depth = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--deadline-ms") {
      if (!(v = need_value(i))) return false;
      opts->service.default_deadline_seconds = std::atof(v) / 1e3;
    } else if (arg == "--cache-capacity") {
      if (!(v = need_value(i))) return false;
      opts->service.result_cache_capacity = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--co-cache-capacity") {
      if (!(v = need_value(i))) return false;
      opts->co_cache_capacity = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--alpha") {
      if (!(v = need_value(i))) return false;
      opts->tegra.distance.alpha = std::atof(v);
    } else if (arg == "--threads") {
      if (!(v = need_value(i))) return false;
      opts->tegra.num_threads = std::atoi(v);
    } else if (arg == "--trace") {
      if (!(v = need_value(i))) return false;
      opts->trace_enabled = std::string(v) != "off";
    } else if (arg == "--slowlog") {
      if (!(v = need_value(i))) return false;
      opts->service.slowlog_capacity = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--admin-port") {
      if (!(v = need_value(i))) return false;
      opts->admin_port = std::atoi(v);
      if (opts->admin_port < 0 || opts->admin_port > 65535) {
        std::fprintf(stderr, "bad --admin-port: %s\n", v);
        return false;
      }
    } else if (arg == "--admin-bind") {
      if (!(v = need_value(i))) return false;
      opts->admin_bind = v;
    } else if (arg == "--log-format") {
      if (!(v = need_value(i))) return false;
      tegra::trace::Logger::Global().SetFormat(
          std::string(v) == "json" ? tegra::trace::Logger::Format::kJson
                                   : tegra::trace::Logger::Format::kText);
    } else if (arg == "--log-level") {
      if (!(v = need_value(i))) return false;
      const std::string level = v;
      tegra::trace::Logger::Global().SetMinLevel(
          level == "debug"  ? tegra::trace::LogLevel::kDebug
          : level == "warn" ? tegra::trace::LogLevel::kWarn
          : level == "error"
              ? tegra::trace::LogLevel::kError
              : tegra::trace::LogLevel::kInfo);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

tegra::Result<tegra::ColumnIndex> BuildOrLoadCorpus(
    const ServeCliOptions& opts) {
  if (!opts.corpus_path.empty()) {
    return tegra::LoadColumnIndex(opts.corpus_path);
  }
  const std::string spec =
      opts.build_spec.empty() ? "web:5000:1" : opts.build_spec;
  const auto parts = tegra::SplitExact(spec, ":");
  if (parts.empty() || parts.size() > 3) {
    return tegra::Status::InvalidArgument("bad --build-corpus spec: " + spec);
  }
  tegra::synth::CorpusProfile profile;
  if (parts[0] == "web") {
    profile = tegra::synth::CorpusProfile::kWeb;
  } else if (parts[0] == "wiki") {
    profile = tegra::synth::CorpusProfile::kWiki;
  } else if (parts[0] == "enterprise") {
    profile = tegra::synth::CorpusProfile::kEnterprise;
  } else {
    return tegra::Status::InvalidArgument("unknown profile: " + parts[0]);
  }
  const size_t tables =
      parts.size() > 1 ? static_cast<size_t>(std::atoll(parts[1].c_str()))
                       : 5000;
  const uint64_t seed =
      parts.size() > 2 ? static_cast<uint64_t>(std::atoll(parts[2].c_str()))
                       : 1;
  tegra::trace::LogInfo("building synthetic corpus",
                        {{"profile", parts[0]}, {"tables", tables}});
  return tegra::synth::BuildBackgroundIndex(profile, tables, seed);
}

JsonValue ResponseToJson(const JsonValue& id, const ExtractionResponse& resp) {
  JsonValue out = JsonValue::Object();
  out.Set("id", id);
  if (!resp.ok()) {
    out.Set("ok", JsonValue::Bool(false));
    out.Set("code",
            JsonValue::Str(tegra::StatusCodeToString(resp.status.code())));
    out.Set("error", JsonValue::Str(resp.status.message()));
    out.Set("queue_ms", JsonValue::Number(resp.queue_seconds * 1e3));
    out.Set("total_ms", JsonValue::Number(resp.total_seconds * 1e3));
    return out;
  }
  const tegra::ExtractionResult& result = *resp.result;
  out.Set("ok", JsonValue::Bool(true));
  out.Set("columns", JsonValue::Number(result.num_columns));
  JsonValue rows = JsonValue::Array();
  for (const auto& row : result.table.rows()) {
    JsonValue cells = JsonValue::Array();
    for (const auto& cell : row) cells.Append(JsonValue::Str(cell));
    rows.Append(std::move(cells));
  }
  out.Set("rows", std::move(rows));
  out.Set("sp", JsonValue::Number(result.sp));
  out.Set("per_column_objective",
          JsonValue::Number(result.per_column_objective));
  out.Set("cache_hit", JsonValue::Bool(resp.cache_hit));
  out.Set("queue_ms", JsonValue::Number(resp.queue_seconds * 1e3));
  out.Set("extract_ms", JsonValue::Number(resp.extract_seconds * 1e3));
  out.Set("total_ms", JsonValue::Number(resp.total_seconds * 1e3));
  return out;
}

struct InFlight {
  JsonValue id;
  std::future<ExtractionResponse> future;
};

void Emit(const std::string& line) {
  std::fputs(line.c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

void Flush(std::deque<InFlight>* inflight, size_t keep) {
  while (inflight->size() > keep) {
    InFlight front = std::move(inflight->front());
    inflight->pop_front();
    Emit(ResponseToJson(front.id, front.future.get()).Dump());
  }
}

/// Emits a structured error object (id echoed when present) and counts it.
void EmitBadRequest(const JsonValue& id, const std::string& message,
                    tegra::Counter* bad_requests) {
  if (bad_requests != nullptr) bad_requests->Increment();
  tegra::trace::LogWarn("bad request", {{"error", message}});
  JsonValue err = JsonValue::Object();
  if (!id.AsString().empty() || id.AsNumber(0) != 0) err.Set("id", id);
  err.Set("ok", JsonValue::Bool(false));
  err.Set("code", JsonValue::Str("InvalidArgument"));
  err.Set("error", JsonValue::Str(message));
  Emit(err.Dump());
}

/// Emits `body` inline ({"ok":true,"format":...,"body":...}) or, when the
/// request carries a "file" key, writes it to disk and reports the path —
/// multi-line payloads (Prometheus exposition, Chrome traces) stay NDJSON
/// friendly either way. An unwritable "file" path is a malformed control
/// command: it answers {"ok":false,"code":"IOError",...} and counts in
/// `serve.bad_request` like every other rejected input.
void EmitBody(const JsonValue& request, const char* format,
              const std::string& body, tegra::Counter* bad_requests) {
  JsonValue out = JsonValue::Object();
  if (request.Has("id")) out.Set("id", request["id"]);
  const std::string& path = request["file"].AsString();
  if (!path.empty()) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      if (bad_requests != nullptr) bad_requests->Increment();
      tegra::trace::LogWarn("bad request", {{"error", "cannot open " + path}});
      out.Set("ok", JsonValue::Bool(false));
      out.Set("code", JsonValue::Str("IOError"));
      out.Set("error", JsonValue::Str("cannot open " + path));
      Emit(out.Dump());
      return;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    out.Set("ok", JsonValue::Bool(true));
    out.Set("format", JsonValue::Str(format));
    out.Set("file", JsonValue::Str(path));
    out.Set("bytes", JsonValue::Number(static_cast<double>(body.size())));
    Emit(out.Dump());
    return;
  }
  out.Set("ok", JsonValue::Bool(true));
  out.Set("format", JsonValue::Str(format));
  out.Set("body", JsonValue::Str(body));
  Emit(out.Dump());
}

}  // namespace

int main(int argc, char** argv) {
  ServeCliOptions opts;
  if (!ParseArgs(argc, argv, &opts)) {
    PrintUsage();
    return 2;
  }

  // One registry for the whole process: service accounting, corpus cache
  // counters and the tracer's per-phase histograms all land in it, so one
  // `metrics`/`metrics_prom` snapshot shows the complete picture.
  tegra::MetricsRegistry registry;
  tegra::trace::Tracer& tracer = tegra::trace::Tracer::Global();
  tracer.BindMetrics(&registry);
  tracer.SetEnabled(opts.trace_enabled && tegra::trace::kCompiledIn);

  auto corpus = BuildOrLoadCorpus(opts);
  if (!corpus.ok()) {
    tegra::trace::LogError("corpus load failed",
                           {{"status", corpus.status().ToString()}});
    return 1;
  }
  tegra::CorpusStatsOptions stats_options;
  stats_options.co_cache_capacity = opts.co_cache_capacity;
  stats_options.metrics = &registry;
  tegra::CorpusStats stats(&corpus.value(), stats_options);
  tegra::TegraExtractor extractor(&stats, opts.tegra);
  tegra::serve::ExtractionService service(&extractor, opts.service, &registry);
  tegra::Counter* bad_requests = registry.GetCounter("serve.bad_request");

  // Optional HTTP admin plane. Declared after the service so it is stopped
  // (and destroyed) first; AdminPages only borrows the subsystems above.
  tegra::serve::AdminPagesOptions pages_options;
  pages_options.corpus_description =
      !opts.corpus_path.empty()
          ? opts.corpus_path
          : "synthetic " +
                (opts.build_spec.empty() ? std::string("web:5000:1")
                                         : opts.build_spec);
  tegra::serve::AdminPages pages(&service, &tracer, &corpus.value(),
                                 pages_options);
  tegra::serve::HttpAdminOptions admin_options;
  admin_options.port = opts.admin_port < 0 ? 0 : opts.admin_port;
  admin_options.bind_address = opts.admin_bind;
  tegra::serve::HttpAdminServer admin(admin_options, &registry);
  pages.RegisterAll(&admin);
  if (opts.admin_port >= 0) {
    const tegra::Status started = admin.Start();
    if (!started.ok()) {
      tegra::trace::LogError("admin plane failed to start",
                             {{"status", started.ToString()}});
      return 1;
    }
    // Announce the bound port on stdout before any responses so drivers of
    // `--admin-port 0` (ephemeral) can discover where to scrape.
    JsonValue ready = JsonValue::Object();
    ready.Set("event", JsonValue::Str("admin_ready"));
    ready.Set("port", JsonValue::Number(admin.port()));
    Emit(ready.Dump());
    tegra::trace::LogInfo("admin plane listening",
                          {{"bind", opts.admin_bind}, {"port", admin.port()}});
  }

  tegra::trace::LogInfo(
      "tegra_serve ready",
      {{"workers", service.options().num_workers},
       {"queue_depth", service.options().max_queue_depth},
       {"cache_capacity", service.options().result_cache_capacity},
       {"slowlog_capacity", service.options().slowlog_capacity},
       {"trace", tracer.enabled()},
       {"admin", opts.admin_port >= 0 ? "on" : "off"}});

  // Keep at most pipeline_depth requests in flight so admission control is
  // exercised by fast producers while stdout stays in submission order.
  const size_t pipeline_depth = opts.service.max_queue_depth + 16;
  std::deque<InFlight> inflight;

  std::string line;
  while (std::getline(std::cin, line)) {
    if (tegra::Trim(line).empty()) continue;
    auto parsed = tegra::serve::ParseJson(line);
    if (!parsed.ok()) {
      Flush(&inflight, 0);  // Keep output ordered even for parse errors.
      EmitBadRequest(JsonValue(), parsed.status().message(), bad_requests);
      continue;
    }
    const JsonValue& request = *parsed;
    const std::string& cmd = request["cmd"].AsString();
    if (cmd == "quit") break;
    if (cmd == "metrics") {
      Flush(&inflight, 0);
      Emit(service.metrics()->Snapshot().ToJson());
      continue;
    }
    if (cmd == "metrics_prom") {
      Flush(&inflight, 0);
      EmitBody(request, "prometheus",
               tegra::trace::ToPrometheusText(service.metrics()->Snapshot()),
               bad_requests);
      continue;
    }
    if (cmd == "trace_dump") {
      Flush(&inflight, 0);
      EmitBody(request, "chrome_trace",
               tegra::trace::ToChromeTraceJson(tracer.RingSnapshot()),
               bad_requests);
      continue;
    }
    if (cmd == "slowlog") {
      Flush(&inflight, 0);
      JsonValue out = SlowlogToJson(service.slowlog());
      if (request.Has("id")) out.Set("id", request["id"]);
      Emit(out.Dump());
      continue;
    }
    if (!cmd.empty()) {
      Flush(&inflight, 0);
      EmitBadRequest(request["id"], "unknown cmd: " + cmd, bad_requests);
      continue;
    }
    if (!request.Has("lines") || request["lines"].AsArray().empty()) {
      Flush(&inflight, 0);
      EmitBadRequest(request["id"], "request has no \"lines\"", bad_requests);
      continue;
    }

    ExtractionRequest extraction;
    for (const JsonValue& item : request["lines"].AsArray()) {
      extraction.lines.push_back(item.AsString());
    }
    extraction.num_columns = static_cast<int>(request["columns"].AsNumber(0));
    extraction.deadline_seconds = request["deadline_ms"].AsNumber(0) / 1e3;
    extraction.bypass_cache = request["bypass_cache"].AsBool(false);
    inflight.push_back(
        InFlight{request["id"], service.Submit(std::move(extraction))});
    Flush(&inflight, pipeline_depth);
  }
  Flush(&inflight, 0);
  // Stop the admin plane before the service drains so probes see the
  // process disappear (connection refused) rather than a half-dead server.
  admin.Stop();
  tegra::trace::LogInfo("tegra_serve exiting",
                        {{"spans_recorded", tracer.spans_recorded()},
                         {"spans_dropped", tracer.dropped()}});
  return 0;
}
