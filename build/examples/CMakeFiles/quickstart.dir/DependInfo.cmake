
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/tegra_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/tegra_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tegra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/tegra_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/tegra_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/tegra_html.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/tegra_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/tegra_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tegra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
