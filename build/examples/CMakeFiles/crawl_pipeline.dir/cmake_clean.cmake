file(REMOVE_RECURSE
  "CMakeFiles/crawl_pipeline.dir/crawl_pipeline.cpp.o"
  "CMakeFiles/crawl_pipeline.dir/crawl_pipeline.cpp.o.d"
  "crawl_pipeline"
  "crawl_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crawl_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
