# Empty dependencies file for supervised_extraction.
# This may be replaced when dependencies are built.
