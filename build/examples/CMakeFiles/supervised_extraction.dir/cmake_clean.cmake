file(REMOVE_RECURSE
  "CMakeFiles/supervised_extraction.dir/supervised_extraction.cpp.o"
  "CMakeFiles/supervised_extraction.dir/supervised_extraction.cpp.o.d"
  "supervised_extraction"
  "supervised_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supervised_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
