# Empty compiler generated dependencies file for enterprise_sheets.
# This may be replaced when dependencies are built.
