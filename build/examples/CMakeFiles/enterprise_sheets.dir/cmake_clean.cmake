file(REMOVE_RECURSE
  "CMakeFiles/enterprise_sheets.dir/enterprise_sheets.cpp.o"
  "CMakeFiles/enterprise_sheets.dir/enterprise_sheets.cpp.o.d"
  "enterprise_sheets"
  "enterprise_sheets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_sheets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
