# Empty compiler generated dependencies file for wikipedia_cities.
# This may be replaced when dependencies are built.
