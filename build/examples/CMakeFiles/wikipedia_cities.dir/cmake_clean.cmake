file(REMOVE_RECURSE
  "CMakeFiles/wikipedia_cities.dir/wikipedia_cities.cpp.o"
  "CMakeFiles/wikipedia_cities.dir/wikipedia_cities.cpp.o.d"
  "wikipedia_cities"
  "wikipedia_cities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wikipedia_cities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
