# Empty compiler generated dependencies file for html_to_table.
# This may be replaced when dependencies are built.
