file(REMOVE_RECURSE
  "CMakeFiles/html_to_table.dir/html_to_table.cpp.o"
  "CMakeFiles/html_to_table.dir/html_to_table.cpp.o.d"
  "html_to_table"
  "html_to_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_to_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
