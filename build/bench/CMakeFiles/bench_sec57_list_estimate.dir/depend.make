# Empty dependencies file for bench_sec57_list_estimate.
# This may be replaced when dependencies are built.
