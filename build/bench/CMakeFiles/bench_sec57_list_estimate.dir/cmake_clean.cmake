file(REMOVE_RECURSE
  "CMakeFiles/bench_sec57_list_estimate.dir/bench_sec57_list_estimate.cc.o"
  "CMakeFiles/bench_sec57_list_estimate.dir/bench_sec57_list_estimate.cc.o.d"
  "bench_sec57_list_estimate"
  "bench_sec57_list_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec57_list_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
