# Empty dependencies file for bench_table5_supervised.
# This may be replaced when dependencies are built.
