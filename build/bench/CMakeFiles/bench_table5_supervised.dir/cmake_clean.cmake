file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_supervised.dir/bench_table5_supervised.cc.o"
  "CMakeFiles/bench_table5_supervised.dir/bench_table5_supervised.cc.o.d"
  "bench_table5_supervised"
  "bench_table5_supervised.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_supervised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
