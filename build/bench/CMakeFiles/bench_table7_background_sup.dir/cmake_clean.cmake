file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_background_sup.dir/bench_table7_background_sup.cc.o"
  "CMakeFiles/bench_table7_background_sup.dir/bench_table7_background_sup.cc.o.d"
  "bench_table7_background_sup"
  "bench_table7_background_sup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_background_sup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
