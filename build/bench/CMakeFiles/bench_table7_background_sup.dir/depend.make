# Empty dependencies file for bench_table7_background_sup.
# This may be replaced when dependencies are built.
