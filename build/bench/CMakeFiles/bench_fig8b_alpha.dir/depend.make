# Empty dependencies file for bench_fig8b_alpha.
# This may be replaced when dependencies are built.
