# Empty dependencies file for bench_figk1_examples.
# This may be replaced when dependencies are built.
