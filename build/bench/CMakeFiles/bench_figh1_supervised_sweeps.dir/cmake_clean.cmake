file(REMOVE_RECURSE
  "CMakeFiles/bench_figh1_supervised_sweeps.dir/bench_figh1_supervised_sweeps.cc.o"
  "CMakeFiles/bench_figh1_supervised_sweeps.dir/bench_figh1_supervised_sweeps.cc.o.d"
  "bench_figh1_supervised_sweeps"
  "bench_figh1_supervised_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figh1_supervised_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
