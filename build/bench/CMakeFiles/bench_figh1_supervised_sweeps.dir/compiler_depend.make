# Empty compiler generated dependencies file for bench_figh1_supervised_sweeps.
# This may be replaced when dependencies are built.
