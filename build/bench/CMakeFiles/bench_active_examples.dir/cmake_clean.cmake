file(REMOVE_RECURSE
  "CMakeFiles/bench_active_examples.dir/bench_active_examples.cc.o"
  "CMakeFiles/bench_active_examples.dir/bench_active_examples.cc.o.d"
  "bench_active_examples"
  "bench_active_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_active_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
