file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8a_sp_correlation.dir/bench_fig8a_sp_correlation.cc.o"
  "CMakeFiles/bench_fig8a_sp_correlation.dir/bench_fig8a_sp_correlation.cc.o.d"
  "bench_fig8a_sp_correlation"
  "bench_fig8a_sp_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8a_sp_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
