# Empty compiler generated dependencies file for bench_fig8a_sp_correlation.
# This may be replaced when dependencies are built.
