# Empty dependencies file for tegra_eval_cli.
# This may be replaced when dependencies are built.
