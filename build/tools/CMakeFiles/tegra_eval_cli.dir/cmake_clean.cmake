file(REMOVE_RECURSE
  "CMakeFiles/tegra_eval_cli.dir/tegra_eval.cc.o"
  "CMakeFiles/tegra_eval_cli.dir/tegra_eval.cc.o.d"
  "tegra_eval_cli"
  "tegra_eval_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tegra_eval_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
