# Empty compiler generated dependencies file for tegra_cli.
# This may be replaced when dependencies are built.
