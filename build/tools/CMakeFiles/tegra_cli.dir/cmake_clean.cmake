file(REMOVE_RECURSE
  "CMakeFiles/tegra_cli.dir/tegra_cli.cc.o"
  "CMakeFiles/tegra_cli.dir/tegra_cli.cc.o.d"
  "tegra_cli"
  "tegra_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tegra_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
