# Empty dependencies file for corpus_inspector.
# This may be replaced when dependencies are built.
