file(REMOVE_RECURSE
  "CMakeFiles/corpus_inspector.dir/corpus_inspector.cc.o"
  "CMakeFiles/corpus_inspector.dir/corpus_inspector.cc.o.d"
  "corpus_inspector"
  "corpus_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
