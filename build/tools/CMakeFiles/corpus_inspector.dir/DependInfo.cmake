
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/corpus_inspector.cc" "tools/CMakeFiles/corpus_inspector.dir/corpus_inspector.cc.o" "gcc" "tools/CMakeFiles/corpus_inspector.dir/corpus_inspector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/tegra_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/tegra_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/tegra_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tegra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
