file(REMOVE_RECURSE
  "libtegra_synth.a"
)
