# Empty compiler generated dependencies file for tegra_synth.
# This may be replaced when dependencies are built.
