file(REMOVE_RECURSE
  "CMakeFiles/tegra_synth.dir/corpus_gen.cc.o"
  "CMakeFiles/tegra_synth.dir/corpus_gen.cc.o.d"
  "CMakeFiles/tegra_synth.dir/domain.cc.o"
  "CMakeFiles/tegra_synth.dir/domain.cc.o.d"
  "CMakeFiles/tegra_synth.dir/knowledge_base.cc.o"
  "CMakeFiles/tegra_synth.dir/knowledge_base.cc.o.d"
  "CMakeFiles/tegra_synth.dir/list_gen.cc.o"
  "CMakeFiles/tegra_synth.dir/list_gen.cc.o.d"
  "CMakeFiles/tegra_synth.dir/vocab.cc.o"
  "CMakeFiles/tegra_synth.dir/vocab.cc.o.d"
  "libtegra_synth.a"
  "libtegra_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tegra_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
