
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/corpus_gen.cc" "src/synth/CMakeFiles/tegra_synth.dir/corpus_gen.cc.o" "gcc" "src/synth/CMakeFiles/tegra_synth.dir/corpus_gen.cc.o.d"
  "/root/repo/src/synth/domain.cc" "src/synth/CMakeFiles/tegra_synth.dir/domain.cc.o" "gcc" "src/synth/CMakeFiles/tegra_synth.dir/domain.cc.o.d"
  "/root/repo/src/synth/knowledge_base.cc" "src/synth/CMakeFiles/tegra_synth.dir/knowledge_base.cc.o" "gcc" "src/synth/CMakeFiles/tegra_synth.dir/knowledge_base.cc.o.d"
  "/root/repo/src/synth/list_gen.cc" "src/synth/CMakeFiles/tegra_synth.dir/list_gen.cc.o" "gcc" "src/synth/CMakeFiles/tegra_synth.dir/list_gen.cc.o.d"
  "/root/repo/src/synth/vocab.cc" "src/synth/CMakeFiles/tegra_synth.dir/vocab.cc.o" "gcc" "src/synth/CMakeFiles/tegra_synth.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tegra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/tegra_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/tegra_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
