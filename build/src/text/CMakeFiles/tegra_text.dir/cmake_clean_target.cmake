file(REMOVE_RECURSE
  "libtegra_text.a"
)
