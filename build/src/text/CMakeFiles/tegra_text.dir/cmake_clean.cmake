file(REMOVE_RECURSE
  "CMakeFiles/tegra_text.dir/char_profile.cc.o"
  "CMakeFiles/tegra_text.dir/char_profile.cc.o.d"
  "CMakeFiles/tegra_text.dir/tokenizer.cc.o"
  "CMakeFiles/tegra_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/tegra_text.dir/value_type.cc.o"
  "CMakeFiles/tegra_text.dir/value_type.cc.o.d"
  "libtegra_text.a"
  "libtegra_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tegra_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
