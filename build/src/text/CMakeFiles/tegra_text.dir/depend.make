# Empty dependencies file for tegra_text.
# This may be replaced when dependencies are built.
