# Empty dependencies file for tegra_html.
# This may be replaced when dependencies are built.
