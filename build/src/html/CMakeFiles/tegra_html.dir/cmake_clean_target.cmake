file(REMOVE_RECURSE
  "libtegra_html.a"
)
