file(REMOVE_RECURSE
  "CMakeFiles/tegra_html.dir/html_lists.cc.o"
  "CMakeFiles/tegra_html.dir/html_lists.cc.o.d"
  "libtegra_html.a"
  "libtegra_html.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tegra_html.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
