
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/active.cc" "src/core/CMakeFiles/tegra_core.dir/active.cc.o" "gcc" "src/core/CMakeFiles/tegra_core.dir/active.cc.o.d"
  "/root/repo/src/core/anchor_search.cc" "src/core/CMakeFiles/tegra_core.dir/anchor_search.cc.o" "gcc" "src/core/CMakeFiles/tegra_core.dir/anchor_search.cc.o.d"
  "/root/repo/src/core/batch.cc" "src/core/CMakeFiles/tegra_core.dir/batch.cc.o" "gcc" "src/core/CMakeFiles/tegra_core.dir/batch.cc.o.d"
  "/root/repo/src/core/free_distance.cc" "src/core/CMakeFiles/tegra_core.dir/free_distance.cc.o" "gcc" "src/core/CMakeFiles/tegra_core.dir/free_distance.cc.o.d"
  "/root/repo/src/core/header.cc" "src/core/CMakeFiles/tegra_core.dir/header.cc.o" "gcc" "src/core/CMakeFiles/tegra_core.dir/header.cc.o.d"
  "/root/repo/src/core/list_context.cc" "src/core/CMakeFiles/tegra_core.dir/list_context.cc.o" "gcc" "src/core/CMakeFiles/tegra_core.dir/list_context.cc.o.d"
  "/root/repo/src/core/objective.cc" "src/core/CMakeFiles/tegra_core.dir/objective.cc.o" "gcc" "src/core/CMakeFiles/tegra_core.dir/objective.cc.o.d"
  "/root/repo/src/core/segmentation.cc" "src/core/CMakeFiles/tegra_core.dir/segmentation.cc.o" "gcc" "src/core/CMakeFiles/tegra_core.dir/segmentation.cc.o.d"
  "/root/repo/src/core/slgr.cc" "src/core/CMakeFiles/tegra_core.dir/slgr.cc.o" "gcc" "src/core/CMakeFiles/tegra_core.dir/slgr.cc.o.d"
  "/root/repo/src/core/tegra.cc" "src/core/CMakeFiles/tegra_core.dir/tegra.cc.o" "gcc" "src/core/CMakeFiles/tegra_core.dir/tegra.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/distance/CMakeFiles/tegra_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/tegra_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/tegra_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tegra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
