file(REMOVE_RECURSE
  "CMakeFiles/tegra_core.dir/active.cc.o"
  "CMakeFiles/tegra_core.dir/active.cc.o.d"
  "CMakeFiles/tegra_core.dir/anchor_search.cc.o"
  "CMakeFiles/tegra_core.dir/anchor_search.cc.o.d"
  "CMakeFiles/tegra_core.dir/batch.cc.o"
  "CMakeFiles/tegra_core.dir/batch.cc.o.d"
  "CMakeFiles/tegra_core.dir/free_distance.cc.o"
  "CMakeFiles/tegra_core.dir/free_distance.cc.o.d"
  "CMakeFiles/tegra_core.dir/header.cc.o"
  "CMakeFiles/tegra_core.dir/header.cc.o.d"
  "CMakeFiles/tegra_core.dir/list_context.cc.o"
  "CMakeFiles/tegra_core.dir/list_context.cc.o.d"
  "CMakeFiles/tegra_core.dir/objective.cc.o"
  "CMakeFiles/tegra_core.dir/objective.cc.o.d"
  "CMakeFiles/tegra_core.dir/segmentation.cc.o"
  "CMakeFiles/tegra_core.dir/segmentation.cc.o.d"
  "CMakeFiles/tegra_core.dir/slgr.cc.o"
  "CMakeFiles/tegra_core.dir/slgr.cc.o.d"
  "CMakeFiles/tegra_core.dir/tegra.cc.o"
  "CMakeFiles/tegra_core.dir/tegra.cc.o.d"
  "libtegra_core.a"
  "libtegra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tegra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
