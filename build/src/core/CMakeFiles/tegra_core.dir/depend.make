# Empty dependencies file for tegra_core.
# This may be replaced when dependencies are built.
