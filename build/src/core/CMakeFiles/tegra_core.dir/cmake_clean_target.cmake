file(REMOVE_RECURSE
  "libtegra_core.a"
)
