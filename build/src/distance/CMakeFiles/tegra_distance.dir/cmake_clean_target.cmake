file(REMOVE_RECURSE
  "libtegra_distance.a"
)
