# Empty compiler generated dependencies file for tegra_distance.
# This may be replaced when dependencies are built.
