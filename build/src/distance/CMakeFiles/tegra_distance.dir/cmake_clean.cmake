file(REMOVE_RECURSE
  "CMakeFiles/tegra_distance.dir/cell.cc.o"
  "CMakeFiles/tegra_distance.dir/cell.cc.o.d"
  "CMakeFiles/tegra_distance.dir/distance.cc.o"
  "CMakeFiles/tegra_distance.dir/distance.cc.o.d"
  "libtegra_distance.a"
  "libtegra_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tegra_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
