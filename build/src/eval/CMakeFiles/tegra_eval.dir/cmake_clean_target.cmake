file(REMOVE_RECURSE
  "libtegra_eval.a"
)
