# Empty dependencies file for tegra_eval.
# This may be replaced when dependencies are built.
