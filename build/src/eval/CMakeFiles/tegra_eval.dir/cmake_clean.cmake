file(REMOVE_RECURSE
  "CMakeFiles/tegra_eval.dir/benchmark_data.cc.o"
  "CMakeFiles/tegra_eval.dir/benchmark_data.cc.o.d"
  "CMakeFiles/tegra_eval.dir/experiment.cc.o"
  "CMakeFiles/tegra_eval.dir/experiment.cc.o.d"
  "CMakeFiles/tegra_eval.dir/lists_data.cc.o"
  "CMakeFiles/tegra_eval.dir/lists_data.cc.o.d"
  "CMakeFiles/tegra_eval.dir/mapping_metric.cc.o"
  "CMakeFiles/tegra_eval.dir/mapping_metric.cc.o.d"
  "libtegra_eval.a"
  "libtegra_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tegra_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
