# Empty dependencies file for tegra_corpus.
# This may be replaced when dependencies are built.
