file(REMOVE_RECURSE
  "CMakeFiles/tegra_corpus.dir/column_index.cc.o"
  "CMakeFiles/tegra_corpus.dir/column_index.cc.o.d"
  "CMakeFiles/tegra_corpus.dir/corpus_io.cc.o"
  "CMakeFiles/tegra_corpus.dir/corpus_io.cc.o.d"
  "CMakeFiles/tegra_corpus.dir/corpus_stats.cc.o"
  "CMakeFiles/tegra_corpus.dir/corpus_stats.cc.o.d"
  "CMakeFiles/tegra_corpus.dir/table.cc.o"
  "CMakeFiles/tegra_corpus.dir/table.cc.o.d"
  "CMakeFiles/tegra_corpus.dir/table_io.cc.o"
  "CMakeFiles/tegra_corpus.dir/table_io.cc.o.d"
  "libtegra_corpus.a"
  "libtegra_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tegra_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
