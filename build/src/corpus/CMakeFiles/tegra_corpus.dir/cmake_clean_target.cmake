file(REMOVE_RECURSE
  "libtegra_corpus.a"
)
