
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/column_index.cc" "src/corpus/CMakeFiles/tegra_corpus.dir/column_index.cc.o" "gcc" "src/corpus/CMakeFiles/tegra_corpus.dir/column_index.cc.o.d"
  "/root/repo/src/corpus/corpus_io.cc" "src/corpus/CMakeFiles/tegra_corpus.dir/corpus_io.cc.o" "gcc" "src/corpus/CMakeFiles/tegra_corpus.dir/corpus_io.cc.o.d"
  "/root/repo/src/corpus/corpus_stats.cc" "src/corpus/CMakeFiles/tegra_corpus.dir/corpus_stats.cc.o" "gcc" "src/corpus/CMakeFiles/tegra_corpus.dir/corpus_stats.cc.o.d"
  "/root/repo/src/corpus/table.cc" "src/corpus/CMakeFiles/tegra_corpus.dir/table.cc.o" "gcc" "src/corpus/CMakeFiles/tegra_corpus.dir/table.cc.o.d"
  "/root/repo/src/corpus/table_io.cc" "src/corpus/CMakeFiles/tegra_corpus.dir/table_io.cc.o" "gcc" "src/corpus/CMakeFiles/tegra_corpus.dir/table_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tegra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/tegra_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
