file(REMOVE_RECURSE
  "CMakeFiles/tegra_baselines.dir/field_quality.cc.o"
  "CMakeFiles/tegra_baselines.dir/field_quality.cc.o.d"
  "CMakeFiles/tegra_baselines.dir/judie.cc.o"
  "CMakeFiles/tegra_baselines.dir/judie.cc.o.d"
  "CMakeFiles/tegra_baselines.dir/listextract.cc.o"
  "CMakeFiles/tegra_baselines.dir/listextract.cc.o.d"
  "libtegra_baselines.a"
  "libtegra_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tegra_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
