# Empty dependencies file for tegra_baselines.
# This may be replaced when dependencies are built.
