file(REMOVE_RECURSE
  "libtegra_baselines.a"
)
