# Empty compiler generated dependencies file for tegra_common.
# This may be replaced when dependencies are built.
