file(REMOVE_RECURSE
  "CMakeFiles/tegra_common.dir/random.cc.o"
  "CMakeFiles/tegra_common.dir/random.cc.o.d"
  "CMakeFiles/tegra_common.dir/status.cc.o"
  "CMakeFiles/tegra_common.dir/status.cc.o.d"
  "CMakeFiles/tegra_common.dir/string_util.cc.o"
  "CMakeFiles/tegra_common.dir/string_util.cc.o.d"
  "CMakeFiles/tegra_common.dir/thread_pool.cc.o"
  "CMakeFiles/tegra_common.dir/thread_pool.cc.o.d"
  "libtegra_common.a"
  "libtegra_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tegra_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
