file(REMOVE_RECURSE
  "libtegra_common.a"
)
