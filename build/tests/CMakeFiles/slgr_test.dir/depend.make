# Empty dependencies file for slgr_test.
# This may be replaced when dependencies are built.
