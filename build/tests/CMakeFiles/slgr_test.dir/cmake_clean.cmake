file(REMOVE_RECURSE
  "CMakeFiles/slgr_test.dir/slgr_test.cc.o"
  "CMakeFiles/slgr_test.dir/slgr_test.cc.o.d"
  "slgr_test"
  "slgr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slgr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
