file(REMOVE_RECURSE
  "CMakeFiles/mapping_metric_test.dir/mapping_metric_test.cc.o"
  "CMakeFiles/mapping_metric_test.dir/mapping_metric_test.cc.o.d"
  "mapping_metric_test"
  "mapping_metric_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_metric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
