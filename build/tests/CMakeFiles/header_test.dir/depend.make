# Empty dependencies file for header_test.
# This may be replaced when dependencies are built.
