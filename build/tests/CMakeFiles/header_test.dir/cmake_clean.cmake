file(REMOVE_RECURSE
  "CMakeFiles/header_test.dir/header_test.cc.o"
  "CMakeFiles/header_test.dir/header_test.cc.o.d"
  "header_test"
  "header_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/header_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
