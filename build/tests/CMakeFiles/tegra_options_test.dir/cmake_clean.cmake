file(REMOVE_RECURSE
  "CMakeFiles/tegra_options_test.dir/tegra_options_test.cc.o"
  "CMakeFiles/tegra_options_test.dir/tegra_options_test.cc.o.d"
  "tegra_options_test"
  "tegra_options_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tegra_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
