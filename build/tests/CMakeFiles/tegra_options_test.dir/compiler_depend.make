# Empty compiler generated dependencies file for tegra_options_test.
# This may be replaced when dependencies are built.
