# Empty compiler generated dependencies file for tegra_core_test.
# This may be replaced when dependencies are built.
