file(REMOVE_RECURSE
  "CMakeFiles/tegra_core_test.dir/tegra_core_test.cc.o"
  "CMakeFiles/tegra_core_test.dir/tegra_core_test.cc.o.d"
  "tegra_core_test"
  "tegra_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tegra_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
