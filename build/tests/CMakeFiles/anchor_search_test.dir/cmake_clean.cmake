file(REMOVE_RECURSE
  "CMakeFiles/anchor_search_test.dir/anchor_search_test.cc.o"
  "CMakeFiles/anchor_search_test.dir/anchor_search_test.cc.o.d"
  "anchor_search_test"
  "anchor_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
