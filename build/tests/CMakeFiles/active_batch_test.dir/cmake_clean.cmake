file(REMOVE_RECURSE
  "CMakeFiles/active_batch_test.dir/active_batch_test.cc.o"
  "CMakeFiles/active_batch_test.dir/active_batch_test.cc.o.d"
  "active_batch_test"
  "active_batch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
