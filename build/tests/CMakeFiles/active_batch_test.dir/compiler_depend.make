# Empty compiler generated dependencies file for active_batch_test.
# This may be replaced when dependencies are built.
