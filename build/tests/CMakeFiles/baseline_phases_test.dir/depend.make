# Empty dependencies file for baseline_phases_test.
# This may be replaced when dependencies are built.
