file(REMOVE_RECURSE
  "CMakeFiles/baseline_phases_test.dir/baseline_phases_test.cc.o"
  "CMakeFiles/baseline_phases_test.dir/baseline_phases_test.cc.o.d"
  "baseline_phases_test"
  "baseline_phases_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_phases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
